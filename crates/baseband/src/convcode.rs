//! The 802.11 convolutional codec: K=7 (133, 171) encoder, puncturing, and
//! a hard-decision Viterbi decoder.
//!
//! Commodity 802.11n cards apply this FEC below the PER the paper measures
//! in §3.2 ("A small increase in the raw uncoded BER ... might result in no
//! change in the PER on a commercial coded system like 802.11n"). Having a
//! real codec lets the baseband produce *coded* Monte-Carlo PER curves to
//! cross-validate the analytic union bound in `acorn-phy::coding`.
//!
//! * Mother code: rate 1/2, constraint length 7, generators 133/171 octal.
//! * Puncturing: the standard 802.11a/n matrices for rates 2/3, 3/4, 5/6.
//! * Termination: six zero tail bits return the encoder to state 0, so the
//!   decoder tracebacks from a known state.

use acorn_phy::CodeRate;

/// Generator polynomial G0 = 133 octal (window MSB = current input bit).
const G0: u32 = 0o133;
/// Generator polynomial G1 = 171 octal.
const G1: u32 = 0o171;
/// Number of trellis states (2^(K−1) = 64).
const STATES: usize = 64;
/// Tail bits appended to terminate the trellis.
pub const TAIL_BITS: usize = 6;

#[inline]
fn parity(x: u32) -> bool {
    x.count_ones() % 2 == 1
}

/// One trellis branch: given a 6-bit state and an input bit, produce the
/// coded bit pair and the successor state.
#[inline]
fn step(state: u32, input: bool) -> (bool, bool, u32) {
    let window = ((input as u32) << 6) | state;
    (parity(window & G0), parity(window & G1), window >> 1)
}

/// Coded output of every (state, input) branch, packed as `A | B<<1` and
/// tabulated at compile time — the decoder's inner loop does one byte load
/// where [`step`] computes two parities.
const BRANCH_OUT: [u8; 2 * STATES] = {
    let mut t = [0u8; 2 * STATES];
    let mut s = 0;
    while s < STATES {
        let mut input = 0;
        while input < 2 {
            let window = ((input as u32) << 6) | s as u32;
            let a = (window & G0).count_ones() & 1;
            let b = (window & G1).count_ones() & 1;
            t[2 * s + input] = (a | (b << 1)) as u8;
            input += 1;
        }
        s += 1;
    }
    t
};

/// Successor state of a branch: the input bit shifts into the window MSB.
#[inline]
#[cfg_attr(not(test), allow(dead_code))]
fn next_state(state: usize, input: usize) -> usize {
    (state >> 1) | (input << 5)
}

/// Rate-1/2 convolutional encoding with trellis termination: encodes
/// `bits` followed by six zero tail bits, producing `2·(len+6)` coded bits
/// as interleaved (A, B) pairs.
pub fn encode(bits: &[bool]) -> Vec<bool> {
    let mut out = Vec::new();
    encode_into(bits, &mut out);
    out
}

/// Allocation-free [`encode`]: clears and refills `out`.
pub fn encode_into(bits: &[bool], out: &mut Vec<bool>) {
    out.clear();
    out.reserve(2 * (bits.len() + TAIL_BITS));
    let mut state = 0u32;
    for &b in bits.iter().chain(std::iter::repeat(&false).take(TAIL_BITS)) {
        let (a, bb, next) = step(state, b);
        out.push(a);
        out.push(bb);
        state = next;
    }
    debug_assert_eq!(state, 0, "tail bits must return the encoder to state 0");
}

/// The puncturing matrix of a code rate: `(keep_a, keep_b)` per position of
/// the puncturing period. Rate 1/2 keeps everything.
fn puncture_pattern(rate: CodeRate) -> (&'static [bool], &'static [bool]) {
    match rate {
        CodeRate::R12 => (&[true], &[true]),
        CodeRate::R23 => (&[true, true], &[true, false]),
        CodeRate::R34 => (&[true, true, false], &[true, false, true]),
        CodeRate::R56 => (
            &[true, true, false, true, false],
            &[true, false, true, false, true],
        ),
    }
}

/// Punctures a rate-1/2 coded stream (as produced by [`encode`]) down to
/// the target rate by deleting bits per the standard matrices.
pub fn puncture(coded: &[bool], rate: CodeRate) -> Vec<bool> {
    assert!(
        coded.len() % 2 == 0,
        "coded stream must be whole (A,B) pairs"
    );
    let (pa, pb) = puncture_pattern(rate);
    let period = pa.len();
    let mut out = Vec::with_capacity(coded.len());
    for (i, pair) in coded.chunks(2).enumerate() {
        let slot = i % period;
        if pa[slot] {
            out.push(pair[0]);
        }
        if pb[slot] {
            out.push(pair[1]);
        }
    }
    out
}

/// Re-inflates a punctured stream into `(Option<A>, Option<B>)` pairs, with
/// `None` marking erased (punctured) positions that contribute no branch
/// metric. `n_pairs` is the original pair count, `info_len + TAIL_BITS`.
pub fn depuncture(
    rx: &[bool],
    rate: CodeRate,
    n_pairs: usize,
) -> Vec<(Option<bool>, Option<bool>)> {
    let mut out = Vec::new();
    depuncture_into(rx, rate, n_pairs, &mut out);
    out
}

/// Allocation-free [`depuncture`]: clears and refills `out`.
pub fn depuncture_into(
    rx: &[bool],
    rate: CodeRate,
    n_pairs: usize,
    out: &mut Vec<(Option<bool>, Option<bool>)>,
) {
    let (pa, pb) = puncture_pattern(rate);
    let period = pa.len();
    out.clear();
    out.reserve(n_pairs);
    let mut it = rx.iter();
    for i in 0..n_pairs {
        let slot = i % period;
        let a = if pa[slot] { it.next().copied() } else { None };
        let b = if pb[slot] { it.next().copied() } else { None };
        out.push((a, b));
    }
}

/// Hard-decision Viterbi decoding of `pairs` (with erasures), returning
/// `info_len` decoded information bits. Assumes the encoder started in
/// state 0 and was terminated with [`TAIL_BITS`] zero bits; the traceback
/// therefore starts from state 0 at the end of the trellis.
pub fn viterbi_decode(pairs: &[(Option<bool>, Option<bool>)], info_len: usize) -> Vec<bool> {
    let mut survivor = Vec::new();
    let mut decoded = Vec::new();
    viterbi_decode_into(pairs, info_len, &mut survivor, &mut decoded);
    decoded
}

/// Allocation-free core of [`viterbi_decode`]: the survivor memory and the
/// output vector are caller-provided scratch, resized (never shrunk) so a
/// reused buffer costs no allocation in steady state.
///
/// The trellis is walked successor-first (add-compare-select): predecessor
/// pair `(2j, 2j+1)` feeds exactly the two successors `j` (input 0) and
/// `j + 32` (input 1), so one pass over `j = 0..32` loads each path metric
/// once and writes every successor metric and survivor cell — stale bytes
/// from a previous packet are never read. Metrics fit `u16` (≤ 2 per step,
/// trellises far below 2¹⁵ steps), and the four branch metrics are
/// expanded into a sequentially-indexed per-step cost table so the inner
/// loop is branchless, gather-free and auto-vectorizable. Tie-breaking
/// (lower predecessor wins) matches the classic state-major formulation
/// exactly.
pub fn viterbi_decode_into(
    pairs: &[(Option<bool>, Option<bool>)],
    info_len: usize,
    survivor: &mut Vec<u8>,
    decoded: &mut Vec<bool>,
) {
    assert_eq!(
        pairs.len(),
        info_len + TAIL_BITS,
        "trellis length must be info_len + tail"
    );
    // Large enough to never be chosen over a genuine path, small enough
    // that INF + (a few branch metrics) cannot wrap a u16.
    const INF: u16 = 0x7000;
    let n = pairs.len();
    assert!(
        n < (INF as usize - 16) / 2,
        "trellis too long for u16 metrics"
    );

    // One byte per (step, state) holding the winning predecessor choice
    // (0 or 1); `resize` only zeroes freshly grown memory, and every cell
    // is overwritten before the traceback reads it.
    survivor.resize(n * STATES, 0);

    let mut metric = [INF; STATES];
    let mut next_metric = [INF; STATES];
    metric[0] = 0;

    // A received (possibly erased) pair takes one of 3 × 3 values; for
    // each, cost[4j + i] is the branch metric of predecessor 2j (i ∈
    // {0,1}: input bit) and predecessor 2j+1 (i ∈ {2,3}). Expanding all
    // nine tables once per call turns the per-step bm gather into
    // sequential loads in the hot loop.
    let sym = |r: Option<bool>| match r {
        None => 0usize,
        Some(false) => 1,
        Some(true) => 2,
    };
    let mut cost_tables = [[0u16; 2 * STATES]; 9];
    for (v, table) in cost_tables.iter_mut().enumerate() {
        let (va, vb) = (v / 3, v % 3);
        let mut bm = [0u16; 4];
        for (out, slot) in bm.iter_mut().enumerate() {
            let mut m = 0;
            if va != 0 && (va == 2) != (out & 1 == 1) {
                m += 1;
            }
            if vb != 0 && (vb == 2) != (out & 2 == 2) {
                m += 1;
            }
            *slot = m;
        }
        for (c, &o) in table.iter_mut().zip(BRANCH_OUT.iter()) {
            *c = bm[o as usize];
        }
    }

    for (t, &(ra, rb)) in pairs.iter().enumerate() {
        let cost = &cost_tables[3 * sym(ra) + sym(rb)];
        let (row_lo, row_hi) = survivor[t * STATES..(t + 1) * STATES].split_at_mut(STATES / 2);
        for j in 0..STATES / 2 {
            let a = metric[2 * j];
            let b = metric[2 * j + 1];
            // Successor j (input 0) and successor j+32 (input 1).
            let (a0, b0) = (a + cost[4 * j], b + cost[4 * j + 2]);
            let (a1, b1) = (a + cost[4 * j + 1], b + cost[4 * j + 3]);
            let take0 = b0 < a0;
            let take1 = b1 < a1;
            next_metric[j] = if take0 { b0 } else { a0 };
            next_metric[j + 32] = if take1 { b1 } else { a1 };
            row_lo[j] = take0 as u8;
            row_hi[j] = take1 as u8;
        }
        std::mem::swap(&mut metric, &mut next_metric);
    }

    // Traceback from the terminated state 0: the input bit that *entered*
    // state `s` is its top window bit, the predecessor is `2·(s & 31)`
    // plus the recorded choice.
    let mut state = 0usize;
    decoded.resize(n, false);
    for t in (0..n).rev() {
        decoded[t] = state >> 5 != 0;
        state = ((state & 31) << 1) | survivor[t * STATES + state] as usize;
    }
    decoded.truncate(info_len);
}

/// Convenience codec wrapping encode → puncture and depuncture → decode for
/// one packet at a configured rate.
#[derive(Debug, Clone, Copy)]
pub struct Codec {
    /// Operating code rate.
    pub rate: CodeRate,
}

impl Codec {
    /// Creates a codec at the given rate.
    pub fn new(rate: CodeRate) -> Codec {
        Codec { rate }
    }

    /// Encodes and punctures an information-bit packet.
    pub fn encode(&self, info: &[bool]) -> Vec<bool> {
        puncture(&encode(info), self.rate)
    }

    /// Allocation-free [`Codec::encode`]: the mother-coded stream lands in
    /// `mother` scratch (bypassed entirely at rate 1/2, where puncturing is
    /// the identity) and the punctured output in `out`.
    pub fn encode_into(&self, info: &[bool], mother: &mut Vec<bool>, out: &mut Vec<bool>) {
        if self.rate == CodeRate::R12 {
            encode_into(info, out);
            return;
        }
        encode_into(info, mother);
        let (pa, pb) = puncture_pattern(self.rate);
        let period = pa.len();
        out.clear();
        out.reserve(mother.len());
        for (i, pair) in mother.chunks(2).enumerate() {
            let slot = i % period;
            if pa[slot] {
                out.push(pair[0]);
            }
            if pb[slot] {
                out.push(pair[1]);
            }
        }
    }

    /// Number of coded (post-puncturing) bits produced for `info_len`
    /// information bits.
    pub fn coded_len(&self, info_len: usize) -> usize {
        let (pa, pb) = puncture_pattern(self.rate);
        let period = pa.len();
        let n_pairs = info_len + TAIL_BITS;
        let mut count = 0;
        for i in 0..n_pairs {
            let slot = i % period;
            count += pa[slot] as usize + pb[slot] as usize;
        }
        count
    }

    /// Depunctures and Viterbi-decodes a received coded stream back to
    /// `info_len` information bits.
    pub fn decode(&self, rx: &[bool], info_len: usize) -> Vec<bool> {
        let pairs = depuncture(rx, self.rate, info_len + TAIL_BITS);
        viterbi_decode(&pairs, info_len)
    }

    /// Allocation-free [`Codec::decode`]: depuncture pairs, survivor memory
    /// and the decoded output all live in caller scratch.
    pub fn decode_into(
        &self,
        rx: &[bool],
        info_len: usize,
        pairs: &mut Vec<(Option<bool>, Option<bool>)>,
        survivor: &mut Vec<u8>,
        out: &mut Vec<bool>,
    ) {
        depuncture_into(rx, self.rate, info_len + TAIL_BITS, pairs);
        viterbi_decode_into(pairs, info_len, survivor, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn branch_lut_matches_the_step_function() {
        for state in 0..STATES {
            for (input, bit) in [(0usize, false), (1, true)] {
                let (a, b, next) = step(state as u32, bit);
                let out = BRANCH_OUT[2 * state + input];
                assert_eq!(out & 1 == 1, a, "state {state} input {input}: A");
                assert_eq!(out & 2 == 2, b, "state {state} input {input}: B");
                assert_eq!(next_state(state, input), next as usize);
            }
        }
    }

    #[test]
    fn encoder_output_length() {
        let coded = encode(&[true; 10]);
        assert_eq!(coded.len(), 2 * (10 + TAIL_BITS));
    }

    #[test]
    fn encoder_known_vector() {
        // All-zero input stays all-zero (linear code).
        let coded = encode(&[false; 8]);
        assert!(coded.iter().all(|b| !b));
        // A single 1 produces the generator impulse response: the two
        // polynomials read MSB-first as the bit leaves the window.
        let coded = encode(&[true, false, false, false, false, false, false]);
        let a: Vec<bool> = coded.iter().step_by(2).copied().collect();
        let b: Vec<bool> = coded.iter().skip(1).step_by(2).copied().collect();
        // impulse response = taps of G as the bit shifts through; weight of
        // the joint response must equal the code's free distance pair count
        // for a single-bit message: weight(G0) + weight(G1) = 5 + 5 = 10.
        let weight: usize = a.iter().chain(b.iter()).map(|&x| x as usize).sum();
        assert_eq!(weight, 10); // dfree of the K=7 (133,171) code
    }

    #[test]
    fn clean_roundtrip_all_rates() {
        for rate in CodeRate::ALL {
            let info = random_bits(240, 5);
            let codec = Codec::new(rate);
            let tx = codec.encode(&info);
            assert_eq!(tx.len(), codec.coded_len(info.len()));
            let decoded = codec.decode(&tx, info.len());
            assert_eq!(decoded, info, "{rate:?}");
        }
    }

    #[test]
    fn coded_len_matches_rate() {
        let codec = Codec::new(CodeRate::R34);
        // rate 3/4: 3 info bits → 4 coded bits. With 300+6 pairs → 408.
        assert_eq!(codec.coded_len(300), 408);
        let half = Codec::new(CodeRate::R12);
        assert_eq!(half.coded_len(300), 612);
    }

    #[test]
    fn corrects_scattered_errors_rate_half() {
        let info = random_bits(300, 9);
        let codec = Codec::new(CodeRate::R12);
        let mut tx = codec.encode(&info);
        // Flip well-separated bits — within the code's correction power.
        for idx in [10, 100, 250, 400, 550] {
            tx[idx] = !tx[idx];
        }
        assert_eq!(codec.decode(&tx, info.len()), info);
    }

    #[test]
    fn corrects_errors_at_all_punctured_rates() {
        for rate in CodeRate::ALL {
            let info = random_bits(300, 13);
            let codec = Codec::new(rate);
            let mut tx = codec.encode(&info);
            let stride = tx.len() / 3;
            tx[stride] = !tx[stride];
            tx[2 * stride] = !tx[2 * stride];
            assert_eq!(codec.decode(&tx, info.len()), info, "{rate:?}");
        }
    }

    #[test]
    fn weaker_codes_break_earlier_under_noise() {
        // Monte-Carlo: at a fixed channel BER, post-decode error counts
        // should (weakly) increase with code rate — mirroring the analytic
        // ordering in acorn-phy::coding.
        let mut rng = StdRng::seed_from_u64(77);
        let p_flip = 0.04;
        let mut errors_by_rate = Vec::new();
        for rate in CodeRate::ALL {
            let codec = Codec::new(rate);
            let mut errors = 0usize;
            for trial in 0..30 {
                let info = random_bits(400, 1000 + trial);
                let mut tx = codec.encode(&info);
                for b in tx.iter_mut() {
                    if rng.gen_bool(p_flip) {
                        *b = !*b;
                    }
                }
                let decoded = codec.decode(&tx, info.len());
                errors += decoded.iter().zip(&info).filter(|(a, b)| a != b).count();
            }
            errors_by_rate.push(errors);
        }
        assert!(
            errors_by_rate[0] <= errors_by_rate[2] && errors_by_rate[0] <= errors_by_rate[3],
            "{errors_by_rate:?}"
        );
        assert!(
            *errors_by_rate.last().unwrap() > 0,
            "rate 5/6 should show errors at 4% channel BER: {errors_by_rate:?}"
        );
    }

    #[test]
    fn depuncture_erasure_positions() {
        let pairs = depuncture(&[true, true, false], CodeRate::R34, 3);
        // Pattern: (A1 B1) (A2 −) (− B3)
        assert_eq!(pairs[0], (Some(true), Some(true)));
        assert_eq!(pairs[1], (Some(false), None));
        assert_eq!(pairs[2], (None, None)); // rx exhausted → erasures
    }

    #[test]
    fn puncture_depuncture_roundtrip_structure() {
        for rate in CodeRate::ALL {
            let info = random_bits(60, 21);
            let coded = encode(&info);
            let punctured = puncture(&coded, rate);
            let pairs = depuncture(&punctured, rate, info.len() + TAIL_BITS);
            // Every Some() must match the original coded bit.
            for (i, (a, b)) in pairs.iter().enumerate() {
                if let Some(x) = a {
                    assert_eq!(*x, coded[2 * i], "{rate:?} A{i}");
                }
                if let Some(x) = b {
                    assert_eq!(*x, coded[2 * i + 1], "{rate:?} B{i}");
                }
            }
        }
    }
}
