//! Constellation mappers and hard-decision slicers.
//!
//! Gray-coded BPSK, QPSK, 16-QAM and 64-QAM — the four modulations of the
//! HT MCS table — plus the differential QPSK (DQPSK) variant the paper's
//! WarpLab experiments use ("We generate a random bitstream and modulate it
//! using DQPSK"). All constellations are normalized to unit average energy
//! so that transmit power is controlled entirely by the frame builder.

use crate::cplx::Cplx;
use acorn_phy::Modulation;

/// Per-axis Gray code for 2-bit PAM-4 (used by 16-QAM): levels ±1, ±3
/// normalized later. Bit order: MSB selects half, LSB selects inner/outer.
fn pam4_level(bits: u8) -> f64 {
    match bits & 0b11 {
        0b00 => -3.0,
        0b01 => -1.0,
        0b11 => 1.0,
        _ => 3.0, // 0b10
    }
}

fn pam4_slice(x: f64) -> u8 {
    if x < -2.0 {
        0b00
    } else if x < 0.0 {
        0b01
    } else if x < 2.0 {
        0b11
    } else {
        0b10
    }
}

/// Per-axis Gray code for 3-bit PAM-8 (used by 64-QAM): levels ±1..±7.
fn pam8_level(bits: u8) -> f64 {
    match bits & 0b111 {
        0b000 => -7.0,
        0b001 => -5.0,
        0b011 => -3.0,
        0b010 => -1.0,
        0b110 => 1.0,
        0b111 => 3.0,
        0b101 => 5.0,
        _ => 7.0, // 0b100
    }
}

fn pam8_slice(x: f64) -> u8 {
    if x < -6.0 {
        0b000
    } else if x < -4.0 {
        0b001
    } else if x < -2.0 {
        0b011
    } else if x < 0.0 {
        0b010
    } else if x < 2.0 {
        0b110
    } else if x < 4.0 {
        0b111
    } else if x < 6.0 {
        0b101
    } else {
        0b100
    }
}

/// Normalization factor giving unit average symbol energy.
fn norm(modulation: Modulation) -> f64 {
    match modulation {
        Modulation::Bpsk => 1.0,
        Modulation::Qpsk => std::f64::consts::SQRT_2.recip(),
        Modulation::Qam16 => (10f64).sqrt().recip(),
        Modulation::Qam64 => (42f64).sqrt().recip(),
    }
}

/// Maps `bits_per_symbol` bits (LSB-first within the slice) to one
/// constellation point with unit average energy.
pub fn map_symbol(modulation: Modulation, bits: &[bool]) -> Cplx {
    debug_assert_eq!(bits.len(), modulation.bits_per_symbol() as usize);
    let k = norm(modulation);
    match modulation {
        Modulation::Bpsk => Cplx::new(if bits[0] { 1.0 } else { -1.0 }, 0.0),
        Modulation::Qpsk => Cplx::new(
            if bits[0] { 1.0 } else { -1.0 },
            if bits[1] { 1.0 } else { -1.0 },
        )
        .scale(k),
        Modulation::Qam16 => {
            let i = (bits[0] as u8) << 1 | bits[1] as u8;
            let q = (bits[2] as u8) << 1 | bits[3] as u8;
            Cplx::new(pam4_level(i), pam4_level(q)).scale(k)
        }
        Modulation::Qam64 => {
            let i = (bits[0] as u8) << 2 | (bits[1] as u8) << 1 | bits[2] as u8;
            let q = (bits[3] as u8) << 2 | (bits[4] as u8) << 1 | bits[5] as u8;
            Cplx::new(pam8_level(i), pam8_level(q)).scale(k)
        }
    }
}

/// Hard-decision slicer: maps a (noisy) received point back to bits.
/// Inverse of [`map_symbol`] in the noiseless case.
pub fn slice_symbol(modulation: Modulation, point: Cplx, out: &mut Vec<bool>) {
    let z = point.scale(1.0 / norm(modulation));
    match modulation {
        Modulation::Bpsk => out.push(z.re >= 0.0),
        Modulation::Qpsk => {
            out.push(z.re >= 0.0);
            out.push(z.im >= 0.0);
        }
        Modulation::Qam16 => {
            let i = pam4_slice(z.re);
            let q = pam4_slice(z.im);
            out.push(i & 0b10 != 0);
            out.push(i & 0b01 != 0);
            out.push(q & 0b10 != 0);
            out.push(q & 0b01 != 0);
        }
        Modulation::Qam64 => {
            let i = pam8_slice(z.re);
            let q = pam8_slice(z.im);
            out.push(i & 0b100 != 0);
            out.push(i & 0b010 != 0);
            out.push(i & 0b001 != 0);
            out.push(q & 0b100 != 0);
            out.push(q & 0b010 != 0);
            out.push(q & 0b001 != 0);
        }
    }
}

/// Maps a bitstream to a symbol stream. The tail is zero-padded to a whole
/// symbol if needed.
pub fn modulate(modulation: Modulation, bits: &[bool]) -> Vec<Cplx> {
    let mut symbols = Vec::new();
    modulate_into(modulation, bits, &mut symbols);
    symbols
}

/// Allocation-free [`modulate`]: clears and refills `symbols`. The
/// modulation is matched once outside the symbol loop, so each arm is a
/// tight specialized mapper producing bit-identical points to
/// [`map_symbol`].
pub fn modulate_into(modulation: Modulation, bits: &[bool], symbols: &mut Vec<Cplx>) {
    let bps = modulation.bits_per_symbol() as usize;
    symbols.clear();
    symbols.reserve(bits.len().div_ceil(bps));
    let k = norm(modulation);
    let bit = |g: &[bool], j: usize| *g.get(j).unwrap_or(&false) as u8;
    match modulation {
        Modulation::Bpsk => {
            for &b in bits {
                symbols.push(Cplx::new(if b { 1.0 } else { -1.0 }, 0.0));
            }
        }
        Modulation::Qpsk => {
            for g in bits.chunks(2) {
                symbols.push(Cplx::new(
                    if g[0] { k } else { -k },
                    if bit(g, 1) != 0 { k } else { -k },
                ));
            }
        }
        Modulation::Qam16 => {
            for g in bits.chunks(4) {
                let i = bit(g, 0) << 1 | bit(g, 1);
                let q = bit(g, 2) << 1 | bit(g, 3);
                symbols.push(Cplx::new(pam4_level(i) * k, pam4_level(q) * k));
            }
        }
        Modulation::Qam64 => {
            for g in bits.chunks(6) {
                let i = bit(g, 0) << 2 | bit(g, 1) << 1 | bit(g, 2);
                let q = bit(g, 3) << 2 | bit(g, 4) << 1 | bit(g, 5);
                symbols.push(Cplx::new(pam8_level(i) * k, pam8_level(q) * k));
            }
        }
    }
}

/// Hard-demodulates a symbol stream back to bits (length `symbols.len() ×
/// bits_per_symbol`; the caller truncates any pad).
pub fn demodulate(modulation: Modulation, symbols: &[Cplx]) -> Vec<bool> {
    let mut bits = Vec::new();
    demodulate_into(modulation, symbols, &mut bits);
    bits
}

/// Allocation-free [`demodulate`]: clears and refills `bits` with the same
/// hard decisions as [`slice_symbol`], the modulation matched once outside
/// the loop.
pub fn demodulate_into(modulation: Modulation, symbols: &[Cplx], bits: &mut Vec<bool>) {
    bits.clear();
    bits.reserve(symbols.len() * modulation.bits_per_symbol() as usize);
    let inv = 1.0 / norm(modulation);
    match modulation {
        Modulation::Bpsk => {
            for s in symbols {
                bits.push(s.re * inv >= 0.0);
            }
        }
        Modulation::Qpsk => {
            for s in symbols {
                bits.push(s.re * inv >= 0.0);
                bits.push(s.im * inv >= 0.0);
            }
        }
        Modulation::Qam16 => {
            for s in symbols {
                let i = pam4_slice(s.re * inv);
                let q = pam4_slice(s.im * inv);
                bits.push(i & 0b10 != 0);
                bits.push(i & 0b01 != 0);
                bits.push(q & 0b10 != 0);
                bits.push(q & 0b01 != 0);
            }
        }
        Modulation::Qam64 => {
            for s in symbols {
                let i = pam8_slice(s.re * inv);
                let q = pam8_slice(s.im * inv);
                bits.push(i & 0b100 != 0);
                bits.push(i & 0b010 != 0);
                bits.push(i & 0b001 != 0);
                bits.push(q & 0b100 != 0);
                bits.push(q & 0b010 != 0);
                bits.push(q & 0b001 != 0);
            }
        }
    }
}

/// Differentially encodes QPSK symbols: each output symbol is the previous
/// output rotated by the current symbol's phase (reference symbol 1+0j).
/// This is the DQPSK the paper's WarpLab pipeline transmits.
pub fn dqpsk_encode(symbols: &[Cplx]) -> Vec<Cplx> {
    let mut out = Vec::with_capacity(symbols.len());
    let mut prev = Cplx::ONE;
    for s in symbols {
        // Unit-energy QPSK symbols have |s| = 1, so the running product
        // stays on the unit circle.
        let cur = prev * *s;
        out.push(cur);
        prev = cur;
    }
    out
}

/// Differentially decodes DQPSK: recovers each symbol from the phase
/// difference of consecutive received samples — no channel estimate needed,
/// which is why the WARP experiments favour it.
pub fn dqpsk_decode(received: &[Cplx]) -> Vec<Cplx> {
    let mut out = Vec::with_capacity(received.len());
    let mut prev = Cplx::ONE;
    for r in received {
        let d = *r * prev.conj();
        let mag_sqr = prev.norm_sqr().max(1e-24);
        out.push(d.scale(1.0 / mag_sqr));
        prev = *r;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(n: usize, seed: u64) -> Vec<bool> {
        // Simple xorshift so the test has no RNG dependency.
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state & 1 == 1
            })
            .collect()
    }

    #[test]
    fn roundtrip_all_modulations() {
        for m in Modulation::ALL {
            let bps = m.bits_per_symbol() as usize;
            let bits = random_bits(bps * 200, 7);
            let rx = demodulate(m, &modulate(m, &bits));
            assert_eq!(bits, rx[..bits.len()], "{m:?}");
        }
    }

    #[test]
    fn unit_average_energy() {
        for m in Modulation::ALL {
            let bps = m.bits_per_symbol() as usize;
            // Exhaustive constellation sweep.
            let count = 1usize << bps;
            let mut energy = 0.0;
            for v in 0..count {
                let bits: Vec<bool> = (0..bps).map(|i| v >> i & 1 == 1).collect();
                energy += map_symbol(m, &bits).norm_sqr();
            }
            energy /= count as f64;
            assert!((energy - 1.0).abs() < 1e-12, "{m:?}: energy {energy}");
        }
    }

    #[test]
    fn gray_neighbours_differ_by_one_bit_qam16() {
        // Adjacent PAM-4 levels must differ in exactly one bit.
        let levels = [0b00u8, 0b01, 0b11, 0b10];
        for w in levels.windows(2) {
            assert_eq!((w[0] ^ w[1]).count_ones(), 1);
        }
        // And pam4_level must be increasing along that Gray sequence.
        let mut prev = f64::NEG_INFINITY;
        for l in levels {
            let v = pam4_level(l);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn gray_neighbours_differ_by_one_bit_qam64() {
        let levels = [0b000u8, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100];
        for w in levels.windows(2) {
            assert_eq!((w[0] ^ w[1]).count_ones(), 1);
        }
    }

    #[test]
    fn slicer_tolerates_small_noise() {
        for m in Modulation::ALL {
            let bps = m.bits_per_symbol() as usize;
            let bits = random_bits(bps * 64, 3);
            let mut symbols = modulate(m, &bits);
            for (i, s) in symbols.iter_mut().enumerate() {
                *s += Cplx::new(
                    0.01 * ((i % 3) as f64 - 1.0),
                    -0.01 * ((i % 5) as f64 - 2.0),
                );
            }
            let rx = demodulate(m, &symbols);
            assert_eq!(bits, rx[..bits.len()], "{m:?}");
        }
    }

    #[test]
    fn dqpsk_roundtrip() {
        let bits = random_bits(2 * 300, 11);
        let symbols = modulate(Modulation::Qpsk, &bits);
        let tx = dqpsk_encode(&symbols);
        let decoded = dqpsk_decode(&tx);
        let rx = demodulate(Modulation::Qpsk, &decoded);
        assert_eq!(bits, rx[..bits.len()]);
    }

    #[test]
    fn dqpsk_survives_constant_phase_rotation() {
        // The whole point of differential encoding: an unknown channel
        // phase common to all samples cancels in the decode.
        let bits = random_bits(2 * 100, 23);
        let symbols = modulate(Modulation::Qpsk, &bits);
        let tx = dqpsk_encode(&symbols);
        let rotated: Vec<Cplx> = tx.iter().map(|s| *s * Cplx::cis(1.234)).collect();
        let decoded = dqpsk_decode(&rotated);
        // The first symbol is corrupted by the rotated reference; skip it.
        let rx = demodulate(Modulation::Qpsk, &decoded[1..]);
        assert_eq!(bits[2..], rx[..bits.len() - 2]);
    }

    #[test]
    fn tail_padding_roundtrip() {
        // 7 bits into 16-QAM (4 bits/sym) — pads to 8, decodes to 8.
        let bits = vec![true, false, true, true, false, false, true];
        let rx = demodulate(Modulation::Qam16, &modulate(Modulation::Qam16, &bits));
        assert_eq!(rx.len(), 8);
        assert_eq!(bits[..], rx[..7]);
        assert!(!rx[7]); // pad bit was false
    }
}
