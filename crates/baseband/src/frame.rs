//! End-to-end OFDM frame pipeline — the software WARP board.
//!
//! Mirrors the paper's WarpLab chain (§3.1): random bitstream → (optional
//! convolutional coding) → constellation mapping → subcarrier mapping →
//! IFFT (64- or 128-point) → cyclic prefix → Barker preamble → channel →
//! preamble detection → CP strip → FFT → per-subcarrier equalization /
//! Alamouti combining → demapping → (Viterbi) → BER/PER counting.
//!
//! Channel bonding is implemented exactly as the paper describes: "by
//! appropriately changing the subcarrier mappings, and using a 128-point
//! FFT (as opposed to a 64-point FFT with a 20 MHz channel)". The physics
//! of the CB penalty emerges naturally rather than being painted on: the
//! same total transmit power spreads over 108 instead of 52 data
//! subcarriers while the per-sample noise variance doubles with the
//! sampling bandwidth, so the per-subcarrier SNR drops by ~3 dB.
//!
//! # Engine architecture
//!
//! The Monte-Carlo loop is built around three ideas (see DESIGN.md,
//! "Baseband engine"):
//!
//! * **[`FrameWorkspace`]** owns every buffer a packet needs — grids,
//!   sample streams, coded-bit scratch, Viterbi survivor memory, FFT
//!   blocks — so the steady-state per-packet path performs *zero* heap
//!   allocations once warm.
//! * **Per-packet seeds.** Packet `i` of a trial runs on its own
//!   `StdRng` seeded with [`mix_seed`]`(seed, i)` (a splitmix64
//!   finalizer), making packets statistically independent *and*
//!   order-free: any packet can run on any worker and the result is the
//!   same.
//! * **Associative merging.** Workers return per-packet
//!   [`PacketOutcome`]s; the trial folds them in packet-index order, so
//!   floating-point accumulation order — and therefore every output bit —
//!   is identical to the sequential loop at any thread count.

use crate::channel::{add_awgn, convolve_acc, frequency_response_into, ChannelModel};
use crate::convcode::Codec;
use crate::cplx::{mean_power, Cplx};
use crate::fft::{plan, FftPlan, FFT_BATCH};
use crate::modem::{demodulate_into, modulate_into};
use crate::preamble::{build_preamble_into, detect_preamble, preamble_len};
use crate::prefix::{cp_len_for, extend_with_cp};
use crate::stbc::{alamouti_combine, Mimo2x2};
use acorn_core::par::par_map_n;
use acorn_obs::{names, NullSink, Sink};
use acorn_phy::{ChannelWidth, CodeRate, Modulation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::OnceLock;

/// Equalized symbols kept per packet for EVM statistics and the
/// constellation sample.
const CONSTELLATION_PER_PACKET: usize = 512;
/// Only the first packets of a trial contribute constellation points, so
/// the pre-subsampling sample stays bounded for arbitrarily long sweeps
/// (EVM still accumulates over *every* packet).
const CONSTELLATION_PACKETS: usize = 64;
/// Hard upper bound on the constellation sample a report retains.
const CONSTELLATION_CAP: usize = 4096;
/// Packets per parallel work item *and* per batched
/// [`FrameWorkspace::run_packets`] call on the trial paths. Chunking is by
/// fixed packet index ranges, so the partition — and hence the result — is
/// independent of the worker count. Public so benchmarks can record the
/// effective batch size next to their numbers.
pub const PACKET_CHUNK: usize = 8;

/// How the receiver finds the frame start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SyncMode {
    /// The receiver is told the exact frame offset (the paper's BERMAC
    /// effectively has this: both boards are loaded with the same known
    /// payload, so raw-BER measurement is sync-independent). No preamble
    /// is transmitted.
    Genie,
    /// Barker correlation detection with the given normalized threshold;
    /// a missed detection makes the whole frame a packet error.
    Preamble {
        /// Normalized correlation threshold in `(0, 1)`.
        threshold: f64,
    },
}

/// How the receiver obtains its per-subcarrier channel estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Equalization {
    /// The receiver is handed the exact channel frequency response (no
    /// training overhead, no estimation noise). Use for validating against
    /// closed-form theory — the paper's Fig. 3a comparison implicitly has
    /// this property because BER is computed on known payloads.
    Genie,
    /// Least-squares estimation from `symbols` known training OFDM symbols
    /// (averaged). Estimation noise scales as `1/symbols`; real preamble
    /// designs use 2–4 long training fields.
    Training {
        /// Number of training OFDM symbols to average (per antenna for
        /// STBC). Must be ≥ 1.
        symbols: usize,
    },
}

/// A structurally invalid [`FrameConfig`] — the typed alternative to
/// aborting an experiment binary mid-sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The channel's delay spread does not fit inside the cyclic prefix,
    /// so inter-symbol interference would leak between OFDM symbols and
    /// per-subcarrier equalization would be invalid.
    ChannelMemoryExceedsCp {
        /// Channel memory in samples (taps − 1).
        memory: usize,
        /// Cyclic-prefix length in samples for the configured width/GI.
        cp: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::ChannelMemoryExceedsCp { memory, cp } => write!(
                f,
                "channel memory ({memory}) exceeds the cyclic prefix ({cp})"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Full configuration of one Monte-Carlo link experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameConfig {
    /// Channel width (selects FFT size and subcarrier map).
    pub width: ChannelWidth,
    /// Subcarrier modulation.
    pub modulation: Modulation,
    /// FEC; `None` reproduces the paper's *uncoded* WARP measurements.
    pub code_rate: Option<CodeRate>,
    /// `true` → 2×2 Alamouti STBC (the paper's WARP mode); `false` → SISO.
    pub stbc: bool,
    /// Total transmit power, linear relative units (width-independent, as
    /// the 802.11n spec mandates).
    pub tx_power: f64,
    /// Noise variance per complex sample *at 20 MHz sampling*; the 40 MHz
    /// path automatically doubles it (same N₀, twice the bandwidth).
    pub noise_density: f64,
    /// Fading model for each antenna path.
    pub channel: ChannelModel,
    /// Payload length in bytes (the paper uses 1500).
    pub packet_bytes: usize,
    /// Frame-synchronization mode.
    pub sync: SyncMode,
    /// Channel-estimation mode.
    pub equalization: Equalization,
    /// Guard interval: long (800 ns, N/4 cyclic prefix) or short (400 ns,
    /// N/8) — the rate-boosting option of the paper's footnote 2.
    pub gi: acorn_phy::GuardInterval,
}

impl FrameConfig {
    /// A clean baseline config: uncoded QPSK, SISO, AWGN, genie sync,
    /// 1500-byte packets, unit noise density.
    pub fn baseline(width: ChannelWidth) -> FrameConfig {
        FrameConfig {
            width,
            modulation: Modulation::Qpsk,
            code_rate: None,
            stbc: false,
            tx_power: 1.0,
            noise_density: 1.0,
            channel: ChannelModel::Awgn,
            packet_bytes: 1500,
            sync: SyncMode::Genie,
            equalization: Equalization::Training { symbols: 4 },
            gi: acorn_phy::GuardInterval::Long,
        }
    }

    /// Checks structural validity: the channel's delay spread must fit
    /// inside the cyclic prefix of this width/GI combination.
    pub fn validate(&self) -> Result<(), FrameError> {
        let cp = cp_len_for(self.width.fft_size(), self.gi);
        let memory = self.channel.memory();
        if memory > cp {
            return Err(FrameError::ChannelMemoryExceedsCp { memory, cp });
        }
        Ok(())
    }

    /// Number of training OFDM symbols sent per transmit antenna.
    fn n_train(&self) -> usize {
        match self.equalization {
            Equalization::Genie => 0,
            Equalization::Training { symbols } => symbols.max(1),
        }
    }

    /// Per-sample noise variance for this config's width.
    pub fn sample_noise(&self) -> f64 {
        match self.width {
            ChannelWidth::Ht20 => self.noise_density,
            ChannelWidth::Ht40 => 2.0 * self.noise_density,
        }
    }

    /// Per-subcarrier data amplitude for this config: the total transmit
    /// power `P` spread over the data subcarriers, expressed on the
    /// unnormalized-FFT grid (`A = N·√(P/N_data)`).
    pub fn subcarrier_amplitude(&self) -> f64 {
        let n = self.width.fft_size() as f64;
        let nd = self.width.data_subcarriers() as f64;
        n * (self.tx_power / nd).sqrt()
    }

    /// The per-subcarrier SNR (dB) this config produces:
    /// `γ = A² / (N·σ²) = N·P / (N_data·σ²)`.
    pub fn snr_per_subcarrier_db(&self) -> f64 {
        let n = self.width.fft_size() as f64;
        let nd = self.width.data_subcarriers() as f64;
        let gamma = n * self.tx_power / (nd * self.sample_noise());
        10.0 * gamma.log10()
    }

    /// Sets `tx_power` so the per-subcarrier SNR equals `snr_db` at this
    /// config's width and noise density.
    pub fn with_target_snr(mut self, snr_db: f64) -> FrameConfig {
        let n = self.width.fft_size() as f64;
        let nd = self.width.data_subcarriers() as f64;
        let gamma = 10f64.powf(snr_db / 10.0);
        self.tx_power = gamma * nd * self.sample_noise() / n;
        self
    }
}

/// Aggregated results of a Monte-Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameReport {
    /// Total payload bits compared.
    pub bits: usize,
    /// Payload bits received in error.
    pub bit_errors: usize,
    /// Packets transmitted.
    pub packets: usize,
    /// Packets with ≥ 1 payload bit error (or a sync failure).
    pub packet_errors: usize,
    /// Frames whose preamble was not detected (only in `Preamble` sync).
    pub sync_failures: usize,
    /// Sample of equalized data-subcarrier symbols (unit-energy scale),
    /// for constellation plots (Fig. 2). Drawn from the first packets of
    /// the trial and decimated to ≤ 4096 points by an exact stride.
    pub constellation: Vec<Cplx>,
    /// RMS error-vector magnitude over the sampled symbols of *every*
    /// packet.
    pub evm_rms: f64,
    /// The configured per-subcarrier SNR (dB) for convenience.
    pub snr_per_subcarrier_db: f64,
    /// Measured mean transmit power of the time-domain signal (sanity
    /// check that 20/40 MHz use the same total power).
    pub measured_tx_power: f64,
}

impl FrameReport {
    /// Bit error rate.
    pub fn ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.bits as f64
        }
    }

    /// Packet error rate.
    pub fn per(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.packet_errors as f64 / self.packets as f64
        }
    }
}

/// Everything one packet contributes to a [`FrameReport`]. `Copy`, so
/// parallel workers can ship per-packet values back to the fold, which
/// re-accumulates them in packet-index order — the floating-point sums
/// come out bit-identical to the sequential loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketOutcome {
    /// Payload bits compared.
    pub bits: usize,
    /// Payload bits in error (all of them on a sync failure).
    pub bit_errors: usize,
    /// The preamble correlator missed the frame.
    pub sync_failed: bool,
    /// Measured mean transmit power of this packet's frame.
    pub tx_power: f64,
    /// Σ|rx − tx|² over the sampled equalized symbols.
    pub evm_sum: f64,
    /// Number of symbols in `evm_sum`.
    pub evm_n: usize,
}

/// Mixes a trial seed with a packet (or config) index into an independent
/// RNG seed — a splitmix64 finalizer, so consecutive indices land far
/// apart in seed space. This is the determinism contract's anchor: packet
/// `i` always sees `StdRng::seed_from_u64(mix_seed(seed, i))` no matter
/// which worker runs it.
pub fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Indices of the data subcarriers on the FFT grid, DC (bin 0) excluded,
/// split symmetrically over positive and negative frequencies — the
/// "subcarrier mapping" the paper changes to implement CB. Computed once
/// per width and returned as a shared slice.
pub fn data_subcarrier_bins(width: ChannelWidth) -> &'static [usize] {
    static BINS_20: OnceLock<Vec<usize>> = OnceLock::new();
    static BINS_40: OnceLock<Vec<usize>> = OnceLock::new();
    let cell = match width {
        ChannelWidth::Ht20 => &BINS_20,
        ChannelWidth::Ht40 => &BINS_40,
    };
    cell.get_or_init(|| {
        let n = width.fft_size();
        let nd = width.data_subcarriers();
        let half = nd / 2;
        let mut bins = Vec::with_capacity(nd);
        // Positive frequencies: bins 1..=half.
        bins.extend(1..=half);
        // Negative frequencies: bins n-half..n-1 … plus one extra positive
        // bin if nd is odd (it never is for 52/108, but stay correct).
        bins.extend(n - (nd - half)..n);
        bins
    })
}

/// The known training grid: unit-energy QPSK-like pilots on every data
/// subcarrier with a deterministic phase pattern (good PAPR is not a goal
/// here, channel identifiability is). Values carry the subcarrier
/// amplitude — the scale the *receiver* references for LS estimation.
fn training_grid_into(width: ChannelWidth, amplitude: f64, out: &mut Vec<Cplx>) {
    let bins = data_subcarrier_bins(width);
    out.clear();
    out.resize(width.fft_size(), Cplx::ZERO);
    for (i, &b) in bins.iter().enumerate() {
        out[b] = Cplx::cis(std::f64::consts::PI * ((i * i) % 7) as f64 / 3.5).scale(amplitude);
    }
}

/// Preallocated scratch for the whole per-packet pipeline. Build one (or
/// let [`run_trial`] keep one per worker thread), feed it packets forever:
/// after the first packet of a given [`FrameConfig`] shape, the hot path
/// touches the allocator zero times.
///
/// Holds an `Rc` to the cached FFT plan, so a workspace is intentionally
/// *not* `Send` — each worker thread owns its own.
#[derive(Debug, Default)]
pub struct FrameWorkspace {
    /// Config the precomputed members (plan, training grid, preamble)
    /// were derived for.
    last: Option<FrameConfig>,
    fft: Option<Rc<FftPlan>>,
    /// Receiver-scale training grid (subcarrier amplitude applied).
    train: Vec<Cplx>,
    /// Time-domain preamble at the configured power (Preamble sync only).
    preamble: Vec<Cplx>,

    // Transmit side.
    info: Vec<bool>,
    /// Rate-1/2 mother-code scratch (punctured rates only).
    mother: Vec<bool>,
    /// Transmitted coded bits (coded configs only; uncoded maps `info`).
    coded: Vec<bool>,
    tx_symbols: Vec<Cplx>,
    /// Grid / IFFT scratch, antenna 1.
    grid: Vec<Cplx>,
    /// Grid / IFFT scratch, antenna 2 (STBC).
    grid2: Vec<Cplx>,
    streams: [Vec<Cplx>; 2],

    // Channel.
    taps: [[Vec<Cplx>; 2]; 2],
    /// Preamble ++ stream concatenation scratch (Preamble sync only).
    full: Vec<Cplx>,
    rx: [Vec<Cplx>; 2],

    // Receive side.
    fft_buf: [Vec<Cplx>; 4],
    h: Vec<Cplx>,
    /// Per-bin `1/(H·A)` — equalization is one complex multiply per
    /// symbol instead of a divide plus a scale.
    inv_h: Vec<Cplx>,
    h_mimo: Vec<Mimo2x2>,
    /// Second Alamouti output row scratch.
    row: Vec<Cplx>,
    rx_symbols: Vec<Cplx>,
    rx_bits: Vec<bool>,
    rx_info: Vec<bool>,
    /// Depunctured received-symbol class bytes, one per trellis step.
    classes: Vec<u8>,
    /// Packed Viterbi survivor words, one `u64` per trellis step.
    survivor: Vec<u64>,
    /// Planar lane buffers for the batched FFT kernels (`FFT_BATCH`
    /// transforms in bin-major layout).
    batch_re: Vec<f64>,
    batch_im: Vec<f64>,
}

impl FrameWorkspace {
    /// An empty workspace; buffers grow to their steady-state sizes on the
    /// first packet.
    pub fn new() -> FrameWorkspace {
        FrameWorkspace::default()
    }

    /// Re-derives the config-dependent precomputations (FFT plan, training
    /// grid, preamble) when the config changes; no-op otherwise.
    fn ensure(&mut self, config: &FrameConfig) {
        if self.last.as_ref() == Some(config) {
            return;
        }
        let n = config.width.fft_size();
        if self.fft.as_ref().map_or(true, |p| p.len() != n) {
            self.fft = Some(plan(n));
        }
        training_grid_into(config.width, config.subcarrier_amplitude(), &mut self.train);
        if matches!(config.sync, SyncMode::Preamble { .. }) {
            build_preamble_into(config.tx_power.sqrt(), &mut self.preamble);
        }
        self.last = Some(*config);
    }

    /// Runs one packet with its own RNG stream (see [`mix_seed`]) through
    /// the full pipeline. Zero allocations once the workspace is warm for
    /// this config shape.
    ///
    /// The equalized symbols stay in the workspace; read the
    /// constellation sample via
    /// [`constellation_sample`](FrameWorkspace::constellation_sample)
    /// before the next packet overwrites it.
    pub fn run_packet(
        &mut self,
        config: &FrameConfig,
        packet_seed: u64,
    ) -> Result<PacketOutcome, FrameError> {
        self.run_packet_obs(config, packet_seed, &NullSink)
    }

    /// [`run_packet`](FrameWorkspace::run_packet) with per-stage spans and
    /// packet/sync-failure counters reported to `sink`. With [`NullSink`]
    /// this is exactly `run_packet`: the spans compile to nothing and the
    /// zero-allocation guarantee holds.
    pub fn run_packet_obs<S: Sink>(
        &mut self,
        config: &FrameConfig,
        packet_seed: u64,
        sink: &S,
    ) -> Result<PacketOutcome, FrameError> {
        config.validate()?;
        self.ensure(config);
        let mut rng = StdRng::seed_from_u64(packet_seed);
        Ok(run_packet_inner(config, self, &mut rng, sink))
    }

    /// Runs one packet per seed through the pipeline, appending a
    /// [`PacketOutcome`] per packet to `outcomes` (cleared first). This is
    /// the batched engine entry: config validation, the [`ensure`]d
    /// precomputations (FFT plan, training grid, preamble) and the obs
    /// setup are hoisted out of the per-packet loop, so per-packet fixed
    /// costs amortize over the batch. Packet `k` runs on
    /// `StdRng::seed_from_u64(seeds[k])` — exactly what
    /// [`run_packet`](FrameWorkspace::run_packet) would do — so the
    /// outcomes are bit-identical to `seeds.iter().map(|&s|
    /// ws.run_packet(config, s))`, and zero allocations occur once the
    /// workspace is warm and `outcomes` has capacity.
    pub fn run_packets(
        &mut self,
        config: &FrameConfig,
        seeds: &[u64],
        outcomes: &mut Vec<PacketOutcome>,
    ) -> Result<(), FrameError> {
        self.run_packets_obs(config, seeds, outcomes, &NullSink)
    }

    /// [`run_packets`](FrameWorkspace::run_packets) with batch-level obs
    /// accounting. The inner loop runs span-free ([`NullSink`]); after the
    /// batch, each stage counter is bumped once by its packet count —
    /// identical totals to running
    /// [`run_packet_obs`](FrameWorkspace::run_packet_obs) per packet
    /// (sync-failed packets never reach the receive/decode stages, and a
    /// counter that would stay zero is never touched, keeping recorded
    /// snapshots byte-identical), at one sink call per stage instead of
    /// one per packet per stage.
    pub fn run_packets_obs<S: Sink>(
        &mut self,
        config: &FrameConfig,
        seeds: &[u64],
        outcomes: &mut Vec<PacketOutcome>,
        sink: &S,
    ) -> Result<(), FrameError> {
        self.run_batch(config, seeds, outcomes, 0, None)?;
        if sink.enabled() {
            let n = seeds.len() as u64;
            let failures = outcomes.iter().filter(|o| o.sync_failed).count() as u64;
            if n > 0 {
                sink.add(names::BASEBAND_PACKETS, n);
                sink.add(names::BASEBAND_STAGE_ENCODE, n);
                sink.add(names::BASEBAND_STAGE_STREAMS, n);
                sink.add(names::BASEBAND_STAGE_CHANNEL, n);
                sink.add(names::BASEBAND_STAGE_SYNC, n);
            }
            if n > failures {
                sink.add(names::BASEBAND_STAGE_RECEIVE, n - failures);
                sink.add(names::BASEBAND_STAGE_DECODE, n - failures);
            }
            if failures > 0 {
                sink.add(names::BASEBAND_SYNC_FAILURES, failures);
            }
        }
        Ok(())
    }

    /// The shared batched loop: validates and [`ensure`]s once, then runs
    /// every seed back-to-back. The first `capture_first` packets append
    /// their constellation samples to `constellation` (the trial paths
    /// capture the globally-first [`CONSTELLATION_PACKETS`] packets; the
    /// plain batched entry captures none).
    fn run_batch(
        &mut self,
        config: &FrameConfig,
        seeds: &[u64],
        outcomes: &mut Vec<PacketOutcome>,
        capture_first: usize,
        mut constellation: Option<&mut Vec<Cplx>>,
    ) -> Result<(), FrameError> {
        config.validate()?;
        self.ensure(config);
        outcomes.clear();
        outcomes.reserve(seeds.len());
        for (k, &packet_seed) in seeds.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(packet_seed);
            let o = run_packet_inner(config, self, &mut rng, &NullSink);
            if k < capture_first {
                if let Some(c) = constellation.as_deref_mut() {
                    c.extend_from_slice(self.constellation_sample());
                }
            }
            outcomes.push(o);
        }
        Ok(())
    }

    /// The equalized data symbols of the last packet, capped at the
    /// per-packet constellation budget.
    pub fn constellation_sample(&self) -> &[Cplx] {
        let n = self.rx_symbols.len().min(CONSTELLATION_PER_PACKET);
        &self.rx_symbols[..n]
    }
}

/// One packet through the pipeline; every buffer comes from `ws`.
fn run_packet_inner<S: Sink>(
    config: &FrameConfig,
    ws: &mut FrameWorkspace,
    rng: &mut StdRng,
    sink: &S,
) -> PacketOutcome {
    sink.inc(names::BASEBAND_PACKETS);
    let cp = cp_len_for(config.width.fft_size(), config.gi);
    let amplitude = config.subcarrier_amplitude();
    let info_len = config.packet_bytes * 8;

    // 1. Payload and (optional) FEC; the uncoded path modulates `info`
    //    directly (no copy).
    let codec = {
        let _span = sink.span(names::BASEBAND_STAGE_ENCODE);
        ws.info.clear();
        ws.info.extend((0..info_len).map(|_| rng.gen::<bool>()));
        let codec = config.code_rate.map(Codec::new);
        match codec {
            Some(c) => {
                c.encode_into(&ws.info, &mut ws.mother, &mut ws.coded);
                // 2. Constellation mapping.
                modulate_into(config.modulation, &ws.coded, &mut ws.tx_symbols);
            }
            None => modulate_into(config.modulation, &ws.info, &mut ws.tx_symbols),
        }
        codec
    };

    // 3-4. Subcarrier mapping + IFFT + CP, per antenna.
    {
        let _span = sink.span(names::BASEBAND_STAGE_STREAMS);
        if config.stbc {
            build_stbc_streams(config, amplitude, cp, ws);
        } else {
            build_siso_stream(config, amplitude, cp, ws);
        }
    }

    // 5. Channel + noise per receive antenna. Under Genie sync no
    //    preamble is transmitted, so the frame starts at offset 0.
    let channel_span = sink.span(names::BASEBAND_STAGE_CHANNEL);
    let n_ant = if config.stbc { 2 } else { 1 };
    for i in 0..n_ant {
        for j in 0..n_ant {
            config.channel.draw_taps_into(rng, &mut ws.taps[i][j]);
        }
    }
    let mut tx_power_meas = 0.0;
    for s in ws.streams.iter().take(n_ant) {
        tx_power_meas += mean_power(s);
    }

    let frame_offset = match config.sync {
        SyncMode::Genie => 0,
        SyncMode::Preamble { .. } => preamble_len(),
    };
    let frame_len = ws.streams[0].len();
    for j in 0..n_ant {
        let (rx_all, streams, taps, full, preamble) = (
            &mut ws.rx,
            &ws.streams,
            &ws.taps,
            &mut ws.full,
            &ws.preamble,
        );
        let rx = &mut rx_all[j];
        rx.clear();
        rx.resize(frame_offset + frame_len, Cplx::ZERO);
        for (i, stream) in streams.iter().take(n_ant).enumerate() {
            if frame_offset == 0 {
                convolve_acc(stream, &taps[i][j], rx);
            } else {
                // Antenna 1 carries the preamble; other antennas are
                // silent while it airs.
                full.clear();
                if i == 0 {
                    full.extend_from_slice(preamble);
                } else {
                    full.resize(frame_offset, Cplx::ZERO);
                }
                full.extend_from_slice(stream);
                convolve_acc(full, &taps[i][j], rx);
            }
        }
        add_awgn(rx, config.sample_noise(), rng);
    }
    drop(channel_span);

    // 6. Synchronization.
    let data_start = {
        let _span = sink.span(names::BASEBAND_STAGE_SYNC);
        match config.sync {
            SyncMode::Genie => frame_offset,
            SyncMode::Preamble { threshold } => match detect_preamble(&ws.rx[0], 4, threshold) {
                Some(off) => off,
                None => {
                    sink.inc(names::BASEBAND_SYNC_FAILURES);
                    ws.rx_symbols.clear();
                    return PacketOutcome {
                        bits: info_len,
                        bit_errors: info_len,
                        sync_failed: true,
                        tx_power: tx_power_meas,
                        evm_sum: 0.0,
                        evm_n: 0,
                    };
                }
            },
        }
    };

    // 7. FFT + equalize/combine.
    let (evm_sum, evm_n) = {
        let _span = sink.span(names::BASEBAND_STAGE_RECEIVE);
        if config.stbc {
            receive_stbc(config, amplitude, data_start, cp, ws);
        } else {
            receive_siso(config, amplitude, data_start, cp, ws);
        }

        // Constellation / EVM bookkeeping (up to 512 symbols per packet).
        let mut evm_sum = 0.0;
        let mut evm_n = 0usize;
        for (txs, rxs) in ws
            .tx_symbols
            .iter()
            .zip(ws.rx_symbols.iter())
            .take(CONSTELLATION_PER_PACKET)
        {
            evm_sum += (*rxs - *txs).norm_sqr();
            evm_n += 1;
        }
        (evm_sum, evm_n)
    };

    // 8. Demap + decode + count.
    let _span = sink.span(names::BASEBAND_STAGE_DECODE);
    demodulate_into(config.modulation, &ws.rx_symbols, &mut ws.rx_bits);
    let bit_errors = match codec {
        Some(c) => {
            c.decode_into(
                &ws.rx_bits[..ws.coded.len()],
                info_len,
                &mut ws.classes,
                &mut ws.survivor,
                &mut ws.rx_info,
            );
            ws.rx_info
                .iter()
                .zip(&ws.info)
                .filter(|(a, b)| a != b)
                .count()
        }
        None => ws
            .rx_bits
            .iter()
            .zip(&ws.info)
            .filter(|(a, b)| a != b)
            .count(),
    };
    PacketOutcome {
        bits: info_len,
        bit_errors,
        sync_failed: false,
        tx_power: tx_power_meas,
        evm_sum,
        evm_n,
    }
}

/// SISO transmit: `n_train` training symbols followed by data symbols.
/// The IFFT's `1/N` is folded into the per-bin scale, so the transform
/// runs unnormalized.
fn build_siso_stream(config: &FrameConfig, amplitude: f64, cp: usize, ws: &mut FrameWorkspace) {
    let n = config.width.fft_size();
    let bins = data_subcarrier_bins(config.width);
    let fft = ws.fft.as_ref().expect("ensure() ran").clone();
    let inv_n = 1.0 / n as f64;
    let amp = amplitude * inv_n;
    let n_train = config.n_train();

    let (stream, grid, train) = (&mut ws.streams[0], &mut ws.grid, &ws.train);
    stream.clear();
    let n_data_ofdm = ws.tx_symbols.len().div_ceil(bins.len());
    stream.reserve((n_train + n_data_ofdm) * (n + cp));
    // Every training symbol carries the same grid: transform once and
    // replay the time-domain block.
    if n_train > 0 {
        grid.clear();
        grid.extend(train.iter().map(|t| t.scale(inv_n)));
        fft.inverse_raw(grid);
        for _ in 0..n_train {
            extend_with_cp(stream, grid, cp);
        }
    }
    // Data symbols go through the batched kernel FFT_BATCH at a time;
    // each lane is bit-identical to the single-transform path, so the
    // remainder symbols fall through to it unchanged.
    let mut chunks = ws.tx_symbols.chunks(bins.len());
    let (re, im) = (&mut ws.batch_re, &mut ws.batch_im);
    while chunks.len() >= FFT_BATCH {
        re.clear();
        re.resize(n * FFT_BATCH, 0.0);
        im.clear();
        im.resize(n * FFT_BATCH, 0.0);
        for l in 0..FFT_BATCH {
            let chunk = chunks.next().expect("length checked above");
            for (slot, sym) in chunk.iter().enumerate() {
                let s = sym.scale(amp);
                re[bins[slot] * FFT_BATCH + l] = s.re;
                im[bins[slot] * FFT_BATCH + l] = s.im;
            }
        }
        fft.inverse_raw_batch(re, im);
        for l in 0..FFT_BATCH {
            // De-transpose the lane into the contiguous grid, then let
            // `extend_with_cp` memcpy CP + body as usual.
            grid.clear();
            grid.extend((0..n).map(|i| Cplx::new(re[i * FFT_BATCH + l], im[i * FFT_BATCH + l])));
            extend_with_cp(stream, grid, cp);
        }
    }
    for chunk in chunks {
        grid.clear();
        grid.resize(n, Cplx::ZERO);
        for (slot, sym) in chunk.iter().enumerate() {
            grid[bins[slot]] = sym.scale(amp);
        }
        fft.inverse_raw(grid);
        extend_with_cp(stream, grid, cp);
    }
}

/// STBC transmit: two training slots (antenna 1 alone, then antenna 2
/// alone) followed by Alamouti-encoded data symbol pairs. Data OFDM
/// symbols are implicitly padded to an even count.
fn build_stbc_streams(config: &FrameConfig, amplitude: f64, cp: usize, ws: &mut FrameWorkspace) {
    let n = config.width.fft_size();
    let bins = data_subcarrier_bins(config.width);
    let fft = ws.fft.as_ref().expect("ensure() ran").clone();
    let inv_n = 1.0 / n as f64;
    // Each antenna radiates half the power (the 1/√2 Alamouti factor).
    let ka = amplitude * inv_n * std::f64::consts::SQRT_2.recip();
    let n_train = config.n_train();
    let nd = bins.len();
    let n_sym = ws.tx_symbols.len();
    let n_ofdm = n_sym.div_ceil(nd);
    let n_pairs = n_ofdm.div_ceil(2).max(0);

    let [s1, s2] = &mut ws.streams;
    let (grid, grid2, train, tx_symbols) = (&mut ws.grid, &mut ws.grid2, &ws.train, &ws.tx_symbols);
    s1.clear();
    s2.clear();
    let total_ofdm = 2 * n_train + 2 * n_pairs;
    s1.reserve(total_ofdm * (n + cp));
    s2.reserve(total_ofdm * (n + cp));

    // Training: antenna 1 alone, then antenna 2 alone.
    for phase in 0..2usize {
        for _ in 0..n_train {
            grid.clear();
            grid2.clear();
            if phase == 0 {
                grid.extend(train.iter().map(|t| t.scale(inv_n)));
                grid2.resize(n, Cplx::ZERO);
            } else {
                grid.resize(n, Cplx::ZERO);
                grid2.extend(train.iter().map(|t| t.scale(inv_n)));
            }
            fft.inverse_raw(grid);
            fft.inverse_raw(grid2);
            extend_with_cp(s1, grid, cp);
            extend_with_cp(s2, grid2, cp);
        }
    }

    // Alamouti data pairs: slot t1 sends (s1, s2), slot t2 (−s2*, s1*).
    for p in 0..n_pairs {
        let c1 = &tx_symbols[(2 * p * nd).min(n_sym)..((2 * p + 1) * nd).min(n_sym)];
        let c2 = &tx_symbols[((2 * p + 1) * nd).min(n_sym)..((2 * p + 2) * nd).min(n_sym)];
        for time in 0..2usize {
            grid.clear();
            grid.resize(n, Cplx::ZERO);
            grid2.clear();
            grid2.resize(n, Cplx::ZERO);
            for slot in 0..c1.len().max(c2.len()) {
                let x1 = c1.get(slot).copied().unwrap_or(Cplx::ZERO);
                let x2 = c2.get(slot).copied().unwrap_or(Cplx::ZERO);
                let b = bins[slot];
                if time == 0 {
                    grid[b] = x1.scale(ka);
                    grid2[b] = x2.scale(ka);
                } else {
                    grid[b] = -x2.conj().scale(ka);
                    grid2[b] = x1.conj().scale(ka);
                }
            }
            fft.inverse_raw(grid);
            fft.inverse_raw(grid2);
            extend_with_cp(s1, grid, cp);
            extend_with_cp(s2, grid2, cp);
        }
    }
}

/// Copies the CP-stripped OFDM block starting at `start` into `buf` and
/// transforms it (all-zeros if the block runs off the end of `stream`, as
/// a bad sync offset can make it).
fn fft_block_into(stream: &[Cplx], start: usize, cp: usize, fft: &FftPlan, buf: &mut Vec<Cplx>) {
    let n = fft.len();
    buf.clear();
    match stream.get(start..start + cp + n) {
        Some(block) => buf.extend_from_slice(&block[cp..]),
        None => buf.resize(n, Cplx::ZERO),
    }
    fft.forward(buf);
}

/// SISO receive: obtain H (genie or averaged training), fold `1/(H·A)`
/// into one per-bin multiplier, equalize.
fn receive_siso(
    config: &FrameConfig,
    amplitude: f64,
    data_start: usize,
    cp: usize,
    ws: &mut FrameWorkspace,
) {
    let n = config.width.fft_size();
    let bins = data_subcarrier_bins(config.width);
    let block = n + cp;
    let n_train = config.n_train();
    let fft = ws.fft.as_ref().expect("ensure() ran").clone();

    // Channel estimate: genie frequency response or LS over the training
    // symbols, averaged.
    match config.equalization {
        Equalization::Genie => frequency_response_into(&ws.taps[0][0], &fft, &mut ws.h),
        Equalization::Training { .. } => {
            let (h, fb, rx, train) = (&mut ws.h, &mut ws.fft_buf[0], &ws.rx[0], &ws.train);
            h.clear();
            h.resize(n, Cplx::ZERO);
            let k = 1.0 / n_train as f64;
            for t in 0..n_train {
                fft_block_into(rx, data_start + t * block, cp, &fft, fb);
                for &b in bins {
                    h[b] += (fb[b] / train[b]).scale(k);
                }
            }
        }
    }
    let inv_amp = 1.0 / amplitude;
    ws.inv_h.clear();
    ws.inv_h.resize(n, Cplx::ZERO);
    for &b in bins {
        ws.inv_h[b] = (Cplx::ONE / ws.h[b]).scale(inv_amp);
    }

    let (out, fb, rx, inv_h) = (&mut ws.rx_symbols, &mut ws.fft_buf[0], &ws.rx[0], &ws.inv_h);
    let n_symbols = ws.tx_symbols.len();
    out.clear();
    out.reserve(n_symbols);
    let n_data_ofdm = n_symbols.div_ceil(bins.len());
    let end_idx = n_train + n_data_ofdm;
    let mut ofdm_idx = n_train;
    // Full groups of FFT_BATCH data symbols run through the batched
    // kernel; each lane is bit-identical to `fft_block_into`, and the
    // equalizing multiply is the same either way, so the symbol stream
    // matches the sequential path exactly.
    let (re, im) = (&mut ws.batch_re, &mut ws.batch_im);
    while end_idx - ofdm_idx >= FFT_BATCH {
        re.clear();
        re.resize(n * FFT_BATCH, 0.0);
        im.clear();
        im.resize(n * FFT_BATCH, 0.0);
        for l in 0..FFT_BATCH {
            let start = data_start + (ofdm_idx + l) * block;
            // A block running off the end stays all-zero, matching
            // `fft_block_into` on a bad sync offset.
            if let Some(blk) = rx.get(start..start + cp + n) {
                for (i, z) in blk[cp..].iter().enumerate() {
                    re[i * FFT_BATCH + l] = z.re;
                    im[i * FFT_BATCH + l] = z.im;
                }
            }
        }
        fft.forward_batch(re, im);
        for l in 0..FFT_BATCH {
            for &b in bins {
                if out.len() >= n_symbols {
                    break;
                }
                out.push(Cplx::new(re[b * FFT_BATCH + l], im[b * FFT_BATCH + l]) * inv_h[b]);
            }
        }
        ofdm_idx += FFT_BATCH;
    }
    while out.len() < n_symbols {
        fft_block_into(rx, data_start + ofdm_idx * block, cp, &fft, fb);
        for &b in bins {
            if out.len() >= n_symbols {
                break;
            }
            out.push(fb[b] * inv_h[b]);
        }
        ofdm_idx += 1;
    }
}

/// STBC receive: estimate the four per-subcarrier paths from the two
/// training slots, then Alamouti-combine each data pair.
fn receive_stbc(
    config: &FrameConfig,
    amplitude: f64,
    data_start: usize,
    cp: usize,
    ws: &mut FrameWorkspace,
) {
    let n = config.width.fft_size();
    let bins = data_subcarrier_bins(config.width);
    let block = n + cp;
    let n_train = config.n_train();
    let fft = ws.fft.as_ref().expect("ensure() ran").clone();

    // h[tx][rx] per subcarrier: genie responses or LS estimates averaged
    // over the per-antenna training slots (antenna 1 trains in slots
    // 0..n_train, antenna 2 in n_train..2·n_train).
    ws.h_mimo.clear();
    ws.h_mimo.resize(
        n,
        Mimo2x2 {
            h: [[Cplx::ZERO; 2]; 2],
        },
    );
    match config.equalization {
        Equalization::Genie => {
            for i in 0..2 {
                for j in 0..2 {
                    frequency_response_into(&ws.taps[i][j], &fft, &mut ws.fft_buf[2 * i + j]);
                }
            }
            for &b in bins {
                ws.h_mimo[b] = Mimo2x2 {
                    h: [
                        [ws.fft_buf[0][b], ws.fft_buf[1][b]],
                        [ws.fft_buf[2][b], ws.fft_buf[3][b]],
                    ],
                };
            }
        }
        Equalization::Training { .. } => {
            let k = 1.0 / n_train as f64;
            for t in 0..n_train {
                {
                    let [fb0, fb1, fb2, fb3] = &mut ws.fft_buf;
                    fft_block_into(&ws.rx[0], data_start + t * block, cp, &fft, fb0);
                    fft_block_into(&ws.rx[1], data_start + t * block, cp, &fft, fb1);
                    fft_block_into(&ws.rx[0], data_start + (n_train + t) * block, cp, &fft, fb2);
                    fft_block_into(&ws.rx[1], data_start + (n_train + t) * block, cp, &fft, fb3);
                }
                for &b in bins {
                    let tr = ws.train[b];
                    let h = &mut ws.h_mimo[b].h;
                    h[0][0] += (ws.fft_buf[0][b] / tr).scale(k);
                    h[0][1] += (ws.fft_buf[1][b] / tr).scale(k);
                    h[1][0] += (ws.fft_buf[2][b] / tr).scale(k);
                    h[1][1] += (ws.fft_buf[3][b] / tr).scale(k);
                }
            }
        }
    }

    let inv_amp = 1.0 / amplitude;
    let n_symbols = ws.tx_symbols.len();
    ws.rx_symbols.clear();
    ws.rx_symbols.reserve(n_symbols);
    let mut pair_idx = 0usize;
    while ws.rx_symbols.len() < n_symbols {
        let base = data_start + (2 * n_train + 2 * pair_idx) * block;
        {
            let [fb0, fb1, fb2, fb3] = &mut ws.fft_buf;
            fft_block_into(&ws.rx[0], base, cp, &fft, fb0);
            fft_block_into(&ws.rx[0], base + block, cp, &fft, fb1);
            fft_block_into(&ws.rx[1], base, cp, &fft, fb2);
            fft_block_into(&ws.rx[1], base + block, cp, &fft, fb3);
        }
        // First OFDM symbol of the pair yields s1 on each subcarrier, the
        // second yields s2; reconstruct in transmit order.
        ws.row.clear();
        for &b in bins {
            let (sy1, sy2) = alamouti_combine(
                &ws.h_mimo[b],
                [ws.fft_buf[0][b], ws.fft_buf[1][b]],
                [ws.fft_buf[2][b], ws.fft_buf[3][b]],
            );
            if ws.rx_symbols.len() < n_symbols {
                ws.rx_symbols.push(sy1.scale(inv_amp));
            }
            ws.row.push(sy2.scale(inv_amp));
        }
        for i in 0..ws.row.len() {
            if ws.rx_symbols.len() >= n_symbols {
                break;
            }
            ws.rx_symbols.push(ws.row[i]);
        }
        pair_idx += 1;
    }
}

/// Accumulator for folding [`PacketOutcome`]s in packet-index order.
struct ReportFold {
    report: FrameReport,
    evm_sum: f64,
    evm_n: usize,
    tx_power_acc: f64,
}

impl ReportFold {
    fn new(config: &FrameConfig) -> ReportFold {
        ReportFold {
            report: FrameReport {
                bits: 0,
                bit_errors: 0,
                packets: 0,
                packet_errors: 0,
                sync_failures: 0,
                constellation: Vec::new(),
                evm_rms: 0.0,
                snr_per_subcarrier_db: config.snr_per_subcarrier_db(),
                measured_tx_power: 0.0,
            },
            evm_sum: 0.0,
            evm_n: 0,
            tx_power_acc: 0.0,
        }
    }

    fn push(&mut self, o: &PacketOutcome) {
        self.report.packets += 1;
        self.report.bits += o.bits;
        self.report.bit_errors += o.bit_errors;
        if o.sync_failed {
            self.report.sync_failures += 1;
        }
        if o.bit_errors > 0 || o.sync_failed {
            self.report.packet_errors += 1;
        }
        self.evm_sum += o.evm_sum;
        self.evm_n += o.evm_n;
        self.tx_power_acc += o.tx_power;
    }

    fn finish(mut self) -> FrameReport {
        self.report.evm_rms = if self.evm_n > 0 {
            (self.evm_sum / self.evm_n as f64).sqrt()
        } else {
            0.0
        };
        self.report.measured_tx_power = self.tx_power_acc / self.report.packets.max(1) as f64;
        subsample_constellation(&mut self.report.constellation);
        self.report
    }
}

/// Exact deterministic decimation to ≤ [`CONSTELLATION_CAP`] points: keep
/// index `⌊i·len/cap⌋` for `i < cap` — strictly increasing when
/// `len > cap`, so the bound always holds and the retained points are
/// stable for a given input length.
fn subsample_constellation(v: &mut Vec<Cplx>) {
    let len = v.len();
    if len <= CONSTELLATION_CAP {
        return;
    }
    for i in 0..CONSTELLATION_CAP {
        v[i] = v[i * len / CONSTELLATION_CAP];
    }
    v.truncate(CONSTELLATION_CAP);
}

/// Derives the per-packet seeds for global indices `[lo, hi)` into a
/// stack buffer (`hi - lo ≤ PACKET_CHUNK` on every trial path).
fn chunk_seeds(seed: u64, lo: usize, hi: usize) -> [u64; PACKET_CHUNK] {
    debug_assert!(hi - lo <= PACKET_CHUNK);
    let mut seeds = [0u64; PACKET_CHUNK];
    for i in lo..hi {
        seeds[i - lo] = mix_seed(seed, i as u64);
    }
    seeds
}

/// One chunk of packets `[lo, hi)` on the caller's workspace via the
/// batched entry; returns the per-packet outcomes plus this chunk's
/// constellation contribution (packets with global index below
/// [`CONSTELLATION_PACKETS`] — always a prefix of the chunk).
fn run_chunk(
    config: &FrameConfig,
    seed: u64,
    lo: usize,
    hi: usize,
    ws: &mut FrameWorkspace,
) -> (Vec<PacketOutcome>, Vec<Cplx>) {
    let mut outcomes = Vec::with_capacity(hi - lo);
    let mut constellation = Vec::new();
    let seeds = chunk_seeds(seed, lo, hi);
    let capture = CONSTELLATION_PACKETS.saturating_sub(lo).min(hi - lo);
    ws.run_batch(
        config,
        &seeds[..hi - lo],
        &mut outcomes,
        capture,
        Some(&mut constellation),
    )
    .expect("config validated before fan-out");
    (outcomes, constellation)
}

thread_local! {
    /// One workspace per worker thread, reused across chunks, trials and
    /// whole sweeps (the sequential path runs on the caller's thread and
    /// so reuses the caller's workspace across every call).
    static TRIAL_WS: RefCell<FrameWorkspace> = RefCell::new(FrameWorkspace::new());
}

/// Sequential reference: runs `n_packets` packets on the caller-provided
/// workspace. Produces exactly the same [`FrameReport`] as
/// [`try_run_trial`] — the parallel fan-out is defined as equal to this
/// fold.
pub fn run_trial_with(
    config: &FrameConfig,
    n_packets: usize,
    seed: u64,
    ws: &mut FrameWorkspace,
) -> Result<FrameReport, FrameError> {
    config.validate()?;
    let mut fold = ReportFold::new(config);
    let mut outcomes = Vec::with_capacity(PACKET_CHUNK);
    let mut lo = 0usize;
    while lo < n_packets {
        let hi = (lo + PACKET_CHUNK).min(n_packets);
        let seeds = chunk_seeds(seed, lo, hi);
        let capture = CONSTELLATION_PACKETS.saturating_sub(lo).min(hi - lo);
        ws.run_batch(
            config,
            &seeds[..hi - lo],
            &mut outcomes,
            capture,
            Some(&mut fold.report.constellation),
        )?;
        for o in &outcomes {
            fold.push(o);
        }
        lo = hi;
    }
    Ok(fold.finish())
}

/// Runs `n_packets` independent packets through the pipeline in parallel
/// and aggregates a [`FrameReport`]. Deterministic for a given `seed`:
/// per-packet RNG streams ([`mix_seed`]) plus an index-ordered fold make
/// the result bit-identical at any `ACORN_THREADS` setting, including the
/// sequential path of [`run_trial_with`].
pub fn try_run_trial(
    config: &FrameConfig,
    n_packets: usize,
    seed: u64,
) -> Result<FrameReport, FrameError> {
    config.validate()?;
    let n_chunks = n_packets.div_ceil(PACKET_CHUNK);
    let chunks = par_map_n(n_chunks, |c| {
        let lo = c * PACKET_CHUNK;
        let hi = (lo + PACKET_CHUNK).min(n_packets);
        TRIAL_WS.with(|cell| run_chunk(config, seed, lo, hi, &mut cell.borrow_mut()))
    });
    let mut fold = ReportFold::new(config);
    for (outcomes, constellation) in &chunks {
        for o in outcomes {
            fold.push(o);
        }
        fold.report.constellation.extend_from_slice(constellation);
    }
    Ok(fold.finish())
}

/// [`try_run_trial`] for callers that treat a bad config as a bug: panics
/// with the [`FrameError`] message (e.g. when the channel memory exceeds
/// the cyclic prefix).
pub fn run_trial(config: &FrameConfig, n_packets: usize, seed: u64) -> FrameReport {
    match try_run_trial(config, n_packets, seed) {
        Ok(report) => report,
        Err(e) => panic!("{e}"),
    }
}

/// Batched sweep API: runs `n_packets` packets for *every* config of a
/// grid through one parallel fan-out, so worker workspaces warm up once
/// and stay hot across the whole sweep (an SNR grid reuses each worker's
/// buffers across all its points).
///
/// Config `i` runs on the derived seed `mix_seed(seed, i)`; its report is
/// bit-identical to `try_run_trial(&configs[i], n_packets,
/// mix_seed(seed, i as u64))` at any thread count. Invalid configs yield
/// their `Err` without disturbing the rest of the sweep.
pub fn run_trials(
    configs: &[FrameConfig],
    n_packets: usize,
    seed: u64,
) -> Vec<Result<FrameReport, FrameError>> {
    let n_chunks = n_packets.div_ceil(PACKET_CHUNK);
    // Flatten (config, chunk) into one work list over the valid configs.
    let mut items: Vec<(usize, usize)> = Vec::new();
    for (ci, config) in configs.iter().enumerate() {
        if config.validate().is_ok() {
            items.extend((0..n_chunks).map(|c| (ci, c)));
        }
    }
    let chunk_results = par_map_n(items.len(), |k| {
        let (ci, c) = items[k];
        let config = &configs[ci];
        let config_seed = mix_seed(seed, ci as u64);
        let lo = c * PACKET_CHUNK;
        let hi = (lo + PACKET_CHUNK).min(n_packets);
        TRIAL_WS.with(|cell| run_chunk(config, config_seed, lo, hi, &mut cell.borrow_mut()))
    });

    let mut folds: Vec<Result<ReportFold, FrameError>> = configs
        .iter()
        .map(|c| c.validate().map(|()| ReportFold::new(c)))
        .collect();
    for (&(ci, _), (outcomes, constellation)) in items.iter().zip(chunk_results.iter()) {
        let fold = folds[ci]
            .as_mut()
            .expect("only valid configs were fanned out");
        for o in outcomes {
            fold.push(o);
        }
        fold.report.constellation.extend_from_slice(constellation);
    }
    folds
        .into_iter()
        .map(|f| f.map(ReportFold::finish))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subcarrier_maps_have_right_size_and_skip_dc() {
        for w in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
            let bins = data_subcarrier_bins(w);
            assert_eq!(bins.len(), w.data_subcarriers());
            assert!(!bins.contains(&0), "DC must stay empty");
            assert!(bins.iter().all(|&b| b < w.fft_size()));
            let mut uniq = bins.to_vec();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), bins.len(), "bins must be unique");
            // The cached slice is stable across calls.
            assert_eq!(bins.as_ptr(), data_subcarrier_bins(w).as_ptr());
        }
    }

    #[test]
    fn noiseless_siso_is_error_free() {
        for w in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
            for m in Modulation::ALL {
                let mut cfg = FrameConfig::baseline(w);
                cfg.modulation = m;
                cfg.noise_density = 0.0;
                cfg.packet_bytes = 200;
                let r = run_trial(&cfg, 2, 1);
                assert_eq!(r.bit_errors, 0, "{w:?}/{m:?}");
                assert_eq!(r.packet_errors, 0);
                assert!(r.evm_rms < 1e-9, "EVM {}", r.evm_rms);
            }
        }
    }

    #[test]
    fn noiseless_stbc_is_error_free() {
        let mut cfg = FrameConfig::baseline(ChannelWidth::Ht20);
        cfg.stbc = true;
        cfg.noise_density = 0.0;
        cfg.channel = ChannelModel::FlatRayleigh;
        cfg.packet_bytes = 200;
        let r = run_trial(&cfg, 3, 2);
        assert_eq!(r.bit_errors, 0);
    }

    #[test]
    fn obs_packet_run_matches_plain_run_and_counts_stages() {
        use acorn_obs::RecordingSink;

        let mut cfg = FrameConfig::baseline(ChannelWidth::Ht20);
        cfg.packet_bytes = 120;
        let sink = RecordingSink::new();
        let mut ws_plain = FrameWorkspace::new();
        let mut ws_obs = FrameWorkspace::new();
        let n = 5u64;
        for i in 0..n {
            let seed = mix_seed(42, i);
            let plain = ws_plain.run_packet(&cfg, seed).unwrap();
            let obs = ws_obs.run_packet_obs(&cfg, seed, &sink).unwrap();
            assert_eq!(plain.bits, obs.bits);
            assert_eq!(plain.bit_errors, obs.bit_errors);
            assert_eq!(plain.sync_failed, obs.sync_failed);
            assert_eq!(plain.tx_power.to_bits(), obs.tx_power.to_bits());
        }
        let snap = sink.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.value)
        };
        assert_eq!(counter(names::BASEBAND_PACKETS), n);
        for stage in [
            names::BASEBAND_STAGE_ENCODE,
            names::BASEBAND_STAGE_STREAMS,
            names::BASEBAND_STAGE_CHANNEL,
            names::BASEBAND_STAGE_SYNC,
            names::BASEBAND_STAGE_RECEIVE,
            names::BASEBAND_STAGE_DECODE,
        ] {
            assert_eq!(counter(stage), n, "{stage}");
        }
        assert_eq!(counter(names::BASEBAND_SYNC_FAILURES), 0);
    }

    #[test]
    fn noiseless_selective_channel_is_equalized() {
        let mut cfg = FrameConfig::baseline(ChannelWidth::Ht40);
        cfg.noise_density = 0.0;
        cfg.channel = ChannelModel::SelectiveRayleigh {
            taps: 8,
            delay_spread_taps: 2.0,
        };
        cfg.packet_bytes = 150;
        let r = run_trial(&cfg, 3, 3);
        assert_eq!(
            r.bit_errors, 0,
            "per-subcarrier equalization must fix a static channel"
        );
    }

    #[test]
    fn equal_tx_power_across_widths() {
        // The 802.11n constraint: both widths transmit the same total power.
        let cfg20 = FrameConfig::baseline(ChannelWidth::Ht20);
        let cfg40 = FrameConfig::baseline(ChannelWidth::Ht40);
        let r20 = run_trial(&cfg20, 2, 4);
        let r40 = run_trial(&cfg40, 2, 4);
        let ratio = r40.measured_tx_power / r20.measured_tx_power;
        assert!((ratio - 1.0).abs() < 0.1, "tx power ratio {ratio}");
    }

    #[test]
    fn cb_costs_three_db_of_subcarrier_snr() {
        let cfg20 = FrameConfig::baseline(ChannelWidth::Ht20);
        let cfg40 = FrameConfig::baseline(ChannelWidth::Ht40);
        let d = cfg20.snr_per_subcarrier_db() - cfg40.snr_per_subcarrier_db();
        // 10·log10((64/52)/(128/216)) = 3.17 dB.
        assert!(d > 2.9 && d < 3.4, "Δ = {d}");
    }

    #[test]
    fn with_target_snr_is_consistent() {
        for w in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
            let cfg = FrameConfig::baseline(w).with_target_snr(7.5);
            assert!((cfg.snr_per_subcarrier_db() - 7.5).abs() < 1e-9);
        }
    }

    #[test]
    fn monte_carlo_ber_matches_theory_awgn_qpsk() {
        // The Fig. 3a validation in miniature: uncoded QPSK BER at a fixed
        // per-subcarrier SNR should match Q(√γ) regardless of width.
        for w in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
            let snr = 8.0;
            let cfg = FrameConfig {
                packet_bytes: 500,
                equalization: Equalization::Genie,
                ..FrameConfig::baseline(w)
            }
            .with_target_snr(snr);
            let r = run_trial(&cfg, 30, 5);
            let theory = Modulation::Qpsk.ber_awgn(snr);
            let measured = r.ber();
            assert!(
                (measured / theory) > 0.7 && (measured / theory) < 1.4,
                "{w:?}: measured {measured:.2e} vs theory {theory:.2e}"
            );
        }
    }

    #[test]
    fn fixed_power_forty_mhz_has_higher_ber() {
        // Fig. 3b: same Tx → the wider channel has more bit errors.
        let p = 1.2;
        let mk = |w| FrameConfig {
            tx_power: p,
            noise_density: 0.18,
            packet_bytes: 400,
            ..FrameConfig::baseline(w)
        };
        let r20 = run_trial(&mk(ChannelWidth::Ht20), 25, 6);
        let r40 = run_trial(&mk(ChannelWidth::Ht40), 25, 6);
        assert!(
            r40.ber() > 1.5 * r20.ber(),
            "BER20 {:.3e}, BER40 {:.3e}",
            r20.ber(),
            r40.ber()
        );
    }

    #[test]
    fn preamble_sync_works_at_reasonable_snr() {
        let cfg = FrameConfig {
            sync: SyncMode::Preamble { threshold: 0.5 },
            packet_bytes: 120,
            ..FrameConfig::baseline(ChannelWidth::Ht20)
        }
        .with_target_snr(15.0);
        let r = run_trial(&cfg, 10, 7);
        assert_eq!(r.sync_failures, 0);
        assert_eq!(r.packet_errors, 0);
    }

    #[test]
    fn coded_frames_clean_up_moderate_noise() {
        // At an SNR where uncoded QPSK has BER ~1e-2, rate-1/2 coding
        // should deliver error-free packets.
        let uncoded = FrameConfig {
            packet_bytes: 300,
            equalization: Equalization::Genie,
            ..FrameConfig::baseline(ChannelWidth::Ht20)
        }
        .with_target_snr(7.0);
        let coded = FrameConfig {
            code_rate: Some(CodeRate::R12),
            ..uncoded
        };
        let ru = run_trial(&uncoded, 10, 8);
        let rc = run_trial(&coded, 10, 8);
        assert!(ru.bit_errors > 0, "uncoded should see errors");
        assert_eq!(
            rc.bit_errors, 0,
            "coded should be clean (got {})",
            rc.bit_errors
        );
    }

    #[test]
    fn constellation_spreads_with_cb_at_fixed_power() {
        // Fig. 2: at the same Tx, the 40 MHz constellation is noisier.
        let mk = |w| FrameConfig {
            tx_power: 2.0,
            noise_density: 0.1,
            packet_bytes: 200,
            ..FrameConfig::baseline(w)
        };
        let r20 = run_trial(&mk(ChannelWidth::Ht20), 4, 9);
        let r40 = run_trial(&mk(ChannelWidth::Ht40), 4, 9);
        assert!(
            r40.evm_rms > 1.2 * r20.evm_rms,
            "EVM20 {:.3}, EVM40 {:.3}",
            r20.evm_rms,
            r40.evm_rms
        );
    }

    #[test]
    fn stbc_outperforms_siso_on_fading_links() {
        let mk = |stbc| {
            FrameConfig {
                stbc,
                channel: ChannelModel::FlatRayleigh,
                packet_bytes: 200,
                ..FrameConfig::baseline(ChannelWidth::Ht20)
            }
            .with_target_snr(14.0)
        };
        let r_siso = run_trial(&mk(false), 60, 10);
        let r_stbc = run_trial(&mk(true), 60, 10);
        assert!(
            r_stbc.ber() < r_siso.ber(),
            "STBC {:.3e} !< SISO {:.3e}",
            r_stbc.ber(),
            r_siso.ber()
        );
    }

    #[test]
    fn constellation_sample_respects_the_exact_cap() {
        // 200-byte uncoded QPSK → 800 symbols/packet, sampled at 512 per
        // packet: 10 packets produce 5120 pre-decimation points, which
        // must come back as exactly 4096.
        let cfg = FrameConfig {
            packet_bytes: 200,
            ..FrameConfig::baseline(ChannelWidth::Ht20)
        };
        let r = run_trial(&cfg, 10, 77);
        assert_eq!(r.constellation.len(), CONSTELLATION_CAP);
        // Under the cap nothing is dropped: 4 packets → 2048 points.
        let r = run_trial(&cfg, 4, 77);
        assert_eq!(r.constellation.len(), 4 * 512);
    }

    #[test]
    fn exact_stride_is_deterministic_and_ordered() {
        let mk = |len: usize| -> Vec<Cplx> { (0..len).map(|i| Cplx::new(i as f64, 0.0)).collect() };
        for len in [4097usize, 5120, 8191, 12288, 100_000] {
            let mut v = mk(len);
            subsample_constellation(&mut v);
            assert_eq!(v.len(), CONSTELLATION_CAP, "len {len}");
            // Strictly increasing source indices → strictly increasing values.
            for w in v.windows(2) {
                assert!(w[1].re > w[0].re, "len {len}");
            }
            let mut v2 = mk(len);
            subsample_constellation(&mut v2);
            assert_eq!(v, v2);
        }
        let mut small = mk(4096);
        subsample_constellation(&mut small);
        assert_eq!(small.len(), 4096, "at or below the cap is untouched");
    }

    #[test]
    fn invalid_config_yields_typed_error() {
        let cfg = FrameConfig {
            gi: acorn_phy::GuardInterval::Short,
            channel: ChannelModel::SelectiveRayleigh {
                taps: 12,
                delay_spread_taps: 2.0,
            },
            ..FrameConfig::baseline(ChannelWidth::Ht20)
        };
        let err = cfg.validate().unwrap_err();
        assert_eq!(
            err,
            FrameError::ChannelMemoryExceedsCp { memory: 11, cp: 8 }
        );
        assert_eq!(
            err.to_string(),
            "channel memory (11) exceeds the cyclic prefix (8)"
        );
        assert!(try_run_trial(&cfg, 1, 1).is_err());
        // A sweep degrades gracefully: the bad config errors, the rest run.
        let good = FrameConfig::baseline(ChannelWidth::Ht20);
        let results = run_trials(&[good, cfg, good], 2, 3);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }

    #[test]
    fn parallel_trial_matches_sequential_fold() {
        let mut ws = FrameWorkspace::new();
        for cfg in [
            FrameConfig {
                packet_bytes: 120,
                ..FrameConfig::baseline(ChannelWidth::Ht20)
            },
            FrameConfig {
                packet_bytes: 100,
                code_rate: Some(CodeRate::R34),
                ..FrameConfig::baseline(ChannelWidth::Ht40)
            },
            FrameConfig {
                packet_bytes: 100,
                stbc: true,
                channel: ChannelModel::FlatRayleigh,
                ..FrameConfig::baseline(ChannelWidth::Ht20)
            },
        ] {
            // Chunk-boundary counts: 0, <1 chunk, exact, ragged.
            for n in [0usize, 3, 8, 19] {
                let seq = run_trial_with(&cfg, n, 42, &mut ws).unwrap();
                let par = try_run_trial(&cfg, n, 42).unwrap();
                assert_eq!(seq, par);
                assert_eq!(seq.evm_rms.to_bits(), par.evm_rms.to_bits());
                assert_eq!(
                    seq.measured_tx_power.to_bits(),
                    par.measured_tx_power.to_bits()
                );
            }
        }
    }

    #[test]
    fn sweep_reports_match_individual_trials() {
        let c20 = FrameConfig {
            packet_bytes: 100,
            ..FrameConfig::baseline(ChannelWidth::Ht20)
        };
        let c40 = FrameConfig {
            packet_bytes: 100,
            ..FrameConfig::baseline(ChannelWidth::Ht40)
        };
        let sweep = run_trials(&[c20, c40], 10, 9);
        for (i, cfg) in [c20, c40].iter().enumerate() {
            let solo = try_run_trial(cfg, 10, mix_seed(9, i as u64)).unwrap();
            assert_eq!(*sweep[i].as_ref().unwrap(), solo, "config {i}");
        }
    }

    #[test]
    fn workspace_reuse_across_configs_is_transparent() {
        // Alternating 20/40 MHz, coded/uncoded, SISO/STBC on one workspace
        // must give the same reports as fresh workspaces.
        let configs = [
            FrameConfig {
                packet_bytes: 90,
                ..FrameConfig::baseline(ChannelWidth::Ht20)
            },
            FrameConfig {
                packet_bytes: 90,
                code_rate: Some(CodeRate::R12),
                ..FrameConfig::baseline(ChannelWidth::Ht40)
            },
            FrameConfig {
                packet_bytes: 90,
                stbc: true,
                ..FrameConfig::baseline(ChannelWidth::Ht20)
            },
        ];
        let mut shared = FrameWorkspace::new();
        for round in 0..2 {
            for cfg in &configs {
                let reused = run_trial_with(cfg, 4, 5, &mut shared).unwrap();
                let fresh = run_trial_with(cfg, 4, 5, &mut FrameWorkspace::new()).unwrap();
                assert_eq!(reused, fresh, "round {round}");
            }
        }
    }

    #[test]
    fn mix_seed_separates_indices_and_seeds() {
        // Not a PRNG-quality test — just that nearby inputs scatter.
        let a = mix_seed(1, 0);
        let b = mix_seed(1, 1);
        let c = mix_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        assert_eq!(mix_seed(1, 0), a, "pure function");
    }
}

#[cfg(test)]
mod sgi_tests {
    use super::*;
    use acorn_phy::GuardInterval;

    #[test]
    fn short_gi_frames_roundtrip_cleanly() {
        for w in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
            let cfg = FrameConfig {
                gi: GuardInterval::Short,
                noise_density: 0.0,
                packet_bytes: 200,
                ..FrameConfig::baseline(w)
            };
            let r = run_trial(&cfg, 2, 51);
            assert_eq!(r.bit_errors, 0, "{w:?}");
        }
    }

    #[test]
    fn short_gi_shortens_the_prefix() {
        use crate::prefix::cp_len_for;
        assert_eq!(cp_len_for(64, GuardInterval::Long), 16);
        assert_eq!(cp_len_for(64, GuardInterval::Short), 8);
        assert_eq!(cp_len_for(128, GuardInterval::Short), 16);
    }

    #[test]
    fn short_gi_equalizes_channels_within_its_prefix() {
        // Delay spread must fit the *shorter* CP now.
        let cfg = FrameConfig {
            gi: GuardInterval::Short,
            noise_density: 0.0,
            packet_bytes: 150,
            channel: ChannelModel::SelectiveRayleigh {
                taps: 8, // memory 7 ≤ CP 8 at HT20-SGI
                delay_spread_taps: 2.0,
            },
            ..FrameConfig::baseline(ChannelWidth::Ht20)
        };
        let r = run_trial(&cfg, 2, 53);
        assert_eq!(r.bit_errors, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds the cyclic prefix")]
    fn over_long_channels_are_rejected_under_sgi() {
        let cfg = FrameConfig {
            gi: GuardInterval::Short,
            channel: ChannelModel::SelectiveRayleigh {
                taps: 12, // memory 11 > CP 8
                delay_spread_taps: 2.0,
            },
            ..FrameConfig::baseline(ChannelWidth::Ht20)
        };
        run_trial(&cfg, 1, 1);
    }
}
