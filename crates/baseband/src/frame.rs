//! End-to-end OFDM frame pipeline — the software WARP board.
//!
//! Mirrors the paper's WarpLab chain (§3.1): random bitstream → (optional
//! convolutional coding) → constellation mapping → subcarrier mapping →
//! IFFT (64- or 128-point) → cyclic prefix → Barker preamble → channel →
//! preamble detection → CP strip → FFT → per-subcarrier equalization /
//! Alamouti combining → demapping → (Viterbi) → BER/PER counting.
//!
//! Channel bonding is implemented exactly as the paper describes: "by
//! appropriately changing the subcarrier mappings, and using a 128-point
//! FFT (as opposed to a 64-point FFT with a 20 MHz channel)". The physics
//! of the CB penalty emerges naturally rather than being painted on: the
//! same total transmit power spreads over 108 instead of 52 data
//! subcarriers while the per-sample noise variance doubles with the
//! sampling bandwidth, so the per-subcarrier SNR drops by ~3 dB.

use crate::channel::{add_awgn, convolve, frequency_response, ChannelModel};
use crate::cplx::{mean_power, Cplx};
use crate::fft::{plan, FftPlan};
use crate::modem::{demodulate, modulate};
use crate::preamble::{build_preamble, detect_preamble, preamble_len};
use crate::prefix::{add_cp, cp_len_for, strip_cp};
use crate::stbc::{alamouti_combine, Mimo2x2};
use acorn_phy::{ChannelWidth, CodeRate, Modulation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the receiver finds the frame start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SyncMode {
    /// The receiver is told the exact frame offset (the paper's BERMAC
    /// effectively has this: both boards are loaded with the same known
    /// payload, so raw-BER measurement is sync-independent).
    Genie,
    /// Barker correlation detection with the given normalized threshold;
    /// a missed detection makes the whole frame a packet error.
    Preamble {
        /// Normalized correlation threshold in `(0, 1)`.
        threshold: f64,
    },
}

/// How the receiver obtains its per-subcarrier channel estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Equalization {
    /// The receiver is handed the exact channel frequency response (no
    /// training overhead, no estimation noise). Use for validating against
    /// closed-form theory — the paper's Fig. 3a comparison implicitly has
    /// this property because BER is computed on known payloads.
    Genie,
    /// Least-squares estimation from `symbols` known training OFDM symbols
    /// (averaged). Estimation noise scales as `1/symbols`; real preamble
    /// designs use 2–4 long training fields.
    Training {
        /// Number of training OFDM symbols to average (per antenna for
        /// STBC). Must be ≥ 1.
        symbols: usize,
    },
}

/// Full configuration of one Monte-Carlo link experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameConfig {
    /// Channel width (selects FFT size and subcarrier map).
    pub width: ChannelWidth,
    /// Subcarrier modulation.
    pub modulation: Modulation,
    /// FEC; `None` reproduces the paper's *uncoded* WARP measurements.
    pub code_rate: Option<CodeRate>,
    /// `true` → 2×2 Alamouti STBC (the paper's WARP mode); `false` → SISO.
    pub stbc: bool,
    /// Total transmit power, linear relative units (width-independent, as
    /// the 802.11n spec mandates).
    pub tx_power: f64,
    /// Noise variance per complex sample *at 20 MHz sampling*; the 40 MHz
    /// path automatically doubles it (same N₀, twice the bandwidth).
    pub noise_density: f64,
    /// Fading model for each antenna path.
    pub channel: ChannelModel,
    /// Payload length in bytes (the paper uses 1500).
    pub packet_bytes: usize,
    /// Frame-synchronization mode.
    pub sync: SyncMode,
    /// Channel-estimation mode.
    pub equalization: Equalization,
    /// Guard interval: long (800 ns, N/4 cyclic prefix) or short (400 ns,
    /// N/8) — the rate-boosting option of the paper's footnote 2.
    pub gi: acorn_phy::GuardInterval,
}

impl FrameConfig {
    /// A clean baseline config: uncoded QPSK, SISO, AWGN, genie sync,
    /// 1500-byte packets, unit noise density.
    pub fn baseline(width: ChannelWidth) -> FrameConfig {
        FrameConfig {
            width,
            modulation: Modulation::Qpsk,
            code_rate: None,
            stbc: false,
            tx_power: 1.0,
            noise_density: 1.0,
            channel: ChannelModel::Awgn,
            packet_bytes: 1500,
            sync: SyncMode::Genie,
            equalization: Equalization::Training { symbols: 4 },
            gi: acorn_phy::GuardInterval::Long,
        }
    }

    /// Number of training OFDM symbols sent per transmit antenna.
    fn n_train(&self) -> usize {
        match self.equalization {
            Equalization::Genie => 0,
            Equalization::Training { symbols } => symbols.max(1),
        }
    }

    /// Per-sample noise variance for this config's width.
    pub fn sample_noise(&self) -> f64 {
        match self.width {
            ChannelWidth::Ht20 => self.noise_density,
            ChannelWidth::Ht40 => 2.0 * self.noise_density,
        }
    }

    /// Per-subcarrier data amplitude for this config: the total transmit
    /// power `P` spread over the data subcarriers, expressed on the
    /// unnormalized-FFT grid (`A = N·√(P/N_data)`).
    pub fn subcarrier_amplitude(&self) -> f64 {
        let n = self.width.fft_size() as f64;
        let nd = self.width.data_subcarriers() as f64;
        n * (self.tx_power / nd).sqrt()
    }

    /// The per-subcarrier SNR (dB) this config produces:
    /// `γ = A² / (N·σ²) = N·P / (N_data·σ²)`.
    pub fn snr_per_subcarrier_db(&self) -> f64 {
        let n = self.width.fft_size() as f64;
        let nd = self.width.data_subcarriers() as f64;
        let gamma = n * self.tx_power / (nd * self.sample_noise());
        10.0 * gamma.log10()
    }

    /// Sets `tx_power` so the per-subcarrier SNR equals `snr_db` at this
    /// config's width and noise density.
    pub fn with_target_snr(mut self, snr_db: f64) -> FrameConfig {
        let n = self.width.fft_size() as f64;
        let nd = self.width.data_subcarriers() as f64;
        let gamma = 10f64.powf(snr_db / 10.0);
        self.tx_power = gamma * nd * self.sample_noise() / n;
        self
    }
}

/// Aggregated results of a Monte-Carlo run.
#[derive(Debug, Clone)]
pub struct FrameReport {
    /// Total payload bits compared.
    pub bits: usize,
    /// Payload bits received in error.
    pub bit_errors: usize,
    /// Packets transmitted.
    pub packets: usize,
    /// Packets with ≥ 1 payload bit error (or a sync failure).
    pub packet_errors: usize,
    /// Frames whose preamble was not detected (only in `Preamble` sync).
    pub sync_failures: usize,
    /// Sample of equalized data-subcarrier symbols (unit-energy scale),
    /// for constellation plots (Fig. 2).
    pub constellation: Vec<Cplx>,
    /// RMS error-vector magnitude of the sampled constellation.
    pub evm_rms: f64,
    /// The configured per-subcarrier SNR (dB) for convenience.
    pub snr_per_subcarrier_db: f64,
    /// Measured mean transmit power of the time-domain signal (sanity
    /// check that 20/40 MHz use the same total power).
    pub measured_tx_power: f64,
}

impl FrameReport {
    /// Bit error rate.
    pub fn ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.bits as f64
        }
    }

    /// Packet error rate.
    pub fn per(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.packet_errors as f64 / self.packets as f64
        }
    }
}

/// Indices of the data subcarriers on the FFT grid, DC (bin 0) excluded,
/// split symmetrically over positive and negative frequencies — the
/// "subcarrier mapping" the paper changes to implement CB.
pub fn data_subcarrier_bins(width: ChannelWidth) -> Vec<usize> {
    let n = width.fft_size();
    let nd = width.data_subcarriers();
    let half = nd / 2;
    let mut bins = Vec::with_capacity(nd);
    // Positive frequencies: bins 1..=half.
    bins.extend(1..=half);
    // Negative frequencies: bins n-half..n-1 … plus one extra positive bin
    // if nd is odd (it never is for 52/108, but stay correct).
    bins.extend(n - (nd - half)..n);
    bins
}

/// Builds the time-domain OFDM symbol for one grid of subcarrier values,
/// reusing the caller's transform plan.
fn ofdm_symbol(plan: &FftPlan, grid: &[Cplx], cp_len: usize) -> Vec<Cplx> {
    let mut time = grid.to_vec();
    plan.inverse(&mut time);
    add_cp(&time, cp_len)
}

/// Internal: maps `symbols` onto consecutive OFDM symbol grids.
fn fill_grids(width: ChannelWidth, amplitude: f64, symbols: &[Cplx]) -> Vec<Vec<Cplx>> {
    let bins = data_subcarrier_bins(width);
    let n = width.fft_size();
    let mut grids = Vec::new();
    for chunk in symbols.chunks(bins.len()) {
        let mut grid = vec![Cplx::ZERO; n];
        for (slot, sym) in chunk.iter().enumerate() {
            grid[bins[slot]] = sym.scale(amplitude);
        }
        grids.push(grid);
    }
    grids
}

/// The known training grid: unit-energy QPSK-like pilots on every data
/// subcarrier with a deterministic phase pattern (good PAPR is not a goal
/// here, channel identifiability is).
fn training_grid(width: ChannelWidth, amplitude: f64) -> Vec<Cplx> {
    let bins = data_subcarrier_bins(width);
    let n = width.fft_size();
    let mut grid = vec![Cplx::ZERO; n];
    for (i, &b) in bins.iter().enumerate() {
        grid[b] = Cplx::cis(std::f64::consts::PI * ((i * i) % 7) as f64 / 3.5).scale(amplitude);
    }
    grid
}

/// Runs `n_packets` independent packets through the pipeline and
/// aggregates a [`FrameReport`]. Deterministic for a given `seed`.
pub fn run_trial(config: &FrameConfig, n_packets: usize, seed: u64) -> FrameReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = FrameReport {
        bits: 0,
        bit_errors: 0,
        packets: 0,
        packet_errors: 0,
        sync_failures: 0,
        constellation: Vec::new(),
        evm_rms: 0.0,
        snr_per_subcarrier_db: config.snr_per_subcarrier_db(),
        measured_tx_power: 0.0,
    };
    let mut evm_acc = 0.0;
    let mut evm_n = 0usize;
    let mut tx_power_acc = 0.0;

    for _ in 0..n_packets {
        let outcome = run_packet(config, &mut rng, &mut report.constellation, &mut evm_acc, &mut evm_n);
        report.packets += 1;
        report.bits += outcome.bits;
        report.bit_errors += outcome.bit_errors;
        if outcome.sync_failed {
            report.sync_failures += 1;
        }
        if outcome.bit_errors > 0 || outcome.sync_failed {
            report.packet_errors += 1;
        }
        tx_power_acc += outcome.tx_power;
    }
    report.evm_rms = if evm_n > 0 { (evm_acc / evm_n as f64).sqrt() } else { 0.0 };
    report.measured_tx_power = tx_power_acc / n_packets.max(1) as f64;
    // Keep the constellation sample bounded.
    if report.constellation.len() > 4096 {
        let step = report.constellation.len() / 4096;
        report.constellation = report
            .constellation
            .iter()
            .step_by(step.max(1))
            .copied()
            .collect();
    }
    report
}

struct PacketOutcome {
    bits: usize,
    bit_errors: usize,
    sync_failed: bool,
    tx_power: f64,
}

fn run_packet(
    config: &FrameConfig,
    rng: &mut StdRng,
    constellation: &mut Vec<Cplx>,
    evm_acc: &mut f64,
    evm_n: &mut usize,
) -> PacketOutcome {
    let n = config.width.fft_size();
    let cp = cp_len_for(n, config.gi);
    assert!(
        config.channel.memory() <= cp,
        "channel memory ({}) exceeds the cyclic prefix ({cp})",
        config.channel.memory()
    );
    let amplitude = config.subcarrier_amplitude();

    // 1. Payload and (optional) FEC.
    let info: Vec<bool> = (0..config.packet_bytes * 8).map(|_| rng.gen()).collect();
    let coded: Vec<bool> = match config.code_rate {
        Some(rate) => crate::convcode::Codec::new(rate).encode(&info),
        None => info.clone(),
    };

    // 2. Constellation mapping.
    let tx_symbols = modulate(config.modulation, &coded);

    // 3-4. Subcarrier mapping + IFFT + CP, per antenna.
    let preamble_amp = config.tx_power.sqrt();

    let (time_streams, tx_grids): (Vec<Vec<Cplx>>, Vec<Vec<Cplx>>) = if config.stbc {
        build_stbc_streams(config, amplitude, &tx_symbols, cp)
    } else {
        build_siso_stream(config, amplitude, &tx_symbols, cp)
    };
    let _ = &tx_grids;

    // 5. Channel + noise per receive antenna.
    let n_rx = if config.stbc { 2 } else { 1 };
    let n_tx = time_streams.len();
    // One tap realization per (tx, rx) path.
    let taps: Vec<Vec<Vec<Cplx>>> = (0..n_tx)
        .map(|_| (0..n_rx).map(|_| config.channel.draw_taps(rng)).collect())
        .collect();

    // Prepend preamble (sent identically from antenna 1 only, which is
    // enough for detection) and measure transmit power.
    let preamble = build_preamble(preamble_amp);
    let mut tx_power_meas = 0.0;
    for s in &time_streams {
        tx_power_meas += mean_power(s);
    }

    let frame_offset = preamble.len();
    let frame_len = time_streams[0].len();
    let mut rx_streams: Vec<Vec<Cplx>> = Vec::with_capacity(n_rx);
    for j in 0..n_rx {
        let mut rx = vec![Cplx::ZERO; frame_offset + frame_len];
        for (i, stream) in time_streams.iter().enumerate() {
            // Antenna 1 carries the preamble.
            let mut full = Vec::with_capacity(frame_offset + frame_len);
            if i == 0 {
                full.extend_from_slice(&preamble);
            } else {
                full.extend(std::iter::repeat(Cplx::ZERO).take(frame_offset));
            }
            full.extend_from_slice(stream);
            let faded = convolve(&full, &taps[i][j]);
            for (acc, s) in rx.iter_mut().zip(faded.iter()) {
                *acc += *s;
            }
        }
        add_awgn(&mut rx, config.sample_noise(), rng);
        rx_streams.push(rx);
    }

    // 6. Synchronization.
    let data_start = match config.sync {
        SyncMode::Genie => frame_offset,
        SyncMode::Preamble { threshold } => {
            match detect_preamble(&rx_streams[0], 4, threshold) {
                Some(off) => off,
                None => {
                    return PacketOutcome {
                        bits: info.len(),
                        bit_errors: info.len(),
                        sync_failed: true,
                        tx_power: tx_power_meas,
                    }
                }
            }
        }
    };
    debug_assert!(data_start >= preamble_len() || matches!(config.sync, SyncMode::Genie));

    // 7. FFT + equalize/combine + demap.
    let rx_symbols = if config.stbc {
        receive_stbc(config, amplitude, &rx_streams, data_start, tx_symbols.len(), cp, &taps)
    } else {
        receive_siso(config, amplitude, &rx_streams[0], data_start, tx_symbols.len(), cp, &taps)
    };

    // Constellation / EVM bookkeeping (on up to 512 symbols per packet).
    for (txs, rxs) in tx_symbols.iter().zip(rx_symbols.iter()).take(512) {
        constellation.push(*rxs);
        *evm_acc += (*rxs - *txs).norm_sqr();
        *evm_n += 1;
    }

    // 8. Demap + decode + count.
    let rx_bits_full = demodulate(config.modulation, &rx_symbols);
    let rx_info: Vec<bool> = match config.code_rate {
        Some(rate) => crate::convcode::Codec::new(rate).decode(&rx_bits_full[..coded.len()], info.len()),
        None => rx_bits_full[..info.len()].to_vec(),
    };
    let bit_errors = rx_info.iter().zip(&info).filter(|(a, b)| a != b).count();
    PacketOutcome {
        bits: info.len(),
        bit_errors,
        sync_failed: false,
        tx_power: tx_power_meas,
    }
}

/// SISO transmit: `n_train` training symbols followed by data symbols.
fn build_siso_stream(
    config: &FrameConfig,
    amplitude: f64,
    tx_symbols: &[Cplx],
    cp: usize,
) -> (Vec<Vec<Cplx>>, Vec<Vec<Cplx>>) {
    let fft_plan = plan(config.width.fft_size());
    let train = training_grid(config.width, amplitude);
    let mut grids = vec![train; config.n_train()];
    grids.extend(fill_grids(config.width, amplitude, tx_symbols));
    let mut stream = Vec::new();
    for g in &grids {
        stream.extend(ofdm_symbol(&fft_plan, g, cp));
    }
    (vec![stream], grids)
}

/// STBC transmit: two training slots (antenna 1 alone, then antenna 2
/// alone) followed by Alamouti-encoded data symbol pairs.
fn build_stbc_streams(
    config: &FrameConfig,
    amplitude: f64,
    tx_symbols: &[Cplx],
    cp: usize,
) -> (Vec<Vec<Cplx>>, Vec<Vec<Cplx>>) {
    let width = config.width;
    let n = width.fft_size();
    let bins = data_subcarrier_bins(width);
    let nd = bins.len();
    let train = training_grid(width, amplitude);
    let silent = vec![Cplx::ZERO; n];

    // Group data symbols into OFDM symbols, padded to an even count.
    let mut grids_data = fill_grids(width, 1.0, tx_symbols); // unit scale; amplitude applied below
    if grids_data.len() % 2 == 1 {
        grids_data.push(vec![Cplx::ZERO; n]);
    }

    let k = std::f64::consts::SQRT_2.recip();
    let n_train = config.n_train();
    let mut ant1_grids: Vec<Vec<Cplx>> = Vec::new();
    let mut ant2_grids: Vec<Vec<Cplx>> = Vec::new();
    // Antenna 1 trains alone, then antenna 2.
    for _ in 0..n_train {
        ant1_grids.push(train.clone());
        ant2_grids.push(silent.clone());
    }
    for _ in 0..n_train {
        ant1_grids.push(silent.clone());
        ant2_grids.push(train.clone());
    }
    for pair in grids_data.chunks(2) {
        let (g1, g2) = (&pair[0], &pair[1]);
        let mut a1_t1 = vec![Cplx::ZERO; n];
        let mut a2_t1 = vec![Cplx::ZERO; n];
        let mut a1_t2 = vec![Cplx::ZERO; n];
        let mut a2_t2 = vec![Cplx::ZERO; n];
        for &b in bins.iter().take(nd) {
            let s1 = g1[b].scale(amplitude);
            let s2 = g2[b].scale(amplitude);
            a1_t1[b] = s1.scale(k);
            a2_t1[b] = s2.scale(k);
            a1_t2[b] = -s2.conj().scale(k);
            a2_t2[b] = s1.conj().scale(k);
        }
        ant1_grids.push(a1_t1);
        ant1_grids.push(a1_t2);
        ant2_grids.push(a2_t1);
        ant2_grids.push(a2_t2);
    }

    let fft_plan = plan(n);
    let to_stream = |grids: &[Vec<Cplx>]| {
        let mut stream = Vec::new();
        for g in grids {
            stream.extend(ofdm_symbol(&fft_plan, g, cp));
        }
        stream
    };
    let s1 = to_stream(&ant1_grids);
    let s2 = to_stream(&ant2_grids);
    let mut all = ant1_grids;
    all.extend(ant2_grids);
    (vec![s1, s2], all)
}

/// SISO receive: obtain H (genie or averaged training), equalize, demap.
fn receive_siso(
    config: &FrameConfig,
    amplitude: f64,
    rx: &[Cplx],
    data_start: usize,
    n_symbols: usize,
    cp: usize,
    taps: &[Vec<Vec<Cplx>>],
) -> Vec<Cplx> {
    let width = config.width;
    let n = width.fft_size();
    let bins = data_subcarrier_bins(width);
    let block = n + cp;
    let train_ref = training_grid(width, amplitude);
    let n_train = config.n_train();

    let fft_plan = plan(n);
    let fft_block = |start: usize| -> Vec<Cplx> {
        let mut buf = rx
            .get(start..start + block)
            .map(|b| strip_cp(b, cp).to_vec())
            .unwrap_or_else(|| vec![Cplx::ZERO; n]);
        buf.resize(n, Cplx::ZERO);
        fft_plan.forward(&mut buf);
        buf
    };

    // Channel estimate: genie frequency response or LS over the training
    // symbols, averaged.
    let h = match config.equalization {
        Equalization::Genie => frequency_response(&taps[0][0], n),
        Equalization::Training { .. } => {
            let mut h = vec![Cplx::ZERO; n];
            for t in 0..n_train {
                let y = fft_block(data_start + t * block);
                for &b in &bins {
                    h[b] += (y[b] / train_ref[b]).scale(1.0 / n_train as f64);
                }
            }
            h
        }
    };

    let mut out = Vec::with_capacity(n_symbols);
    let mut sym_idx = 0usize;
    let mut ofdm_idx = n_train;
    while sym_idx < n_symbols {
        let y = fft_block(data_start + ofdm_idx * block);
        for &b in &bins {
            if sym_idx >= n_symbols {
                break;
            }
            let eq = (y[b] / h[b]).scale(1.0 / amplitude);
            out.push(eq);
            sym_idx += 1;
        }
        ofdm_idx += 1;
    }
    out
}

/// STBC receive: estimate the four per-subcarrier paths from the two
/// training slots, then Alamouti-combine each data pair.
fn receive_stbc(
    config: &FrameConfig,
    amplitude: f64,
    rx_streams: &[Vec<Cplx>],
    data_start: usize,
    n_symbols: usize,
    cp: usize,
    taps: &[Vec<Vec<Cplx>>],
) -> Vec<Cplx> {
    let width = config.width;
    let n = width.fft_size();
    let bins = data_subcarrier_bins(width);
    let block = n + cp;
    let train_ref = training_grid(width, amplitude);
    let n_train = config.n_train();

    let fft_plan = plan(n);
    let fft_block = |stream: &[Cplx], start: usize| -> Vec<Cplx> {
        let mut buf = stream
            .get(start..start + block)
            .map(|b| strip_cp(b, cp).to_vec())
            .unwrap_or_else(|| vec![Cplx::ZERO; n]);
        buf.resize(n, Cplx::ZERO);
        fft_plan.forward(&mut buf);
        buf
    };

    // h[tx][rx] per subcarrier: genie responses or LS estimates averaged
    // over the per-antenna training slots (antenna 1 trains in slots
    // 0..n_train, antenna 2 in n_train..2·n_train).
    let mut h: Vec<Mimo2x2> = vec![
        Mimo2x2 {
            h: [[Cplx::ONE; 2]; 2]
        };
        n
    ];
    match config.equalization {
        Equalization::Genie => {
            let resp: Vec<Vec<Vec<Cplx>>> = taps
                .iter()
                .map(|per_rx| per_rx.iter().map(|t| frequency_response(t, n)).collect())
                .collect();
            for &b in &bins {
                h[b] = Mimo2x2 {
                    h: [
                        [resp[0][0][b], resp[0][1][b]],
                        [resp[1][0][b], resp[1][1][b]],
                    ],
                };
            }
        }
        Equalization::Training { .. } => {
            for t in 0..n_train {
                let y1_a = fft_block(&rx_streams[0], data_start + t * block);
                let y2_a = fft_block(&rx_streams[1], data_start + t * block);
                let y1_b = fft_block(&rx_streams[0], data_start + (n_train + t) * block);
                let y2_b = fft_block(&rx_streams[1], data_start + (n_train + t) * block);
                for &b in &bins {
                    let tr = train_ref[b];
                    if t == 0 {
                        h[b] = Mimo2x2 {
                            h: [[Cplx::ZERO; 2]; 2],
                        };
                    }
                    let k = 1.0 / n_train as f64;
                    h[b].h[0][0] += (y1_a[b] / tr).scale(k);
                    h[b].h[0][1] += (y2_a[b] / tr).scale(k);
                    h[b].h[1][0] += (y1_b[b] / tr).scale(k);
                    h[b].h[1][1] += (y2_b[b] / tr).scale(k);
                }
            }
        }
    }

    let mut out = Vec::with_capacity(n_symbols);
    let mut pair_idx = 0usize;
    while out.len() < n_symbols {
        let base = data_start + (2 * n_train + 2 * pair_idx) * block;
        let y1_a = fft_block(&rx_streams[0], base);
        let y1_b = fft_block(&rx_streams[0], base + block);
        let y2_a = fft_block(&rx_streams[1], base);
        let y2_b = fft_block(&rx_streams[1], base + block);
        // First OFDM symbol of the pair yields s1 on each subcarrier, the
        // second yields s2; reconstruct in transmit order.
        let mut s1_row = Vec::with_capacity(bins.len());
        let mut s2_row = Vec::with_capacity(bins.len());
        for &b in &bins {
            let (s1, s2) = alamouti_combine(&h[b], [y1_a[b], y1_b[b]], [y2_a[b], y2_b[b]]);
            s1_row.push(s1.scale(1.0 / amplitude));
            s2_row.push(s2.scale(1.0 / amplitude));
        }
        for s in s1_row {
            if out.len() < n_symbols {
                out.push(s);
            }
        }
        for s in s2_row {
            if out.len() < n_symbols {
                out.push(s);
            }
        }
        pair_idx += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subcarrier_maps_have_right_size_and_skip_dc() {
        for w in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
            let bins = data_subcarrier_bins(w);
            assert_eq!(bins.len(), w.data_subcarriers());
            assert!(!bins.contains(&0), "DC must stay empty");
            assert!(bins.iter().all(|&b| b < w.fft_size()));
            let mut uniq = bins.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), bins.len(), "bins must be unique");
        }
    }

    #[test]
    fn noiseless_siso_is_error_free() {
        for w in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
            for m in Modulation::ALL {
                let mut cfg = FrameConfig::baseline(w);
                cfg.modulation = m;
                cfg.noise_density = 0.0;
                cfg.packet_bytes = 200;
                let r = run_trial(&cfg, 2, 1);
                assert_eq!(r.bit_errors, 0, "{w:?}/{m:?}");
                assert_eq!(r.packet_errors, 0);
                assert!(r.evm_rms < 1e-9, "EVM {}", r.evm_rms);
            }
        }
    }

    #[test]
    fn noiseless_stbc_is_error_free() {
        let mut cfg = FrameConfig::baseline(ChannelWidth::Ht20);
        cfg.stbc = true;
        cfg.noise_density = 0.0;
        cfg.channel = ChannelModel::FlatRayleigh;
        cfg.packet_bytes = 200;
        let r = run_trial(&cfg, 3, 2);
        assert_eq!(r.bit_errors, 0);
    }

    #[test]
    fn noiseless_selective_channel_is_equalized() {
        let mut cfg = FrameConfig::baseline(ChannelWidth::Ht40);
        cfg.noise_density = 0.0;
        cfg.channel = ChannelModel::SelectiveRayleigh {
            taps: 8,
            delay_spread_taps: 2.0,
        };
        cfg.packet_bytes = 150;
        let r = run_trial(&cfg, 3, 3);
        assert_eq!(r.bit_errors, 0, "per-subcarrier equalization must fix a static channel");
    }

    #[test]
    fn equal_tx_power_across_widths() {
        // The 802.11n constraint: both widths transmit the same total power.
        let cfg20 = FrameConfig::baseline(ChannelWidth::Ht20);
        let cfg40 = FrameConfig::baseline(ChannelWidth::Ht40);
        let r20 = run_trial(&cfg20, 2, 4);
        let r40 = run_trial(&cfg40, 2, 4);
        let ratio = r40.measured_tx_power / r20.measured_tx_power;
        assert!((ratio - 1.0).abs() < 0.1, "tx power ratio {ratio}");
    }

    #[test]
    fn cb_costs_three_db_of_subcarrier_snr() {
        let cfg20 = FrameConfig::baseline(ChannelWidth::Ht20);
        let cfg40 = FrameConfig::baseline(ChannelWidth::Ht40);
        let d = cfg20.snr_per_subcarrier_db() - cfg40.snr_per_subcarrier_db();
        // 10·log10((64/52)/(128/216)) = 3.17 dB.
        assert!(d > 2.9 && d < 3.4, "Δ = {d}");
    }

    #[test]
    fn with_target_snr_is_consistent() {
        for w in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
            let cfg = FrameConfig::baseline(w).with_target_snr(7.5);
            assert!((cfg.snr_per_subcarrier_db() - 7.5).abs() < 1e-9);
        }
    }

    #[test]
    fn monte_carlo_ber_matches_theory_awgn_qpsk() {
        // The Fig. 3a validation in miniature: uncoded QPSK BER at a fixed
        // per-subcarrier SNR should match Q(√γ) regardless of width.
        for w in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
            let snr = 8.0;
            let cfg = FrameConfig {
                packet_bytes: 500,
                equalization: Equalization::Genie,
                ..FrameConfig::baseline(w)
            }
            .with_target_snr(snr);
            let r = run_trial(&cfg, 30, 5);
            let theory = Modulation::Qpsk.ber_awgn(snr);
            let measured = r.ber();
            assert!(
                (measured / theory) > 0.7 && (measured / theory) < 1.4,
                "{w:?}: measured {measured:.2e} vs theory {theory:.2e}"
            );
        }
    }

    #[test]
    fn fixed_power_forty_mhz_has_higher_ber() {
        // Fig. 3b: same Tx → the wider channel has more bit errors.
        let p = 1.2;
        let mk = |w| FrameConfig {
            tx_power: p,
            noise_density: 0.18,
            packet_bytes: 400,
            ..FrameConfig::baseline(w)
        };
        let r20 = run_trial(&mk(ChannelWidth::Ht20), 25, 6);
        let r40 = run_trial(&mk(ChannelWidth::Ht40), 25, 6);
        assert!(
            r40.ber() > 1.5 * r20.ber(),
            "BER20 {:.3e}, BER40 {:.3e}",
            r20.ber(),
            r40.ber()
        );
    }

    #[test]
    fn preamble_sync_works_at_reasonable_snr() {
        let cfg = FrameConfig {
            sync: SyncMode::Preamble { threshold: 0.5 },
            packet_bytes: 120,
            ..FrameConfig::baseline(ChannelWidth::Ht20)
        }
        .with_target_snr(15.0);
        let r = run_trial(&cfg, 10, 7);
        assert_eq!(r.sync_failures, 0);
        assert_eq!(r.packet_errors, 0);
    }

    #[test]
    fn coded_frames_clean_up_moderate_noise() {
        // At an SNR where uncoded QPSK has BER ~1e-2, rate-1/2 coding
        // should deliver error-free packets.
        let uncoded = FrameConfig {
            packet_bytes: 300,
            equalization: Equalization::Genie,
            ..FrameConfig::baseline(ChannelWidth::Ht20)
        }
        .with_target_snr(7.0);
        let coded = FrameConfig {
            code_rate: Some(CodeRate::R12),
            ..uncoded
        };
        let ru = run_trial(&uncoded, 10, 8);
        let rc = run_trial(&coded, 10, 8);
        assert!(ru.bit_errors > 0, "uncoded should see errors");
        assert_eq!(rc.bit_errors, 0, "coded should be clean (got {})", rc.bit_errors);
    }

    #[test]
    fn constellation_spreads_with_cb_at_fixed_power() {
        // Fig. 2: at the same Tx, the 40 MHz constellation is noisier.
        let mk = |w| FrameConfig {
            tx_power: 2.0,
            noise_density: 0.1,
            packet_bytes: 200,
            ..FrameConfig::baseline(w)
        };
        let r20 = run_trial(&mk(ChannelWidth::Ht20), 4, 9);
        let r40 = run_trial(&mk(ChannelWidth::Ht40), 4, 9);
        assert!(
            r40.evm_rms > 1.2 * r20.evm_rms,
            "EVM20 {:.3}, EVM40 {:.3}",
            r20.evm_rms,
            r40.evm_rms
        );
    }

    #[test]
    fn stbc_outperforms_siso_on_fading_links() {
        let mk = |stbc| {
            FrameConfig {
                stbc,
                channel: ChannelModel::FlatRayleigh,
                packet_bytes: 200,
                ..FrameConfig::baseline(ChannelWidth::Ht20)
            }
            .with_target_snr(14.0)
        };
        let r_siso = run_trial(&mk(false), 60, 10);
        let r_stbc = run_trial(&mk(true), 60, 10);
        assert!(
            r_stbc.ber() < r_siso.ber(),
            "STBC {:.3e} !< SISO {:.3e}",
            r_stbc.ber(),
            r_siso.ber()
        );
    }
}

#[cfg(test)]
mod sgi_tests {
    use super::*;
    use acorn_phy::GuardInterval;

    #[test]
    fn short_gi_frames_roundtrip_cleanly() {
        for w in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
            let cfg = FrameConfig {
                gi: GuardInterval::Short,
                noise_density: 0.0,
                packet_bytes: 200,
                ..FrameConfig::baseline(w)
            };
            let r = run_trial(&cfg, 2, 51);
            assert_eq!(r.bit_errors, 0, "{w:?}");
        }
    }

    #[test]
    fn short_gi_shortens_the_prefix() {
        use crate::prefix::cp_len_for;
        assert_eq!(cp_len_for(64, GuardInterval::Long), 16);
        assert_eq!(cp_len_for(64, GuardInterval::Short), 8);
        assert_eq!(cp_len_for(128, GuardInterval::Short), 16);
    }

    #[test]
    fn short_gi_equalizes_channels_within_its_prefix() {
        // Delay spread must fit the *shorter* CP now.
        let cfg = FrameConfig {
            gi: GuardInterval::Short,
            noise_density: 0.0,
            packet_bytes: 150,
            channel: ChannelModel::SelectiveRayleigh {
                taps: 8, // memory 7 ≤ CP 8 at HT20-SGI
                delay_spread_taps: 2.0,
            },
            ..FrameConfig::baseline(ChannelWidth::Ht20)
        };
        let r = run_trial(&cfg, 2, 53);
        assert_eq!(r.bit_errors, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds the cyclic prefix")]
    fn over_long_channels_are_rejected_under_sgi() {
        let cfg = FrameConfig {
            gi: GuardInterval::Short,
            channel: ChannelModel::SelectiveRayleigh {
                taps: 12, // memory 11 > CP 8
                delay_spread_taps: 2.0,
            },
            ..FrameConfig::baseline(ChannelWidth::Ht20)
        };
        run_trial(&cfg, 1, 1);
    }
}
