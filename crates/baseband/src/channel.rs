//! Channel models: AWGN, flat and frequency-selective Rayleigh fading.
//!
//! The over-the-air leg of the paper's WARP experiments is replaced by
//! these models (see DESIGN.md). A channel is a causal FIR tap-delay line
//! plus additive white Gaussian noise; the three presets are
//!
//! * [`ChannelModel::Awgn`] — a single unity tap (pure AWGN),
//! * [`ChannelModel::FlatRayleigh`] — a single `CN(0,1)` tap (all
//!   subcarriers fade together),
//! * [`ChannelModel::SelectiveRayleigh`] — several exponentially decaying
//!   Rayleigh taps, so that *"each subcarrier experiences a different
//!   fade"* — the mechanism §3.1 blames for the extra error probability of
//!   the wider, 108-subcarrier band.
//!
//! Gaussian variates come from a 256-layer ziggurat over `rand`'s uniform
//! source (one `u64` draw and one compare in the common case — several
//! times faster than the Box–Muller transform it replaces, with the same
//! exact N(0,1) law), keeping the dependency footprint to the approved
//! list.

use crate::cplx::Cplx;
use rand::Rng;
use std::sync::OnceLock;

/// 256-layer ziggurat tables for the standard normal, built once at first
/// use (the container has no build-script luxury, and 257 `exp`/`ln`/`sqrt`
/// calls are cheaper than carrying a 4 KiB literal).
struct ZigguratTables {
    /// Layer abscissae `x[0] > R > x[2] > … > x[256] = 0`; `x[0]` is the
    /// virtual width of the base strip including the tail.
    x: [f64; 257],
    /// `f[i] = exp(-x[i]²/2)`.
    f: [f64; 257],
}

/// Right edge of the base ziggurat strip.
const ZIG_R: f64 = 3.654_152_885_361_008_8;
/// Area of each of the 256 equal-area pieces.
const ZIG_A: f64 = 0.004_928_673_233_99;

fn ziggurat_tables() -> &'static ZigguratTables {
    static TABLES: OnceLock<ZigguratTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let pdf = |x: f64| (-x * x / 2.0).exp();
        let mut x = [0.0; 257];
        let mut f = [0.0; 257];
        x[0] = ZIG_A / pdf(ZIG_R);
        x[1] = ZIG_R;
        for i in 1..255 {
            x[i + 1] = (-2.0 * (ZIG_A / x[i] + pdf(x[i])).ln()).sqrt();
        }
        x[256] = 0.0;
        for i in 0..257 {
            f[i] = pdf(x[i]);
        }
        ZigguratTables { x, f }
    })
}

/// Draws one standard normal variate via the ziggurat method: a single
/// `u64` provides the layer index (8 bits) and a 53-bit uniform in
/// `(-1, 1)`; ~98.8% of draws accept immediately with one table compare.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    standard_normal_with(ziggurat_tables(), rng)
}

/// [`standard_normal`] against an already-fetched table reference, so bulk
/// callers ([`add_awgn`]) pay the `OnceLock` acquire once per buffer
/// instead of once per draw.
#[inline]
fn standard_normal_with<R: Rng + ?Sized>(t: &ZigguratTables, rng: &mut R) -> f64 {
    loop {
        let bits = rng.next_u64();
        let i = (bits & 0xFF) as usize;
        // 53-bit uniform in [0,1) stretched to (-1,1).
        let u = (bits >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0;
        let x = u * t.x[i];
        if x.abs() < t.x[i + 1] {
            return x;
        }
        if i == 0 {
            // Marsaglia tail method beyond R.
            loop {
                let u1 = 1.0 - rng.gen::<f64>(); // (0, 1]
                let u2 = 1.0 - rng.gen::<f64>();
                let xt = -u1.ln() / ZIG_R;
                let yt = -u2.ln();
                if yt + yt > xt * xt {
                    return if u < 0.0 { -ZIG_R - xt } else { ZIG_R + xt };
                }
            }
        }
        // Wedge: accept with probability proportional to the pdf overhang.
        if t.f[i + 1] + (t.f[i] - t.f[i + 1]) * rng.gen::<f64>() < (-x * x / 2.0).exp() {
            return x;
        }
    }
}

/// Draws a zero-mean complex Gaussian sample with total variance
/// `variance` (split evenly between the real and imaginary parts).
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R, variance: f64) -> Cplx {
    let sigma = (variance / 2.0).sqrt();
    Cplx::new(standard_normal(rng) * sigma, standard_normal(rng) * sigma)
}

/// Adds white Gaussian noise of per-sample variance `noise_power` to a
/// buffer in place.
pub fn add_awgn<R: Rng + ?Sized>(samples: &mut [Cplx], noise_power: f64, rng: &mut R) {
    if noise_power <= 0.0 {
        return;
    }
    let sigma = (noise_power / 2.0).sqrt();
    let t = ziggurat_tables();
    for s in samples.iter_mut() {
        s.re += standard_normal_with(t, rng) * sigma;
        s.im += standard_normal_with(t, rng) * sigma;
    }
}

/// Multipath/fading presets for one transmit→receive antenna path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelModel {
    /// No fading: a single unity tap. The pure-AWGN reference used for the
    /// BER-vs-SNR validation against theory (Fig. 3a).
    Awgn,
    /// Single Rayleigh tap: the whole band fades by one `CN(0,1)` gain.
    FlatRayleigh,
    /// `taps` Rayleigh taps with an exponential power-delay profile
    /// (decay constant `delay_spread_taps`), normalized to unit average
    /// energy. Produces per-subcarrier frequency selectivity.
    SelectiveRayleigh {
        /// Number of FIR taps (must fit inside the cyclic prefix to avoid
        /// inter-symbol interference; the frame layer asserts this).
        taps: usize,
        /// Exponential decay constant of the power-delay profile, in taps.
        delay_spread_taps: f64,
    },
}

impl ChannelModel {
    /// Draws a tap-delay-line realization for one antenna path.
    ///
    /// Taps are normalized so the *expected* channel energy is 1 (a fair
    /// comparison across models); individual realizations fluctuate, which
    /// is exactly the fading we want.
    pub fn draw_taps<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Cplx> {
        let mut out = Vec::new();
        self.draw_taps_into(rng, &mut out);
        out
    }

    /// Allocation-free variant of [`ChannelModel::draw_taps`]: clears and
    /// refills `out`, so a reused buffer costs nothing in steady state.
    pub fn draw_taps_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<Cplx>) {
        out.clear();
        match *self {
            ChannelModel::Awgn => out.push(Cplx::ONE),
            ChannelModel::FlatRayleigh => out.push(complex_gaussian(rng, 1.0)),
            ChannelModel::SelectiveRayleigh {
                taps,
                delay_spread_taps,
            } => {
                assert!(taps >= 1, "at least one tap required");
                let decay = delay_spread_taps.max(1e-6);
                let mut total = 0.0;
                for k in 0..taps {
                    total += (-(k as f64) / decay).exp();
                }
                for k in 0..taps {
                    let p = (-(k as f64) / decay).exp();
                    out.push(complex_gaussian(rng, p / total));
                }
            }
        }
    }

    /// Maximum channel memory (taps − 1) — must not exceed the cyclic
    /// prefix length.
    pub fn memory(&self) -> usize {
        match *self {
            ChannelModel::Awgn | ChannelModel::FlatRayleigh => 0,
            ChannelModel::SelectiveRayleigh { taps, .. } => taps.saturating_sub(1),
        }
    }
}

/// Causal FIR convolution of `signal` with `taps`, truncated to the input
/// length (the trailing `taps−1` smeared samples fall into the next frame's
/// guard time and are discarded).
pub fn convolve(signal: &[Cplx], taps: &[Cplx]) -> Vec<Cplx> {
    let mut out = vec![Cplx::ZERO; signal.len()];
    convolve_acc(signal, taps, &mut out);
    out
}

/// Causal FIR convolution accumulated into `out` (`out[n] += Σ_k h_k·x[n−k]`,
/// truncated to the input length): the MIMO receive path sums several
/// transmit-antenna contributions into one buffer without intermediates.
/// A unity single tap degenerates to a vector add.
pub fn convolve_acc(signal: &[Cplx], taps: &[Cplx], out: &mut [Cplx]) {
    assert!(out.len() >= signal.len(), "output shorter than signal");
    if taps.len() == 1 {
        let t = taps[0];
        if t == Cplx::ONE {
            for (o, s) in out.iter_mut().zip(signal.iter()) {
                *o += *s;
            }
        } else {
            for (o, s) in out.iter_mut().zip(signal.iter()) {
                *o += t * *s;
            }
        }
        return;
    }
    // Head: partial overlap while the filter hangs off the signal start.
    let head = taps.len().min(signal.len());
    for n in 0..head {
        let mut acc = Cplx::ZERO;
        for (k, t) in taps.iter().take(n + 1).enumerate() {
            acc += *t * signal[n - k];
        }
        out[n] += acc;
    }
    // Body: full overlap, branch-free inner loop.
    for n in head..signal.len() {
        let mut acc = Cplx::ZERO;
        for (k, t) in taps.iter().enumerate() {
            acc += *t * signal[n - k];
        }
        out[n] += acc;
    }
}

/// Frequency response of a tap-delay line on an `fft_size`-point grid:
/// `H_k = Σ_m h_m e^{−j2πkm/N}`.
pub fn frequency_response(taps: &[Cplx], fft_size: usize) -> Vec<Cplx> {
    let mut h = vec![Cplx::ZERO; fft_size];
    for (k, hk) in h.iter_mut().enumerate() {
        let mut acc = Cplx::ZERO;
        for (m, t) in taps.iter().enumerate() {
            acc +=
                *t * Cplx::cis(-2.0 * std::f64::consts::PI * k as f64 * m as f64 / fft_size as f64);
        }
        *hk = acc;
    }
    h
}

/// Frequency response via a zero-padded FFT into a caller buffer: same
/// `H_k = Σ_m h_m e^{−j2πkm/N}` as [`frequency_response`] but O(N log N)
/// and allocation-free (a single tap short-circuits to a broadcast).
pub fn frequency_response_into(taps: &[Cplx], plan: &crate::fft::FftPlan, out: &mut Vec<Cplx>) {
    let n = plan.len();
    assert!(taps.len() <= n, "more taps than FFT bins");
    out.clear();
    if taps.len() == 1 {
        out.resize(n, taps[0]);
        return;
    }
    out.extend_from_slice(taps);
    out.resize(n, Cplx::ZERO);
    plan.forward(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complex_gaussian_statistics() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mut mean = Cplx::ZERO;
        let mut power = 0.0;
        for _ in 0..n {
            let z = complex_gaussian(&mut rng, 2.0);
            mean += z;
            power += z.norm_sqr();
        }
        mean = mean.scale(1.0 / n as f64);
        power /= n as f64;
        assert!(mean.abs() < 0.02, "mean {mean:?}");
        assert!((power - 2.0).abs() < 0.05, "power {power}");
    }

    #[test]
    fn standard_normal_quantiles_match_theory() {
        // The ziggurat must reproduce the N(0,1) law out into the tails:
        // P(|Z| > 1) = 0.3173, P(|Z| > 2) = 0.0455, P(|Z| > 3) = 0.0027.
        let mut rng = StdRng::seed_from_u64(11);
        let n = 400_000;
        let (mut c1, mut c2, mut c3) = (0u32, 0u32, 0u32);
        for _ in 0..n {
            let z = standard_normal(&mut rng).abs();
            c1 += (z > 1.0) as u32;
            c2 += (z > 2.0) as u32;
            c3 += (z > 3.0) as u32;
        }
        let f = |c: u32| c as f64 / n as f64;
        assert!((f(c1) - 0.3173).abs() < 0.005, "P(|Z|>1) = {}", f(c1));
        assert!((f(c2) - 0.0455).abs() < 0.002, "P(|Z|>2) = {}", f(c2));
        assert!((f(c3) - 0.0027).abs() < 0.0007, "P(|Z|>3) = {}", f(c3));
    }

    #[test]
    fn convolve_acc_matches_convolve() {
        let mut rng = StdRng::seed_from_u64(12);
        for n_taps in [1usize, 2, 5, 9] {
            let sig: Vec<Cplx> = (0..40).map(|_| complex_gaussian(&mut rng, 1.0)).collect();
            let taps: Vec<Cplx> = (0..n_taps)
                .map(|_| complex_gaussian(&mut rng, 1.0))
                .collect();
            let direct = convolve(&sig, &taps);
            let mut acc = vec![Cplx::new(1.0, -2.0); sig.len()];
            convolve_acc(&sig, &taps, &mut acc);
            for (a, d) in acc.iter().zip(direct.iter()) {
                assert!(
                    (*a - (*d + Cplx::new(1.0, -2.0))).abs() < 1e-12,
                    "{n_taps} taps"
                );
            }
        }
    }

    #[test]
    fn frequency_response_into_matches_direct() {
        let mut rng = StdRng::seed_from_u64(13);
        let plan = crate::fft::FftPlan::new(64);
        for n_taps in [1usize, 3, 8] {
            let taps: Vec<Cplx> = (0..n_taps)
                .map(|_| complex_gaussian(&mut rng, 1.0))
                .collect();
            let direct = frequency_response(&taps, 64);
            let mut h = Vec::new();
            frequency_response_into(&taps, &plan, &mut h);
            assert_eq!(h.len(), 64);
            for (a, d) in h.iter().zip(direct.iter()) {
                assert!((*a - *d).abs() < 1e-9, "{n_taps} taps");
            }
        }
    }

    #[test]
    fn awgn_noise_power_matches_request() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = vec![Cplx::ZERO; 100_000];
        add_awgn(&mut buf, 0.5, &mut rng);
        let p = crate::cplx::mean_power(&buf);
        assert!((p - 0.5).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn zero_noise_is_noop() {
        let mut buf = vec![Cplx::ONE; 16];
        let mut rng = StdRng::seed_from_u64(3);
        add_awgn(&mut buf, 0.0, &mut rng);
        assert!(buf.iter().all(|s| *s == Cplx::ONE));
    }

    #[test]
    fn awgn_channel_is_identity_tap() {
        let mut rng = StdRng::seed_from_u64(4);
        let taps = ChannelModel::Awgn.draw_taps(&mut rng);
        assert_eq!(taps, vec![Cplx::ONE]);
        assert_eq!(ChannelModel::Awgn.memory(), 0);
    }

    #[test]
    fn rayleigh_taps_have_unit_mean_energy() {
        let mut rng = StdRng::seed_from_u64(5);
        for model in [
            ChannelModel::FlatRayleigh,
            ChannelModel::SelectiveRayleigh {
                taps: 6,
                delay_spread_taps: 2.0,
            },
        ] {
            let trials = 20_000;
            let mut energy = 0.0;
            for _ in 0..trials {
                energy += model
                    .draw_taps(&mut rng)
                    .iter()
                    .map(|t| t.norm_sqr())
                    .sum::<f64>();
            }
            energy /= trials as f64;
            assert!((energy - 1.0).abs() < 0.05, "{model:?}: {energy}");
        }
    }

    #[test]
    fn selective_channel_varies_across_subcarriers() {
        let mut rng = StdRng::seed_from_u64(6);
        let model = ChannelModel::SelectiveRayleigh {
            taps: 8,
            delay_spread_taps: 2.0,
        };
        let h = frequency_response(&model.draw_taps(&mut rng), 64);
        let mags: Vec<f64> = h.iter().map(|x| x.abs()).collect();
        let min = mags.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = mags.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / min > 1.5,
            "selective channel should vary: {min}..{max}"
        );
    }

    #[test]
    fn flat_channel_is_flat_across_subcarriers() {
        let mut rng = StdRng::seed_from_u64(7);
        let h = frequency_response(&ChannelModel::FlatRayleigh.draw_taps(&mut rng), 64);
        let first = h[0].abs();
        for x in &h {
            assert!((x.abs() - first).abs() < 1e-9);
        }
    }

    #[test]
    fn convolution_with_impulse_is_identity() {
        let sig: Vec<Cplx> = (0..32).map(|i| Cplx::new(i as f64, -(i as f64))).collect();
        let out = convolve(&sig, &[Cplx::ONE]);
        assert_eq!(out, sig);
    }

    #[test]
    fn convolution_with_delay_shifts() {
        let sig: Vec<Cplx> = (0..8).map(|i| Cplx::new(i as f64, 0.0)).collect();
        let out = convolve(&sig, &[Cplx::ZERO, Cplx::ONE]);
        assert_eq!(out[0], Cplx::ZERO);
        for i in 1..8 {
            assert_eq!(out[i], sig[i - 1]);
        }
    }

    #[test]
    fn frequency_response_matches_fft_of_padded_taps() {
        let mut rng = StdRng::seed_from_u64(8);
        let taps = ChannelModel::SelectiveRayleigh {
            taps: 4,
            delay_spread_taps: 1.5,
        }
        .draw_taps(&mut rng);
        let h = frequency_response(&taps, 16);
        let mut padded = taps.clone();
        padded.resize(16, Cplx::ZERO);
        let via_fft = crate::fft::fft_vec(&padded);
        for (a, b) in h.iter().zip(via_fft.iter()) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }
}
