//! Channel models: AWGN, flat and frequency-selective Rayleigh fading.
//!
//! The over-the-air leg of the paper's WARP experiments is replaced by
//! these models (see DESIGN.md). A channel is a causal FIR tap-delay line
//! plus additive white Gaussian noise; the three presets are
//!
//! * [`ChannelModel::Awgn`] — a single unity tap (pure AWGN),
//! * [`ChannelModel::FlatRayleigh`] — a single `CN(0,1)` tap (all
//!   subcarriers fade together),
//! * [`ChannelModel::SelectiveRayleigh`] — several exponentially decaying
//!   Rayleigh taps, so that *"each subcarrier experiences a different
//!   fade"* — the mechanism §3.1 blames for the extra error probability of
//!   the wider, 108-subcarrier band.
//!
//! Gaussian variates come from a Box–Muller transform over `rand`'s uniform
//! source, keeping the dependency footprint to the approved list.

use crate::cplx::Cplx;
use rand::Rng;

/// Draws a zero-mean complex Gaussian sample with total variance
/// `variance` (split evenly between the real and imaginary parts).
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R, variance: f64) -> Cplx {
    // Box–Muller: two uniforms → two independent N(0,1).
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    Cplx::new(r * theta.cos(), r * theta.sin()).scale((variance / 2.0).sqrt())
}

/// Adds white Gaussian noise of per-sample variance `noise_power` to a
/// buffer in place.
pub fn add_awgn<R: Rng + ?Sized>(samples: &mut [Cplx], noise_power: f64, rng: &mut R) {
    if noise_power <= 0.0 {
        return;
    }
    for s in samples.iter_mut() {
        *s += complex_gaussian(rng, noise_power);
    }
}

/// Multipath/fading presets for one transmit→receive antenna path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelModel {
    /// No fading: a single unity tap. The pure-AWGN reference used for the
    /// BER-vs-SNR validation against theory (Fig. 3a).
    Awgn,
    /// Single Rayleigh tap: the whole band fades by one `CN(0,1)` gain.
    FlatRayleigh,
    /// `taps` Rayleigh taps with an exponential power-delay profile
    /// (decay constant `delay_spread_taps`), normalized to unit average
    /// energy. Produces per-subcarrier frequency selectivity.
    SelectiveRayleigh {
        /// Number of FIR taps (must fit inside the cyclic prefix to avoid
        /// inter-symbol interference; the frame layer asserts this).
        taps: usize,
        /// Exponential decay constant of the power-delay profile, in taps.
        delay_spread_taps: f64,
    },
}

impl ChannelModel {
    /// Draws a tap-delay-line realization for one antenna path.
    ///
    /// Taps are normalized so the *expected* channel energy is 1 (a fair
    /// comparison across models); individual realizations fluctuate, which
    /// is exactly the fading we want.
    pub fn draw_taps<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Cplx> {
        match *self {
            ChannelModel::Awgn => vec![Cplx::ONE],
            ChannelModel::FlatRayleigh => vec![complex_gaussian(rng, 1.0)],
            ChannelModel::SelectiveRayleigh {
                taps,
                delay_spread_taps,
            } => {
                assert!(taps >= 1, "at least one tap required");
                let decay = delay_spread_taps.max(1e-6);
                let powers: Vec<f64> = (0..taps).map(|k| (-(k as f64) / decay).exp()).collect();
                let total: f64 = powers.iter().sum();
                powers
                    .iter()
                    .map(|p| complex_gaussian(rng, p / total))
                    .collect()
            }
        }
    }

    /// Maximum channel memory (taps − 1) — must not exceed the cyclic
    /// prefix length.
    pub fn memory(&self) -> usize {
        match *self {
            ChannelModel::Awgn | ChannelModel::FlatRayleigh => 0,
            ChannelModel::SelectiveRayleigh { taps, .. } => taps.saturating_sub(1),
        }
    }
}

/// Causal FIR convolution of `signal` with `taps`, truncated to the input
/// length (the trailing `taps−1` smeared samples fall into the next frame's
/// guard time and are discarded).
pub fn convolve(signal: &[Cplx], taps: &[Cplx]) -> Vec<Cplx> {
    let mut out = vec![Cplx::ZERO; signal.len()];
    for (n, o) in out.iter_mut().enumerate() {
        let mut acc = Cplx::ZERO;
        for (k, t) in taps.iter().enumerate() {
            if n >= k {
                acc += *t * signal[n - k];
            }
        }
        *o = acc;
    }
    out
}

/// Frequency response of a tap-delay line on an `fft_size`-point grid:
/// `H_k = Σ_m h_m e^{−j2πkm/N}`.
pub fn frequency_response(taps: &[Cplx], fft_size: usize) -> Vec<Cplx> {
    let mut h = vec![Cplx::ZERO; fft_size];
    for (k, hk) in h.iter_mut().enumerate() {
        let mut acc = Cplx::ZERO;
        for (m, t) in taps.iter().enumerate() {
            acc += *t * Cplx::cis(-2.0 * std::f64::consts::PI * k as f64 * m as f64 / fft_size as f64);
        }
        *hk = acc;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complex_gaussian_statistics() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mut mean = Cplx::ZERO;
        let mut power = 0.0;
        for _ in 0..n {
            let z = complex_gaussian(&mut rng, 2.0);
            mean += z;
            power += z.norm_sqr();
        }
        mean = mean.scale(1.0 / n as f64);
        power /= n as f64;
        assert!(mean.abs() < 0.02, "mean {mean:?}");
        assert!((power - 2.0).abs() < 0.05, "power {power}");
    }

    #[test]
    fn awgn_noise_power_matches_request() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = vec![Cplx::ZERO; 100_000];
        add_awgn(&mut buf, 0.5, &mut rng);
        let p = crate::cplx::mean_power(&buf);
        assert!((p - 0.5).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn zero_noise_is_noop() {
        let mut buf = vec![Cplx::ONE; 16];
        let mut rng = StdRng::seed_from_u64(3);
        add_awgn(&mut buf, 0.0, &mut rng);
        assert!(buf.iter().all(|s| *s == Cplx::ONE));
    }

    #[test]
    fn awgn_channel_is_identity_tap() {
        let mut rng = StdRng::seed_from_u64(4);
        let taps = ChannelModel::Awgn.draw_taps(&mut rng);
        assert_eq!(taps, vec![Cplx::ONE]);
        assert_eq!(ChannelModel::Awgn.memory(), 0);
    }

    #[test]
    fn rayleigh_taps_have_unit_mean_energy() {
        let mut rng = StdRng::seed_from_u64(5);
        for model in [
            ChannelModel::FlatRayleigh,
            ChannelModel::SelectiveRayleigh {
                taps: 6,
                delay_spread_taps: 2.0,
            },
        ] {
            let trials = 20_000;
            let mut energy = 0.0;
            for _ in 0..trials {
                energy += model
                    .draw_taps(&mut rng)
                    .iter()
                    .map(|t| t.norm_sqr())
                    .sum::<f64>();
            }
            energy /= trials as f64;
            assert!((energy - 1.0).abs() < 0.05, "{model:?}: {energy}");
        }
    }

    #[test]
    fn selective_channel_varies_across_subcarriers() {
        let mut rng = StdRng::seed_from_u64(6);
        let model = ChannelModel::SelectiveRayleigh {
            taps: 8,
            delay_spread_taps: 2.0,
        };
        let h = frequency_response(&model.draw_taps(&mut rng), 64);
        let mags: Vec<f64> = h.iter().map(|x| x.abs()).collect();
        let min = mags.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = mags.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 1.5, "selective channel should vary: {min}..{max}");
    }

    #[test]
    fn flat_channel_is_flat_across_subcarriers() {
        let mut rng = StdRng::seed_from_u64(7);
        let h = frequency_response(&ChannelModel::FlatRayleigh.draw_taps(&mut rng), 64);
        let first = h[0].abs();
        for x in &h {
            assert!((x.abs() - first).abs() < 1e-9);
        }
    }

    #[test]
    fn convolution_with_impulse_is_identity() {
        let sig: Vec<Cplx> = (0..32).map(|i| Cplx::new(i as f64, -(i as f64))).collect();
        let out = convolve(&sig, &[Cplx::ONE]);
        assert_eq!(out, sig);
    }

    #[test]
    fn convolution_with_delay_shifts() {
        let sig: Vec<Cplx> = (0..8).map(|i| Cplx::new(i as f64, 0.0)).collect();
        let out = convolve(&sig, &[Cplx::ZERO, Cplx::ONE]);
        assert_eq!(out[0], Cplx::ZERO);
        for i in 1..8 {
            assert_eq!(out[i], sig[i - 1]);
        }
    }

    #[test]
    fn frequency_response_matches_fft_of_padded_taps() {
        let mut rng = StdRng::seed_from_u64(8);
        let taps = ChannelModel::SelectiveRayleigh {
            taps: 4,
            delay_spread_taps: 1.5,
        }
        .draw_taps(&mut rng);
        let h = frequency_response(&taps, 16);
        let mut padded = taps.clone();
        padded.resize(16, Cplx::ZERO);
        let via_fft = crate::fft::fft_vec(&padded);
        for (a, b) in h.iter().zip(via_fft.iter()) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }
}
