//! Iterative radix-2 FFT/IFFT.
//!
//! The WARP reference design the paper builds on uses a 64-point FFT for
//! 20 MHz channels and a 128-point FFT when channel bonding is enabled
//! ("we implement the CB functionality by appropriately changing the
//! subcarrier mappings, and using a 128-point FFT"). Both sizes are powers
//! of two, so a plain iterative Cooley–Tukey radix-2 transform is all the
//! baseband needs — no external FFT dependency.
//!
//! Conventions: [`fft`] is unnormalized (`X_k = Σ x_n e^{−j2πkn/N}`);
//! [`ifft`] carries the full `1/N` factor, so `ifft(fft(x)) == x`.

use crate::cplx::Cplx;
use std::f64::consts::PI;

/// In-place bit-reversal permutation. `len` must be a power of two.
fn bit_reverse_permute(buf: &mut [Cplx]) {
    let n = buf.len();
    let mut j = 0usize;
    for i in 0..n {
        if i < j {
            buf.swap(i, j);
        }
        let mut mask = n >> 1;
        while mask > 0 && j & mask != 0 {
            j &= !mask;
            mask >>= 1;
        }
        j |= mask;
    }
}

/// Core iterative butterfly pass. `sign` is −1 for the forward transform
/// and +1 for the inverse.
fn transform(buf: &mut [Cplx], sign: f64) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
    bit_reverse_permute(buf);
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Cplx::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Cplx::ONE;
            for k in 0..len / 2 {
                let u = buf[start + k];
                let v = buf[start + k + len / 2] * w;
                buf[start + k] = u + v;
                buf[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward DFT, in place and unnormalized.
pub fn fft(buf: &mut [Cplx]) {
    transform(buf, -1.0);
}

/// Inverse DFT, in place, normalized by `1/N` so that `ifft(fft(x)) == x`.
pub fn ifft(buf: &mut [Cplx]) {
    transform(buf, 1.0);
    let n = buf.len() as f64;
    for s in buf.iter_mut() {
        *s = s.scale(1.0 / n);
    }
}

/// Convenience: out-of-place forward DFT.
pub fn fft_vec(input: &[Cplx]) -> Vec<Cplx> {
    let mut buf = input.to_vec();
    fft(&mut buf);
    buf
}

/// Convenience: out-of-place inverse DFT.
pub fn ifft_vec(input: &[Cplx]) -> Vec<Cplx> {
    let mut buf = input.to_vec();
    ifft(&mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Cplx, b: Cplx) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut buf = vec![Cplx::ZERO; 8];
        buf[0] = Cplx::ONE;
        fft(&mut buf);
        for s in &buf {
            assert!(close(*s, Cplx::ONE));
        }
    }

    #[test]
    fn single_tone_lands_on_one_bin() {
        let n = 64;
        let k0 = 5;
        let mut buf: Vec<Cplx> = (0..n)
            .map(|i| Cplx::cis(2.0 * PI * k0 as f64 * i as f64 / n as f64))
            .collect();
        fft(&mut buf);
        for (k, s) in buf.iter().enumerate() {
            if k == k0 {
                assert!((s.abs() - n as f64).abs() < 1e-6, "bin {k}: {}", s.abs());
            } else {
                assert!(s.abs() < 1e-6, "leakage in bin {k}: {}", s.abs());
            }
        }
    }

    use std::f64::consts::PI;

    #[test]
    fn roundtrip_is_identity() {
        for n in [2usize, 8, 64, 128, 256] {
            let input: Vec<Cplx> = (0..n)
                .map(|i| Cplx::new((i as f64 * 0.37).sin(), (i as f64 * 1.13).cos()))
                .collect();
            let rt = ifft_vec(&fft_vec(&input));
            for (a, b) in input.iter().zip(rt.iter()) {
                assert!(close(*a, *b));
            }
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 128;
        let input: Vec<Cplx> = (0..n)
            .map(|i| Cplx::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let time_energy: f64 = input.iter().map(|s| s.norm_sqr()).sum();
        let spec = fft_vec(&input);
        let freq_energy: f64 = spec.iter().map(|s| s.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn linearity() {
        let n = 32;
        let a: Vec<Cplx> = (0..n).map(|i| Cplx::new(i as f64, 0.0)).collect();
        let b: Vec<Cplx> = (0..n).map(|i| Cplx::new(0.0, (i * i) as f64)).collect();
        let sum: Vec<Cplx> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft_vec(&a);
        let fb = fft_vec(&b);
        let fsum = fft_vec(&sum);
        for k in 0..n {
            assert!(close(fsum[k], fa[k] + fb[k]));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut buf = vec![Cplx::ZERO; 48];
        fft(&mut buf);
    }
}
