//! Iterative radix-2 FFT/IFFT with precomputed plans.
//!
//! The WARP reference design the paper builds on uses a 64-point FFT for
//! 20 MHz channels and a 128-point FFT when channel bonding is enabled
//! ("we implement the CB functionality by appropriately changing the
//! subcarrier mappings, and using a 128-point FFT"). Both sizes are powers
//! of two, so a plain iterative Cooley–Tukey radix-2 transform is all the
//! baseband needs — no external FFT dependency.
//!
//! The Monte-Carlo pipeline transforms the same two lengths millions of
//! times, so the per-transform trigonometry is hoisted into an [`FftPlan`]:
//! the bit-reversal permutation and the twiddle factors `e^{−j2πk/N}` are
//! tabulated once per length and reused for every transform. The
//! module-level [`fft`]/[`ifft`] entry points fetch plans from a
//! thread-local cache keyed by length, so existing callers get the
//! precomputation for free; hot loops can hold a [`plan`] directly and
//! skip even the cache lookup.
//!
//! Conventions: [`fft`] is unnormalized (`X_k = Σ x_n e^{−j2πkn/N}`);
//! [`ifft`] carries the full `1/N` factor, so `ifft(fft(x)) == x`.
//!
//! # Split-complex and batched lane kernels
//!
//! Beyond the interleaved [`Cplx`]-slice transforms, the plan exposes
//! **split-complex** kernels (real and imaginary parts in separate `f64`
//! arrays, so every butterfly is pure lane arithmetic with contiguous
//! loads — no AoS shuffles) and, the real hot path of the OFDM pipeline,
//! **batched** kernels that run [`FFT_BATCH`] same-length transforms in
//! lockstep. The batched layout is bin-major: element `i` of transform
//! `l` lives at `re[i * FFT_BATCH + l]`, so each butterfly touches
//! [`FFT_BATCH`] contiguous `f64` lanes (one full vector register per
//! operand) and the twiddle factor broadcasts across them — the shape
//! the autovectorizer turns into pure vertical SIMD with no shuffles at
//! all. A Monte-Carlo symbol stream transforms hundreds of equal-length
//! blocks per packet, so the frame pipeline batches its per-symbol
//! FFT/IFFT work eight symbols at a time.
//!
//! Every kernel evaluates the *same f64 operations in the same order*
//! per transform as the retained interleaved oracle
//! ([`FftPlan::forward_generic`] / [`FftPlan::inverse_generic`]) — the
//! batch lanes are mutually independent — so outputs are bit-identical,
//! pinned by `to_bits` equality tests across all sizes.

use crate::cplx::Cplx;
use std::cell::RefCell;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::rc::Rc;

/// Lane count of the batched kernels: how many same-length transforms
/// [`FftPlan::forward_batch`] / [`FftPlan::inverse_raw_batch`] run in
/// lockstep. Eight `f64` lanes fill one 512-bit vector register.
pub const FFT_BATCH: usize = 8;

/// A precomputed radix-2 transform for one length: bit-reversal table plus
/// forward twiddle factors (interleaved *and* split layouts). Build once
/// (or fetch via [`plan`]), run many.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// `bit_rev[i]` = the index `i` maps to in the input permutation.
    bit_rev: Vec<u32>,
    /// `twiddles[j] = e^{−j2πj/n}` for `j < n/2` — the forward factors;
    /// the inverse transform conjugates on lookup.
    twiddles: Vec<Cplx>,
    /// Real parts of `twiddles`, split layout for the lane kernels.
    tw_re: Vec<f64>,
    /// Imaginary parts of `twiddles`, split layout for the lane kernels.
    tw_im: Vec<f64>,
}

impl FftPlan {
    /// Builds the tables for an `n`-point transform. `n` must be a power
    /// of two.
    pub fn new(n: usize) -> FftPlan {
        assert!(
            n.is_power_of_two(),
            "FFT length must be a power of two, got {n}"
        );
        let bits = n.trailing_zeros();
        let bit_rev = (0..n as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        let twiddles: Vec<Cplx> = (0..n / 2)
            .map(|j| Cplx::cis(-2.0 * PI * j as f64 / n as f64))
            .collect();
        let tw_re = twiddles.iter().map(|t| t.re).collect();
        let tw_im = twiddles.iter().map(|t| t.im).collect();
        FftPlan {
            n,
            bit_rev,
            twiddles,
            tw_re,
            tw_im,
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the degenerate 0-point plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward DFT, in place and unnormalized.
    pub fn forward(&self, buf: &mut [Cplx]) {
        self.check(buf.len());
        self.run(buf, false);
    }

    /// Inverse DFT, in place, normalized by `1/N`.
    pub fn inverse(&self, buf: &mut [Cplx]) {
        self.check(buf.len());
        self.run(buf, true);
        self.scale_interleaved(buf);
    }

    /// Inverse DFT butterflies *without* the `1/N` normalization pass.
    /// The OFDM transmitter folds the factor into the subcarrier
    /// amplitude at grid-fill time (52 or 108 occupied bins instead of a
    /// 64/128-point scaling loop per symbol).
    pub fn inverse_raw(&self, buf: &mut [Cplx]) {
        self.check(buf.len());
        self.run(buf, true);
    }

    /// Forward DFT on split re/im arrays, in place and unnormalized —
    /// the lane-kernel entry for callers that already hold split data.
    pub fn forward_split(&self, re: &mut [f64], im: &mut [f64]) {
        self.check(re.len());
        self.check(im.len());
        self.run_split(re, im, false);
    }

    /// Inverse DFT on split re/im arrays, in place, normalized by `1/N`.
    pub fn inverse_split(&self, re: &mut [f64], im: &mut [f64]) {
        self.check(re.len());
        self.check(im.len());
        self.run_split(re, im, true);
        let s = 1.0 / self.n as f64;
        for r in re.iter_mut() {
            *r *= s;
        }
        for i in im.iter_mut() {
            *i *= s;
        }
    }

    /// Inverse butterflies on split arrays without the `1/N` pass (see
    /// [`inverse_raw`](FftPlan::inverse_raw)).
    pub fn inverse_raw_split(&self, re: &mut [f64], im: &mut [f64]) {
        self.check(re.len());
        self.check(im.len());
        self.run_split(re, im, true);
    }

    /// The interleaved radix-2 forward transform under its stable oracle
    /// name: the split and batched lane kernels are pinned `to_bits`-exact
    /// against this loop. (Since the hot single-transform entries route
    /// here too, the chain hot path ≡ oracle ≡ lane kernels is closed.)
    pub fn forward_generic(&self, buf: &mut [Cplx]) {
        self.check(buf.len());
        self.run(buf, false);
    }

    /// The interleaved inverse transform (with `1/N`), oracle twin of
    /// [`inverse`](FftPlan::inverse).
    pub fn inverse_generic(&self, buf: &mut [Cplx]) {
        self.check(buf.len());
        self.run(buf, true);
        self.scale_interleaved(buf);
    }

    #[inline]
    fn check(&self, len: usize) {
        assert_eq!(len, self.n, "buffer length must match the plan length");
    }

    #[inline]
    fn scale_interleaved(&self, buf: &mut [Cplx]) {
        let s = 1.0 / self.n as f64;
        for x in buf.iter_mut() {
            *x = x.scale(s);
        }
    }

    /// Forward DFT of [`FFT_BATCH`] transforms in lockstep, unnormalized.
    /// `re`/`im` hold `n · FFT_BATCH` values in bin-major lane layout:
    /// element `i` of transform `l` at index `i * FFT_BATCH + l`. Each
    /// lane's output is bit-identical to running that transform alone
    /// through [`forward`](FftPlan::forward).
    pub fn forward_batch(&self, re: &mut [f64], im: &mut [f64]) {
        self.check_batch(re.len(), im.len());
        self.run_batch(re, im, false);
    }

    /// Inverse butterflies of [`FFT_BATCH`] transforms in lockstep,
    /// without the `1/N` pass — the batched twin of
    /// [`inverse_raw`](FftPlan::inverse_raw), same layout as
    /// [`forward_batch`](FftPlan::forward_batch).
    pub fn inverse_raw_batch(&self, re: &mut [f64], im: &mut [f64]) {
        self.check_batch(re.len(), im.len());
        self.run_batch(re, im, true);
    }

    #[inline]
    fn check_batch(&self, re_len: usize, im_len: usize) {
        assert_eq!(
            re_len,
            self.n * FFT_BATCH,
            "batch buffer must hold FFT_BATCH transforms"
        );
        assert_eq!(im_len, re_len, "re/im batch buffers must match");
    }

    /// The batched radix-2 stages: identical stage/butterfly order to the
    /// interleaved [`run`](Self::run), with every scalar operation applied
    /// across the [`FFT_BATCH`] contiguous lanes of a bin row and the
    /// twiddle broadcast to all lanes. The two OFDM sizes get
    /// monomorphized trip counts.
    fn run_batch(&self, re: &mut [f64], im: &mut [f64], inverse: bool) {
        match self.n {
            64 => self.batch_stages_fixed::<64>(re, im, inverse),
            128 => self.batch_stages_fixed::<128>(re, im, inverse),
            _ => self.batch_stages(self.n, re, im, inverse),
        }
    }

    /// Monomorphized batch runner: `N` is a compile-time constant, so the
    /// stage and butterfly loops have known trip counts and unroll.
    fn batch_stages_fixed<const N: usize>(&self, re: &mut [f64], im: &mut [f64], inverse: bool) {
        self.batch_stages(N, re, im, inverse);
    }

    #[inline(always)]
    fn batch_stages(&self, n: usize, re: &mut [f64], im: &mut [f64], inverse: bool) {
        const B: usize = FFT_BATCH;
        // Bit-reversal permutation, applied to whole bin rows.
        for i in 0..n {
            let j = self.bit_rev[i] as usize;
            if i < j {
                for l in 0..B {
                    re.swap(i * B + l, j * B + l);
                    im.swap(i * B + l, j * B + l);
                }
            }
        }
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            let mut start = 0;
            while start < n {
                // k == 0 carries a unit twiddle — a pure add/sub pair
                // (one third of all butterflies at n = 64).
                let (p, q) = (start * B, (start + half) * B);
                for l in 0..B {
                    let (ur, ui) = (re[p + l], im[p + l]);
                    let (vr, vi) = (re[q + l], im[q + l]);
                    re[p + l] = ur + vr;
                    im[p + l] = ui + vi;
                    re[q + l] = ur - vr;
                    im[q + l] = ui - vi;
                }
                for k in 1..half {
                    let wr = self.tw_re[k * stride];
                    let wi = if inverse {
                        -self.tw_im[k * stride]
                    } else {
                        self.tw_im[k * stride]
                    };
                    let (p, q) = ((start + k) * B, (start + k + half) * B);
                    for l in 0..B {
                        let (xr, xi) = (re[q + l], im[q + l]);
                        let vr = xr * wr - xi * wi;
                        let vi = xr * wi + xi * wr;
                        let (ur, ui) = (re[p + l], im[p + l]);
                        re[p + l] = ur + vr;
                        im[p + l] = ui + vi;
                        re[q + l] = ur - vr;
                        im[q + l] = ui - vi;
                    }
                }
                start += len;
            }
            len <<= 1;
        }
    }

    /// Split-kernel dispatch: the two OFDM sizes go to monomorphized
    /// bodies with compile-time trip counts; everything else runs the
    /// same source through the dynamic-length fallback.
    fn run_split(&self, re: &mut [f64], im: &mut [f64], inverse: bool) {
        let n = self.n;
        for i in 0..n {
            let j = self.bit_rev[i] as usize;
            if i < j {
                re.swap(i, j);
                im.swap(i, j);
            }
        }
        match n {
            64 => self.split_stages_fixed::<64>(re, im, inverse),
            128 => self.split_stages_fixed::<128>(re, im, inverse),
            _ => self.split_stages(n, re, im, inverse),
        }
    }

    /// Monomorphized stage runner: `N` is a compile-time constant, so the
    /// stage and butterfly loops have known trip counts and unroll.
    fn split_stages_fixed<const N: usize>(&self, re: &mut [f64], im: &mut [f64], inverse: bool) {
        self.split_stages(N, re, im, inverse);
    }

    /// The radix-2 butterfly stages on split arrays. Exactly the
    /// operations (and order) of the interleaved [`run`](Self::run), so
    /// the two paths agree bit for bit.
    #[inline(always)]
    fn split_stages(&self, n: usize, re: &mut [f64], im: &mut [f64], inverse: bool) {
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            let mut start = 0;
            while start < n {
                // k == 0 carries a unit twiddle — a pure add/sub pair
                // (one third of all butterflies at n = 64).
                let (ur, ui) = (re[start], im[start]);
                let (vr, vi) = (re[start + half], im[start + half]);
                re[start] = ur + vr;
                im[start] = ui + vi;
                re[start + half] = ur - vr;
                im[start + half] = ui - vi;
                for k in 1..half {
                    let wr = self.tw_re[k * stride];
                    let wi = if inverse {
                        -self.tw_im[k * stride]
                    } else {
                        self.tw_im[k * stride]
                    };
                    let (xr, xi) = (re[start + k + half], im[start + k + half]);
                    let vr = xr * wr - xi * wi;
                    let vi = xr * wi + xi * wr;
                    let (ur, ui) = (re[start + k], im[start + k]);
                    re[start + k] = ur + vr;
                    im[start + k] = ui + vi;
                    re[start + k + half] = ur - vr;
                    im[start + k + half] = ui - vi;
                }
                start += len;
            }
            len <<= 1;
        }
    }

    /// The retained interleaved radix-2 loop.
    fn run(&self, buf: &mut [Cplx], inverse: bool) {
        let n = self.n;
        for i in 0..n {
            let j = self.bit_rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                // k == 0 carries a unit twiddle — a pure add/sub pair
                // (one third of all butterflies at n = 64).
                let u = buf[start];
                let v = buf[start + half];
                buf[start] = u + v;
                buf[start + half] = u - v;
                for k in 1..half {
                    let tw = self.twiddles[k * stride];
                    let w = if inverse { tw.conj() } else { tw };
                    let u = buf[start + k];
                    let v = buf[start + k + half] * w;
                    buf[start + k] = u + v;
                    buf[start + k + half] = u - v;
                }
            }
            len <<= 1;
        }
    }
}

thread_local! {
    static PLAN_CACHE: RefCell<HashMap<usize, Rc<FftPlan>>> = RefCell::new(HashMap::new());
}

/// The cached plan for length `n`, built on first use per thread. `n` must
/// be a power of two.
pub fn plan(n: usize) -> Rc<FftPlan> {
    PLAN_CACHE.with(|c| {
        c.borrow_mut()
            .entry(n)
            .or_insert_with(|| Rc::new(FftPlan::new(n)))
            .clone()
    })
}

/// Forward DFT, in place and unnormalized.
pub fn fft(buf: &mut [Cplx]) {
    plan(buf.len()).forward(buf);
}

/// Inverse DFT, in place, normalized by `1/N` so that `ifft(fft(x)) == x`.
pub fn ifft(buf: &mut [Cplx]) {
    plan(buf.len()).inverse(buf);
}

/// Convenience: out-of-place forward DFT.
pub fn fft_vec(input: &[Cplx]) -> Vec<Cplx> {
    let mut buf = input.to_vec();
    fft(&mut buf);
    buf
}

/// Convenience: out-of-place inverse DFT.
pub fn ifft_vec(input: &[Cplx]) -> Vec<Cplx> {
    let mut buf = input.to_vec();
    ifft(&mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Cplx, b: Cplx) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut buf = vec![Cplx::ZERO; 8];
        buf[0] = Cplx::ONE;
        fft(&mut buf);
        for s in &buf {
            assert!(close(*s, Cplx::ONE));
        }
    }

    #[test]
    fn single_tone_lands_on_one_bin() {
        let n = 64;
        let k0 = 5;
        let mut buf: Vec<Cplx> = (0..n)
            .map(|i| Cplx::cis(2.0 * PI * k0 as f64 * i as f64 / n as f64))
            .collect();
        fft(&mut buf);
        for (k, s) in buf.iter().enumerate() {
            if k == k0 {
                assert!((s.abs() - n as f64).abs() < 1e-6, "bin {k}: {}", s.abs());
            } else {
                assert!(s.abs() < 1e-6, "leakage in bin {k}: {}", s.abs());
            }
        }
    }

    use std::f64::consts::PI;

    #[test]
    fn roundtrip_is_identity() {
        for n in [2usize, 8, 64, 128, 256] {
            let input: Vec<Cplx> = (0..n)
                .map(|i| Cplx::new((i as f64 * 0.37).sin(), (i as f64 * 1.13).cos()))
                .collect();
            let rt = ifft_vec(&fft_vec(&input));
            for (a, b) in input.iter().zip(rt.iter()) {
                assert!(close(*a, *b));
            }
        }
    }

    #[test]
    fn matches_direct_dft() {
        // The plan's tabulated butterflies against the O(N²) definition.
        for n in [4usize, 16, 64, 128] {
            let input: Vec<Cplx> = (0..n)
                .map(|i| Cplx::new((i as f64 * 0.61).cos(), (i as f64 * 0.29).sin()))
                .collect();
            let fast = fft_vec(&input);
            for k in 0..n {
                let direct = (0..n).fold(Cplx::ZERO, |acc, t| {
                    acc + input[t] * Cplx::cis(-2.0 * PI * (k * t) as f64 / n as f64)
                });
                assert!(
                    (fast[k] - direct).abs() < 1e-7 * (n as f64),
                    "n={n} bin {k}: {fast:?} vs direct"
                );
            }
        }
    }

    #[test]
    fn plan_cache_reuses_plans_per_length() {
        let a = plan(64);
        let b = plan(64);
        assert!(Rc::ptr_eq(&a, &b), "same length must hit the cache");
        assert_eq!(plan(128).len(), 128);
    }

    #[test]
    fn explicit_plan_matches_module_entry_points() {
        let p = FftPlan::new(64);
        let input: Vec<Cplx> = (0..64)
            .map(|i| Cplx::new((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let mut a = input.clone();
        p.forward(&mut a);
        let b = fft_vec(&input);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.re.to_bits(),
                y.re.to_bits(),
                "plan and cache paths must agree exactly"
            );
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 128;
        let input: Vec<Cplx> = (0..n)
            .map(|i| Cplx::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let time_energy: f64 = input.iter().map(|s| s.norm_sqr()).sum();
        let spec = fft_vec(&input);
        let freq_energy: f64 = spec.iter().map(|s| s.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn linearity() {
        let n = 32;
        let a: Vec<Cplx> = (0..n).map(|i| Cplx::new(i as f64, 0.0)).collect();
        let b: Vec<Cplx> = (0..n).map(|i| Cplx::new(0.0, (i * i) as f64)).collect();
        let sum: Vec<Cplx> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft_vec(&a);
        let fb = fft_vec(&b);
        let fsum = fft_vec(&sum);
        for k in 0..n {
            assert!(close(fsum[k], fa[k] + fb[k]));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut buf = vec![Cplx::ZERO; 48];
        fft(&mut buf);
    }

    #[test]
    #[should_panic(expected = "must match the plan length")]
    fn wrong_buffer_length_panics() {
        let p = FftPlan::new(64);
        let mut buf = vec![Cplx::ZERO; 32];
        p.forward(&mut buf);
    }
}
