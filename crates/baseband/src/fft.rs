//! Iterative radix-2 FFT/IFFT with precomputed plans.
//!
//! The WARP reference design the paper builds on uses a 64-point FFT for
//! 20 MHz channels and a 128-point FFT when channel bonding is enabled
//! ("we implement the CB functionality by appropriately changing the
//! subcarrier mappings, and using a 128-point FFT"). Both sizes are powers
//! of two, so a plain iterative Cooley–Tukey radix-2 transform is all the
//! baseband needs — no external FFT dependency.
//!
//! The Monte-Carlo pipeline transforms the same two lengths millions of
//! times, so the per-transform trigonometry is hoisted into an [`FftPlan`]:
//! the bit-reversal permutation and the twiddle factors `e^{−j2πk/N}` are
//! tabulated once per length and reused for every transform. The
//! module-level [`fft`]/[`ifft`] entry points fetch plans from a
//! thread-local cache keyed by length, so existing callers get the
//! precomputation for free; hot loops can hold a [`plan`] directly and
//! skip even the cache lookup.
//!
//! Conventions: [`fft`] is unnormalized (`X_k = Σ x_n e^{−j2πkn/N}`);
//! [`ifft`] carries the full `1/N` factor, so `ifft(fft(x)) == x`.

use crate::cplx::Cplx;
use std::cell::RefCell;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::rc::Rc;

/// A precomputed radix-2 transform for one length: bit-reversal table plus
/// forward twiddle factors. Build once (or fetch via [`plan`]), run many.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// `bit_rev[i]` = the index `i` maps to in the input permutation.
    bit_rev: Vec<u32>,
    /// `twiddles[j] = e^{−j2πj/n}` for `j < n/2` — the forward factors;
    /// the inverse transform conjugates on lookup.
    twiddles: Vec<Cplx>,
}

impl FftPlan {
    /// Builds the tables for an `n`-point transform. `n` must be a power
    /// of two.
    pub fn new(n: usize) -> FftPlan {
        assert!(
            n.is_power_of_two(),
            "FFT length must be a power of two, got {n}"
        );
        let bits = n.trailing_zeros();
        let bit_rev = (0..n as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        let twiddles = (0..n / 2)
            .map(|j| Cplx::cis(-2.0 * PI * j as f64 / n as f64))
            .collect();
        FftPlan {
            n,
            bit_rev,
            twiddles,
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the degenerate 0-point plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward DFT, in place and unnormalized.
    pub fn forward(&self, buf: &mut [Cplx]) {
        self.run(buf, false);
    }

    /// Inverse DFT, in place, normalized by `1/N`.
    pub fn inverse(&self, buf: &mut [Cplx]) {
        self.run(buf, true);
        let s = 1.0 / self.n as f64;
        for x in buf.iter_mut() {
            *x = x.scale(s);
        }
    }

    /// Inverse DFT butterflies *without* the `1/N` normalization pass.
    /// The OFDM transmitter folds the factor into the subcarrier
    /// amplitude at grid-fill time (52 or 108 occupied bins instead of a
    /// 64/128-point scaling loop per symbol).
    pub fn inverse_raw(&self, buf: &mut [Cplx]) {
        self.run(buf, true);
    }

    fn run(&self, buf: &mut [Cplx], inverse: bool) {
        assert_eq!(
            buf.len(),
            self.n,
            "buffer length must match the plan length"
        );
        let n = self.n;
        for i in 0..n {
            let j = self.bit_rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                // k == 0 carries a unit twiddle — a pure add/sub pair
                // (one third of all butterflies at n = 64).
                let u = buf[start];
                let v = buf[start + half];
                buf[start] = u + v;
                buf[start + half] = u - v;
                for k in 1..half {
                    let tw = self.twiddles[k * stride];
                    let w = if inverse { tw.conj() } else { tw };
                    let u = buf[start + k];
                    let v = buf[start + k + half] * w;
                    buf[start + k] = u + v;
                    buf[start + k + half] = u - v;
                }
            }
            len <<= 1;
        }
    }
}

thread_local! {
    static PLAN_CACHE: RefCell<HashMap<usize, Rc<FftPlan>>> = RefCell::new(HashMap::new());
}

/// The cached plan for length `n`, built on first use per thread. `n` must
/// be a power of two.
pub fn plan(n: usize) -> Rc<FftPlan> {
    PLAN_CACHE.with(|c| {
        c.borrow_mut()
            .entry(n)
            .or_insert_with(|| Rc::new(FftPlan::new(n)))
            .clone()
    })
}

/// Forward DFT, in place and unnormalized.
pub fn fft(buf: &mut [Cplx]) {
    plan(buf.len()).forward(buf);
}

/// Inverse DFT, in place, normalized by `1/N` so that `ifft(fft(x)) == x`.
pub fn ifft(buf: &mut [Cplx]) {
    plan(buf.len()).inverse(buf);
}

/// Convenience: out-of-place forward DFT.
pub fn fft_vec(input: &[Cplx]) -> Vec<Cplx> {
    let mut buf = input.to_vec();
    fft(&mut buf);
    buf
}

/// Convenience: out-of-place inverse DFT.
pub fn ifft_vec(input: &[Cplx]) -> Vec<Cplx> {
    let mut buf = input.to_vec();
    ifft(&mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Cplx, b: Cplx) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut buf = vec![Cplx::ZERO; 8];
        buf[0] = Cplx::ONE;
        fft(&mut buf);
        for s in &buf {
            assert!(close(*s, Cplx::ONE));
        }
    }

    #[test]
    fn single_tone_lands_on_one_bin() {
        let n = 64;
        let k0 = 5;
        let mut buf: Vec<Cplx> = (0..n)
            .map(|i| Cplx::cis(2.0 * PI * k0 as f64 * i as f64 / n as f64))
            .collect();
        fft(&mut buf);
        for (k, s) in buf.iter().enumerate() {
            if k == k0 {
                assert!((s.abs() - n as f64).abs() < 1e-6, "bin {k}: {}", s.abs());
            } else {
                assert!(s.abs() < 1e-6, "leakage in bin {k}: {}", s.abs());
            }
        }
    }

    use std::f64::consts::PI;

    #[test]
    fn roundtrip_is_identity() {
        for n in [2usize, 8, 64, 128, 256] {
            let input: Vec<Cplx> = (0..n)
                .map(|i| Cplx::new((i as f64 * 0.37).sin(), (i as f64 * 1.13).cos()))
                .collect();
            let rt = ifft_vec(&fft_vec(&input));
            for (a, b) in input.iter().zip(rt.iter()) {
                assert!(close(*a, *b));
            }
        }
    }

    #[test]
    fn matches_direct_dft() {
        // The plan's tabulated butterflies against the O(N²) definition.
        for n in [4usize, 16, 64, 128] {
            let input: Vec<Cplx> = (0..n)
                .map(|i| Cplx::new((i as f64 * 0.61).cos(), (i as f64 * 0.29).sin()))
                .collect();
            let fast = fft_vec(&input);
            for k in 0..n {
                let direct = (0..n).fold(Cplx::ZERO, |acc, t| {
                    acc + input[t] * Cplx::cis(-2.0 * PI * (k * t) as f64 / n as f64)
                });
                assert!(
                    (fast[k] - direct).abs() < 1e-7 * (n as f64),
                    "n={n} bin {k}: {fast:?} vs direct"
                );
            }
        }
    }

    #[test]
    fn plan_cache_reuses_plans_per_length() {
        let a = plan(64);
        let b = plan(64);
        assert!(Rc::ptr_eq(&a, &b), "same length must hit the cache");
        assert_eq!(plan(128).len(), 128);
    }

    #[test]
    fn explicit_plan_matches_module_entry_points() {
        let p = FftPlan::new(64);
        let input: Vec<Cplx> = (0..64)
            .map(|i| Cplx::new((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let mut a = input.clone();
        p.forward(&mut a);
        let b = fft_vec(&input);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.re.to_bits(),
                y.re.to_bits(),
                "plan and cache paths must agree exactly"
            );
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 128;
        let input: Vec<Cplx> = (0..n)
            .map(|i| Cplx::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let time_energy: f64 = input.iter().map(|s| s.norm_sqr()).sum();
        let spec = fft_vec(&input);
        let freq_energy: f64 = spec.iter().map(|s| s.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn linearity() {
        let n = 32;
        let a: Vec<Cplx> = (0..n).map(|i| Cplx::new(i as f64, 0.0)).collect();
        let b: Vec<Cplx> = (0..n).map(|i| Cplx::new(0.0, (i * i) as f64)).collect();
        let sum: Vec<Cplx> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft_vec(&a);
        let fb = fft_vec(&b);
        let fsum = fft_vec(&sum);
        for k in 0..n {
            assert!(close(fsum[k], fa[k] + fb[k]));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut buf = vec![Cplx::ZERO; 48];
        fft(&mut buf);
    }

    #[test]
    #[should_panic(expected = "must match the plan length")]
    fn wrong_buffer_length_panics() {
        let p = FftPlan::new(64);
        let mut buf = vec![Cplx::ZERO; 32];
        p.forward(&mut buf);
    }
}
