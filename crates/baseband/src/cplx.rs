//! Minimal complex arithmetic for the baseband DSP chain.
//!
//! A local, dependency-free complex type keeps the whole baseband
//! self-contained (the approved dependency list has no `num-complex`) and
//! lets us expose exactly the operations the signal chain needs.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex sample `re + j·im` in double precision.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cplx {
    /// Real (in-phase, "I") part.
    pub re: f64,
    /// Imaginary (quadrature, "Q") part.
    pub im: f64,
}

impl Cplx {
    /// Zero.
    pub const ZERO: Cplx = Cplx { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Cplx = Cplx { re: 1.0, im: 0.0 };
    /// The imaginary unit `j`.
    pub const J: Cplx = Cplx { re: 0.0, im: 1.0 };

    /// Constructs a complex number from rectangular coordinates.
    pub const fn new(re: f64, im: f64) -> Cplx {
        Cplx { re, im }
    }

    /// Constructs `r·e^{jθ}` from polar coordinates.
    pub fn from_polar(r: f64, theta: f64) -> Cplx {
        Cplx {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Unit phasor `e^{jθ}`.
    pub fn cis(theta: f64) -> Cplx {
        Cplx::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Cplx {
        Cplx {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase) in radians, in `(−π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Cplx {
        Cplx {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Cplx {
    type Output = Cplx;
    fn add(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Cplx {
    fn add_assign(&mut self, rhs: Cplx) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Cplx {
    type Output = Cplx;
    fn sub(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Cplx {
    type Output = Cplx;
    fn mul(self, rhs: Cplx) -> Cplx {
        Cplx::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Cplx {
    type Output = Cplx;
    fn mul(self, rhs: f64) -> Cplx {
        self.scale(rhs)
    }
}

impl Div for Cplx {
    type Output = Cplx;
    fn div(self, rhs: Cplx) -> Cplx {
        let d = rhs.norm_sqr();
        Cplx::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Cplx {
    type Output = Cplx;
    fn neg(self) -> Cplx {
        Cplx::new(-self.re, -self.im)
    }
}

/// Mean power `E[|z|²]` of a sample buffer (0 for an empty buffer).
pub fn mean_power(samples: &[Cplx]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|s| s.norm_sqr()).sum::<f64>() / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn arithmetic_identities() {
        let a = Cplx::new(1.0, 2.0);
        let b = Cplx::new(-3.0, 0.5);
        assert_eq!(a + b, Cplx::new(-2.0, 2.5));
        assert_eq!(a - b, Cplx::new(4.0, 1.5));
        // (1+2j)(−3+0.5j) = −3 + 0.5j − 6j + j² = −4 − 5.5j
        assert_eq!(a * b, Cplx::new(-4.0, -5.5));
        assert_eq!(-a, Cplx::new(-1.0, -2.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Cplx::new(2.0, -1.5);
        let b = Cplx::new(0.3, 4.0);
        let q = (a * b) / b;
        assert!((q - a).abs() < 1e-12);
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Cplx::new(3.0, 4.0);
        assert_eq!(z.conj(), Cplx::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        let p = z * z.conj();
        assert!((p.re - 25.0).abs() < 1e-12 && p.im.abs() < 1e-12);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Cplx::from_polar(2.0, PI / 3.0);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - PI / 3.0).abs() < 1e-12);
        assert!((Cplx::cis(PI).re + 1.0).abs() < 1e-12);
    }

    #[test]
    fn j_squared_is_minus_one() {
        assert!(((Cplx::J * Cplx::J) - Cplx::new(-1.0, 0.0)).abs() < 1e-15);
    }

    #[test]
    fn mean_power_of_unit_phasors_is_one() {
        let v: Vec<Cplx> = (0..100).map(|i| Cplx::cis(i as f64)).collect();
        assert!((mean_power(&v) - 1.0).abs() < 1e-12);
        assert_eq!(mean_power(&[]), 0.0);
    }
}
