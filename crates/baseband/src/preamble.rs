//! Barker-sequence preamble and correlation-based frame detection.
//!
//! The paper's WarpLab chain: "A Barker sequence is later prepended to
//! facilitate symbol detection at the receiver. ... At the receiver, the
//! preamble sequence is detected and stripped."
//!
//! We use the length-13 Barker code (the one 802.11 DSSS uses), BPSK
//! modulated and repeated `PREAMBLE_REPEATS` times for detection margin at
//! low SNR. Detection slides a normalized cross-correlator over the head
//! of the buffer and declares the frame start at the correlation peak.

use crate::cplx::Cplx;

/// The length-13 Barker sequence (+1/−1 chips).
pub const BARKER13: [f64; 13] = [
    1.0, 1.0, 1.0, 1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0, -1.0, 1.0,
];

/// Number of Barker repetitions in the preamble.
pub const PREAMBLE_REPEATS: usize = 4;

/// The unit-amplitude reference preamble, tabulated once for the
/// correlator (±1 chips, so the table is exact).
const REFERENCE: [Cplx; BARKER13.len() * PREAMBLE_REPEATS] = {
    let mut out = [Cplx::ZERO; BARKER13.len() * PREAMBLE_REPEATS];
    let mut i = 0;
    while i < out.len() {
        out[i] = Cplx::new(BARKER13[i % BARKER13.len()], 0.0);
        i += 1;
    }
    out
};

/// Builds the preamble sample block at a given amplitude.
pub fn build_preamble(amplitude: f64) -> Vec<Cplx> {
    let mut out = Vec::new();
    build_preamble_into(amplitude, &mut out);
    out
}

/// Allocation-free [`build_preamble`]: clears and refills `out`.
pub fn build_preamble_into(amplitude: f64, out: &mut Vec<Cplx>) {
    out.clear();
    out.reserve(REFERENCE.len());
    for _ in 0..PREAMBLE_REPEATS {
        out.extend(BARKER13.iter().map(|c| Cplx::new(c * amplitude, 0.0)));
    }
}

/// Length of the preamble in samples.
pub fn preamble_len() -> usize {
    BARKER13.len() * PREAMBLE_REPEATS
}

/// Slides a Barker correlator over `rx[0..search_window]` and returns the
/// detected frame-start offset (index of the first sample *after* the
/// preamble), or `None` if no correlation peak clears the threshold.
///
/// The correlation is normalized by local energy so the threshold is
/// SNR-relative rather than amplitude-relative.
pub fn detect_preamble(rx: &[Cplx], search_window: usize, threshold: f64) -> Option<usize> {
    let plen = preamble_len();
    if rx.len() < plen {
        return None;
    }
    let reference = &REFERENCE;
    let ref_energy = plen as f64; // ±1 chips: Σ|p|² = len
    let limit = search_window.min(rx.len() - plen);

    let mut best: Option<(usize, f64)> = None;
    for start in 0..=limit {
        let window = &rx[start..start + plen];
        let mut corr = Cplx::ZERO;
        let mut energy = 0.0;
        for (r, p) in window.iter().zip(reference.iter()) {
            corr += *r * p.conj();
            energy += r.norm_sqr();
        }
        if energy <= 0.0 {
            continue;
        }
        // Normalized correlation magnitude in [0, 1].
        let metric = corr.abs() / (energy * ref_energy).sqrt();
        match best {
            Some((_, m)) if m >= metric => {}
            _ => best = Some((start, metric)),
        }
    }
    match best {
        Some((start, metric)) if metric >= threshold => Some(start + plen),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::add_awgn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn barker_has_ideal_autocorrelation() {
        // Off-peak aperiodic autocorrelation of a Barker code is ≤ 1.
        for shift in 1..13usize {
            let acc: f64 = (0..13 - shift)
                .map(|i| BARKER13[i] * BARKER13[i + shift])
                .sum();
            assert!(acc.abs() <= 1.0 + 1e-12, "shift {shift}: {acc}");
        }
        let peak: f64 = BARKER13.iter().map(|c| c * c).sum();
        assert_eq!(peak, 13.0);
    }

    #[test]
    fn detects_clean_preamble_at_offset() {
        let offset = 37;
        let mut rx = vec![Cplx::ZERO; offset];
        rx.extend(build_preamble(0.5));
        rx.extend(vec![Cplx::new(0.1, -0.2); 100]);
        let detected = detect_preamble(&rx, 64, 0.6).expect("should detect");
        assert_eq!(detected, offset + preamble_len());
    }

    #[test]
    fn detects_preamble_in_noise() {
        let mut rng = StdRng::seed_from_u64(42);
        let offset = 11;
        let mut rx = vec![Cplx::ZERO; offset];
        rx.extend(build_preamble(1.0));
        rx.extend(vec![Cplx::ZERO; 200]);
        add_awgn(&mut rx, 0.25, &mut rng); // 6 dB SNR on the preamble
        let detected = detect_preamble(&rx, 64, 0.5).expect("should detect in noise");
        assert_eq!(detected, offset + preamble_len());
    }

    #[test]
    fn pure_noise_is_rejected() {
        let mut rng = StdRng::seed_from_u64(43);
        let mut rx = vec![Cplx::ZERO; 300];
        add_awgn(&mut rx, 1.0, &mut rng);
        assert_eq!(detect_preamble(&rx, 200, 0.7), None);
    }

    #[test]
    fn too_short_buffer_is_rejected() {
        assert_eq!(detect_preamble(&[Cplx::ONE; 10], 10, 0.5), None);
    }

    #[test]
    fn survives_phase_rotation() {
        // Correlation magnitude is phase-invariant.
        let offset = 5;
        let mut rx = vec![Cplx::ZERO; offset];
        rx.extend(build_preamble(1.0).into_iter().map(|s| s * Cplx::cis(0.9)));
        rx.extend(vec![Cplx::ZERO; 50]);
        let detected = detect_preamble(&rx, 32, 0.8).expect("detect rotated");
        assert_eq!(detected, offset + preamble_len());
    }
}
