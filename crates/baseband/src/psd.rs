//! Power-spectral-density estimation (Welch's method).
//!
//! Reproduces the measurement behind the paper's Fig. 1: "we obtain the
//! power spectral density (PSD) of the transmitted signals. The same power
//! Tx is used for both 20 and 40 MHz channels. ... It is evident that there
//! is an approximate 3 dB reduction (−92 dB to −95 dB) in the energy per
//! subcarrier when we increase the channel width."
//!
//! Welch's method: split the signal into half-overlapping Hann-windowed
//! segments, average their periodograms, and normalize by window energy.

use crate::cplx::Cplx;
use crate::fft::fft;

/// A PSD estimate: per-bin power (linear) over an `nfft`-point grid, bin k
/// corresponding to normalized frequency `k/nfft` of the sample rate.
#[derive(Debug, Clone)]
pub struct PsdEstimate {
    /// Per-bin power estimate, linear scale, length `nfft`.
    pub power: Vec<f64>,
    /// Number of averaged segments.
    pub segments: usize,
}

impl PsdEstimate {
    /// Per-bin power in dB (relative units; `10·log10`), with silent bins
    /// mapped to −300 dB so plots stay finite.
    pub fn power_db(&self) -> Vec<f64> {
        self.power
            .iter()
            .map(|p| if *p > 0.0 { 10.0 * p.log10() } else { -300.0 })
            .collect()
    }

    /// Median power (dB) over the bins selected by `mask` — a robust
    /// "in-band level" readout used to compare the 20 and 40 MHz plateaus.
    pub fn median_db_over<F: Fn(usize) -> bool>(&self, mask: F) -> f64 {
        let mut vals: Vec<f64> = self
            .power_db()
            .into_iter()
            .enumerate()
            .filter(|(k, _)| mask(*k))
            .map(|(_, v)| v)
            .collect();
        assert!(!vals.is_empty(), "mask selected no bins");
        vals.sort_by(|a, b| a.total_cmp(b));
        vals[vals.len() / 2]
    }
}

/// Hann window of length `n`.
fn hann(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = std::f64::consts::PI * i as f64 / n as f64;
            x.sin().powi(2)
        })
        .collect()
}

/// Welch PSD over `signal` with `nfft`-point segments and 50 % overlap.
///
/// Normalization: the mean of `power` equals the mean signal power, so two
/// signals of equal total power but different occupied bandwidth show the
/// expected per-bin level difference (the Fig. 1 effect).
pub fn welch_psd(signal: &[Cplx], nfft: usize) -> PsdEstimate {
    assert!(nfft.is_power_of_two(), "nfft must be a power of two");
    assert!(
        signal.len() >= nfft,
        "signal ({}) shorter than one segment ({nfft})",
        signal.len()
    );
    let window = hann(nfft);
    let win_power: f64 = window.iter().map(|w| w * w).sum::<f64>() / nfft as f64;
    let hop = nfft / 2;
    let mut acc = vec![0.0f64; nfft];
    let mut segments = 0usize;
    let mut start = 0usize;
    let mut buf = vec![Cplx::ZERO; nfft];
    while start + nfft <= signal.len() {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = signal[start + i].scale(window[i]);
        }
        fft(&mut buf);
        for (k, a) in acc.iter_mut().enumerate() {
            // Normalized so the bin-average of `power` equals the mean
            // signal power for a noise-like (band-filling) signal:
            // E|FFT(w·x)_k|² = σ²·N·win_power for white x of power σ².
            *a += buf[k].norm_sqr() / (nfft as f64 * win_power);
        }
        segments += 1;
        start += hop;
    }
    for a in acc.iter_mut() {
        *a /= segments as f64;
    }
    PsdEstimate {
        power: acc,
        segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::add_awgn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    #[test]
    fn tone_concentrates_power_in_one_bin() {
        let n = 4096;
        let nfft = 256;
        let k0 = 32;
        let signal: Vec<Cplx> = (0..n)
            .map(|i| Cplx::cis(2.0 * PI * k0 as f64 * i as f64 / nfft as f64))
            .collect();
        let psd = welch_psd(&signal, nfft);
        let peak_bin = psd
            .power
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak_bin, k0);
        // Almost all power in the ±1-bin neighbourhood.
        let near: f64 = psd.power[k0 - 1..=k0 + 1].iter().sum();
        let total: f64 = psd.power.iter().sum();
        assert!(near / total > 0.95, "near/total = {}", near / total);
    }

    #[test]
    fn mean_psd_tracks_signal_power() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut noise = vec![Cplx::ZERO; 32_768];
        add_awgn(&mut noise, 2.0, &mut rng);
        let psd = welch_psd(&noise, 256);
        let mean: f64 = psd.power.iter().sum::<f64>() / psd.power.len() as f64;
        assert!((mean - 2.0).abs() < 0.15, "mean = {mean}");
    }

    #[test]
    fn spreading_power_over_double_band_drops_level_3db() {
        // The Fig. 1 mechanism in miniature: equal total power, one signal
        // occupying bins 0..64, the other 0..128 → per-bin level −3 dB.
        let mut rng = StdRng::seed_from_u64(4);
        let nfft = 256;
        let make = |bins: usize, rng: &mut StdRng| -> Vec<Cplx> {
            // Sum of unit tones over `bins` bins, scaled for equal total power.
            let amp = (1.0 / bins as f64).sqrt();
            (0..32_768)
                .map(|i| {
                    let mut s = Cplx::ZERO;
                    for k in 0..bins {
                        s += Cplx::cis(
                            2.0 * PI * k as f64 * i as f64 / nfft as f64
                                + 2.0 * PI * (k * 7919 % 100) as f64 / 100.0,
                        );
                    }
                    let _ = &rng;
                    s.scale(amp)
                })
                .collect()
        };
        let narrow = make(64, &mut rng);
        let wide = make(128, &mut rng);
        let p_narrow = welch_psd(&narrow, nfft).median_db_over(|k| k < 64);
        let p_wide = welch_psd(&wide, nfft).median_db_over(|k| k < 128);
        let drop = p_narrow - p_wide;
        assert!((drop - 3.0).abs() < 0.7, "drop = {drop} dB");
    }

    #[test]
    #[should_panic(expected = "shorter than one segment")]
    fn short_signal_panics() {
        welch_psd(&[Cplx::ONE; 10], 64);
    }
}
