//! Property tests pinning the lane-shaped kernels to their oracles.
//!
//! Two families of equivalences, both exact (`to_bits` for floats, `==`
//! for bits):
//!
//! * The lane/AVX-512 Viterbi paths ([`viterbi_decode_into`],
//!   [`viterbi_classes_into`], [`Codec::decode_into`]) against the
//!   retained state-major scalar decoder [`viterbi_decode_scalar`],
//!   across random received symbols, erasure patterns, puncturing rates
//!   and trellis lengths.
//! * The split and batched FFT kernels against the interleaved radix-2
//!   oracle, across all power-of-two sizes the plan accepts, with
//!   independent random data in every batch lane.
//!
//! These are the contract that lets the frame pipeline switch freely
//! between the per-packet and batched engines without perturbing a single
//! golden figure.

use acorn_baseband::convcode::{
    viterbi_classes_into, viterbi_decode_into, viterbi_decode_scalar, Codec, TAIL_BITS,
};
use acorn_baseband::cplx::Cplx;
use acorn_baseband::fft::{FftPlan, FFT_BATCH};
use acorn_phy::CodeRate;
use proptest::prelude::*;

/// One received (possibly erased) code-bit pair, drawn uniformly over the
/// nine (erasure, 0, 1)² combinations.
fn pair_strategy() -> impl Strategy<Value = (Option<bool>, Option<bool>)> {
    let sym = |s: u8| match s {
        0 => None,
        1 => Some(false),
        _ => Some(true),
    };
    (0u8..9).prop_map(move |c| (sym(c / 3), sym(c % 3)))
}

/// The class byte the depuncturer assigns to a pair: `3·sym(a) + sym(b)`
/// with `sym` mapping erasure → 0, 0-bit → 1, 1-bit → 2.
fn class_of(pair: (Option<bool>, Option<bool>)) -> u8 {
    let sym = |s: Option<bool>| match s {
        None => 0u8,
        Some(false) => 1,
        Some(true) => 2,
    };
    3 * sym(pair.0) + sym(pair.1)
}

proptest! {
    /// Lane-shaped decoder ≡ scalar oracle on arbitrary symbol/erasure
    /// sequences and lengths.
    #[test]
    fn lane_viterbi_matches_scalar_oracle(
        pairs in proptest::collection::vec(pair_strategy(), TAIL_BITS..300),
    ) {
        let info_len = pairs.len() - TAIL_BITS;
        let expected = viterbi_decode_scalar(&pairs, info_len);
        let (mut survivor, mut decoded) = (Vec::new(), Vec::new());
        viterbi_decode_into(&pairs, info_len, &mut survivor, &mut decoded);
        prop_assert_eq!(&decoded, &expected);
    }

    /// The class-byte entry (the measured frame path, AVX-512 where
    /// available) ≡ scalar oracle on the same sequences.
    #[test]
    fn class_viterbi_matches_scalar_oracle(
        pairs in proptest::collection::vec(pair_strategy(), TAIL_BITS..300),
    ) {
        let info_len = pairs.len() - TAIL_BITS;
        let expected = viterbi_decode_scalar(&pairs, info_len);
        let classes: Vec<u8> = pairs.iter().map(|&p| class_of(p)).collect();
        let (mut survivor, mut decoded) = (Vec::new(), Vec::new());
        viterbi_classes_into(&classes, info_len, &mut survivor, &mut decoded);
        prop_assert_eq!(&decoded, &expected);
    }

    /// Scratch reuse must not leak state between decodes of different
    /// lengths: a long decode followed by a short one matches a fresh
    /// short decode.
    #[test]
    fn survivor_scratch_reuse_is_stateless(
        long in proptest::collection::vec(pair_strategy(), 200..260),
        short in proptest::collection::vec(pair_strategy(), TAIL_BITS..60),
    ) {
        let (mut survivor, mut decoded) = (Vec::new(), Vec::new());
        viterbi_decode_into(&long, long.len() - TAIL_BITS, &mut survivor, &mut decoded);
        viterbi_decode_into(&short, short.len() - TAIL_BITS, &mut survivor, &mut decoded);
        prop_assert_eq!(&decoded, &viterbi_decode_scalar(&short, short.len() - TAIL_BITS));
    }

    /// Full codec path with puncturing: `decode_into` (class-based
    /// depuncture + lane Viterbi) ≡ depuncture + scalar oracle, under
    /// random channel bit-flips at every rate.
    #[test]
    fn codec_decode_into_matches_scalar_oracle(
        rate_idx in 0..4usize,
        info in proptest::collection::vec(any::<bool>(), 1..200),
        flips in proptest::collection::vec(any::<u16>(), 0..40),
    ) {
        let rate = CodeRate::ALL[rate_idx];
        let codec = Codec::new(rate);
        let mut tx = codec.encode(&info);
        for f in flips {
            let i = f as usize % tx.len();
            tx[i] = !tx[i];
        }
        let pairs = acorn_baseband::convcode::depuncture(&tx, rate, info.len() + TAIL_BITS);
        let expected = viterbi_decode_scalar(&pairs, info.len());
        let (mut classes, mut survivor, mut out) = (Vec::new(), Vec::new(), Vec::new());
        codec.decode_into(&tx, info.len(), &mut classes, &mut survivor, &mut out);
        prop_assert_eq!(&out, &expected);
    }

    /// Split-array kernels ≡ interleaved oracle, exact to the bit, at
    /// every power-of-two size up to 256.
    #[test]
    fn split_kernels_match_interleaved_oracle(
        log_n in 1u32..9,
        seed in any::<u64>(),
        inverse in any::<bool>(),
    ) {
        let n = 1usize << log_n;
        let plan = FftPlan::new(n);
        let data = lcg_signal(n, seed);
        let mut oracle = data.clone();
        let (mut re, mut im): (Vec<f64>, Vec<f64>) =
            data.iter().map(|z| (z.re, z.im)).unzip();
        if inverse {
            plan.inverse_generic(&mut oracle);
            plan.inverse_split(&mut re, &mut im);
        } else {
            plan.forward_generic(&mut oracle);
            plan.forward_split(&mut re, &mut im);
        }
        for (z, (r, i)) in oracle.iter().zip(re.iter().zip(im.iter())) {
            prop_assert_eq!(z.re.to_bits(), r.to_bits());
            prop_assert_eq!(z.im.to_bits(), i.to_bits());
        }
    }

    /// Batched kernels ≡ interleaved oracle in every lane, with distinct
    /// random data per lane, at every power-of-two size up to 256.
    #[test]
    fn batch_kernels_match_interleaved_oracle(
        log_n in 1u32..9,
        seed in any::<u64>(),
        inverse in any::<bool>(),
    ) {
        let n = 1usize << log_n;
        let plan = FftPlan::new(n);
        let lanes: Vec<Vec<Cplx>> = (0..FFT_BATCH)
            .map(|l| lcg_signal(n, seed.wrapping_add(l as u64)))
            .collect();
        // Bin-major planar pack.
        let mut re = vec![0.0; n * FFT_BATCH];
        let mut im = vec![0.0; n * FFT_BATCH];
        for (l, lane) in lanes.iter().enumerate() {
            for (i, z) in lane.iter().enumerate() {
                re[i * FFT_BATCH + l] = z.re;
                im[i * FFT_BATCH + l] = z.im;
            }
        }
        if inverse {
            plan.inverse_raw_batch(&mut re, &mut im);
        } else {
            plan.forward_batch(&mut re, &mut im);
        }
        for (l, lane) in lanes.iter().enumerate() {
            let mut oracle = lane.clone();
            if inverse {
                plan.inverse_raw(&mut oracle);
            } else {
                plan.forward_generic(&mut oracle);
            }
            for (i, z) in oracle.iter().enumerate() {
                prop_assert_eq!(z.re.to_bits(), re[i * FFT_BATCH + l].to_bits());
                prop_assert_eq!(z.im.to_bits(), im[i * FFT_BATCH + l].to_bits());
            }
        }
    }
}

/// A deterministic pseudo-random complex signal (no RNG dependency needed
/// here: a 64-bit LCG mapped to `[-1, 1)` components).
fn lcg_signal(n: usize, seed: u64) -> Vec<Cplx> {
    let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    };
    (0..n).map(|_| Cplx::new(next(), next())).collect()
}
