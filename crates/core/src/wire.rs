//! Wire format of the ACORN modified beacon.
//!
//! §5.1: "The delay for each client is calculated and broadcast in a
//! beacon ... along with the M_a values, the number of clients and the
//! aggregate transmission delay of an AP." The paper's Click utility
//! rides this in 802.11 beacon frames; this module defines the actual
//! bytes: an 802.11 management-frame beacon carrying a vendor-specific
//! information element (ID 221) with the ACORN payload.
//!
//! Layout (all multi-byte fields little-endian, as on the 802.11 wire):
//!
//! ```text
//! MAC header (24 B): frame control | duration | DA | SA | BSSID | seq
//! Beacon fixed part (12 B): timestamp (8) | interval (2) | capability (2)
//! ACORN IE: 221 | len | OUI 0x41 0x43 0x4F ("ACO") | type 0x01 |
//!           version u8 | ap_id u16 | channel u8 | width u8 |
//!           access_share_q u16 (share × 2^14) | n_clients u8 |
//!           atd_us u32 | n_clients × delay_us u32
//! ```
//!
//! Delays are saturating microseconds (`u32::MAX` encodes ∞ — a dead
//! link). Parsing is defensive: every malformed input maps to a typed
//! [`WireError`], never a panic — property-tested against random bytes.
//!
//! Every frame ends in a 4-byte FCS (CRC-32, the 802.11 polynomial), so
//! bit corruption in flight is *detected*: a flipped frame parses to
//! [`WireError::BadFcs`], never to silently-wrong contents. The same
//! module also frames IAPP [`Announcement`]s
//! ([`serialize_announcement`]/[`parse_announcement`]) so the
//! fault-injection layer can push inter-AP traffic through the identical
//! encode → corrupt → parse path.

use crate::beacon::Beacon;
use crate::iapp::Announcement;
use acorn_topology::{ApId, Channel20, ChannelAssignment};

/// 802.11 management / beacon frame-control value (version 0, type
/// management, subtype beacon) in little-endian byte order.
pub const FC_BEACON: [u8; 2] = [0x80, 0x00];
/// 802.11 management / action frame-control value — the transport for
/// IAPP announcements.
pub const FC_ACTION: [u8; 2] = [0xD0, 0x00];
/// Vendor-specific information element ID.
pub const IE_VENDOR: u8 = 221;
/// Our (made-up, documentation-range) OUI: "ACO".
pub const ACORN_OUI: [u8; 3] = [0x41, 0x43, 0x4F];
/// OUI subtype for the ACORN beacon payload.
pub const ACORN_OUI_TYPE: u8 = 0x01;
/// OUI subtype for the IAPP announcement payload.
pub const ACORN_OUI_TYPE_IAPP: u8 = 0x02;
/// Wire-format version this module speaks.
pub const WIRE_VERSION: u8 = 1;
/// Fixed-point scale of the access share (Q2.14-ish: share × 2^14).
pub const SHARE_SCALE: f64 = 16384.0;
/// Maximum clients one IE can carry (IE length is a u8).
pub const MAX_CLIENTS: usize = (255 - IE_FIXED) / 4;
/// Trailing frame-check-sequence bytes on every serialized frame.
pub const FCS_LEN: usize = 4;

/// Bytes of the IE payload before the per-client delay list:
/// OUI(3) + type(1) + version(1) + ap_id(2) + channel(1) + width(1) +
/// share(2) + n_clients(1) + atd(4).
const IE_FIXED: usize = 16;
/// IAPP announcement IE payload:
/// OUI(3) + type(1) + version(1) + from(2) + seq(8) + channel(1) +
/// width(1) + n_clients(2) + sent_at bits(8).
const IE_IAPP: usize = 27;
/// MAC header + beacon fixed part.
const HEADER: usize = 24 + 12;
/// MAC header alone (action frames carry their IE directly).
const MAC_HEADER: usize = 24;

/// Typed parse failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Buffer shorter than the fixed header or a declared length.
    Truncated,
    /// Frame control is not a beacon.
    NotABeacon,
    /// No ACORN vendor IE present.
    MissingIe,
    /// Vendor IE with our ID but wrong OUI/type.
    ForeignVendorIe,
    /// Unsupported wire version.
    BadVersion(u8),
    /// Width byte is neither 20 nor 40.
    BadWidth(u8),
    /// Bonded assignment with an odd (illegal) primary channel.
    IllegalBond(u8),
    /// The declared client count disagrees with the IE length.
    LengthMismatch,
    /// Too many clients for one IE.
    TooManyClients(usize),
    /// The frame-check sequence does not match the frame contents —
    /// bits were corrupted in flight.
    BadFcs,
    /// Frame control is not an action frame (announcement parsing).
    NotAnAnnouncement,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::NotABeacon => write!(f, "not a beacon frame"),
            WireError::MissingIe => write!(f, "no ACORN information element"),
            WireError::ForeignVendorIe => write!(f, "vendor IE is not ACORN's"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadWidth(w) => write!(f, "bad width byte {w}"),
            WireError::IllegalBond(c) => write!(f, "illegal bond primary {c}"),
            WireError::LengthMismatch => write!(f, "client count / length mismatch"),
            WireError::TooManyClients(n) => write!(f, "{n} clients exceed one IE"),
            WireError::BadFcs => write!(f, "frame check sequence mismatch"),
            WireError::NotAnAnnouncement => write!(f, "not an announcement frame"),
        }
    }
}

impl std::error::Error for WireError {}

/// CRC-32 as 802.11 computes its FCS: reflected polynomial `0xEDB88320`,
/// init and final-xor `0xFFFF_FFFF`. Bitwise (no table) — frames are a
/// few hundred bytes and this sits far off any hot path.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

fn append_fcs(out: &mut Vec<u8>) {
    let fcs = crc32(out);
    out.extend_from_slice(&fcs.to_le_bytes());
}

/// Checks and strips the trailing FCS, returning the protected payload.
fn check_fcs(frame: &[u8]) -> Result<&[u8], WireError> {
    if frame.len() < FCS_LEN {
        return Err(WireError::Truncated);
    }
    let (body, trailer) = frame.split_at(frame.len() - FCS_LEN);
    let got = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    if crc32(body) != got {
        return Err(WireError::BadFcs);
    }
    Ok(body)
}

/// Recomputes the trailing FCS over the current frame contents — for
/// tooling/tests that splice or rewrite bytes of a serialized frame and
/// need it to validate again.
pub fn refresh_fcs(frame: &mut [u8]) {
    if frame.len() < FCS_LEN {
        return;
    }
    let n = frame.len() - FCS_LEN;
    let fcs = crc32(&frame[..n]);
    frame[n..].copy_from_slice(&fcs.to_le_bytes());
}

fn delay_to_us(d_s: f64) -> u32 {
    if !d_s.is_finite() {
        return u32::MAX;
    }
    (d_s * 1e6).clamp(0.0, (u32::MAX - 1) as f64) as u32
}

fn us_to_delay(us: u32) -> f64 {
    if us == u32::MAX {
        f64::INFINITY
    } else {
        us as f64 / 1e6
    }
}

/// Serializes a beacon into a full management frame. `bssid` stamps the
/// SA/BSSID fields; `timestamp_us` the TSF field.
///
/// Fails with [`WireError::TooManyClients`] if the delay list cannot fit
/// one vendor IE (the paper's enterprise cells are far smaller).
pub fn serialize_beacon(
    beacon: &Beacon,
    bssid: [u8; 6],
    timestamp_us: u64,
) -> Result<Vec<u8>, WireError> {
    if beacon.client_delays_s.len() > MAX_CLIENTS {
        return Err(WireError::TooManyClients(beacon.client_delays_s.len()));
    }
    let n = beacon.client_delays_s.len();
    let ie_len = IE_FIXED + 4 * n;
    let mut out = Vec::with_capacity(HEADER + 2 + ie_len);

    // MAC header.
    out.extend_from_slice(&FC_BEACON);
    out.extend_from_slice(&[0, 0]); // duration
    out.extend_from_slice(&[0xFF; 6]); // DA: broadcast
    out.extend_from_slice(&bssid); // SA
    out.extend_from_slice(&bssid); // BSSID
    out.extend_from_slice(&[0, 0]); // sequence control

    // Beacon fixed part.
    out.extend_from_slice(&timestamp_us.to_le_bytes());
    out.extend_from_slice(&100u16.to_le_bytes()); // 100 TU interval
    out.extend_from_slice(&0x0001u16.to_le_bytes()); // ESS capability

    // ACORN vendor IE.
    out.push(IE_VENDOR);
    out.push(ie_len as u8);
    out.extend_from_slice(&ACORN_OUI);
    out.push(ACORN_OUI_TYPE);
    out.push(WIRE_VERSION);
    out.extend_from_slice(&(beacon.ap.0 as u16).to_le_bytes());
    let (channel, width) = match beacon.assignment {
        ChannelAssignment::Single(c) => (c.0, 20u8),
        ChannelAssignment::Bonded(c) => (c.0, 40u8),
    };
    out.push(channel);
    out.push(width);
    let share_q = (beacon.access_share.clamp(0.0, 1.0) * SHARE_SCALE).round() as u16;
    out.extend_from_slice(&share_q.to_le_bytes());
    out.push(n as u8);
    out.extend_from_slice(&delay_to_us(beacon.atd_s).to_le_bytes());
    for d in &beacon.client_delays_s {
        out.extend_from_slice(&delay_to_us(*d).to_le_bytes());
    }
    append_fcs(&mut out);
    Ok(out)
}

/// Parses a management frame back into a [`Beacon`].
///
/// Round-trip note: delays quantize to 1 µs and the share to 1/2^14, so
/// `parse(serialize(b))` matches `b` to those resolutions (asserted by
/// the property tests); an infinite ATD/delay survives exactly.
pub fn parse_beacon(frame: &[u8]) -> Result<Beacon, WireError> {
    let body = check_fcs(frame)?;
    if body.len() < HEADER {
        return Err(WireError::Truncated);
    }
    if body[0..2] != FC_BEACON {
        return Err(WireError::NotABeacon);
    }
    // Walk the IE list (the FCS trailer is already stripped).
    let mut off = HEADER;
    while off + 2 <= body.len() {
        let id = body[off];
        let len = body[off + 1] as usize;
        let ie = body
            .get(off + 2..off + 2 + len)
            .ok_or(WireError::Truncated)?;
        if id == IE_VENDOR {
            return parse_acorn_ie(ie);
        }
        off += 2 + len;
    }
    Err(WireError::MissingIe)
}

fn parse_acorn_ie(body: &[u8]) -> Result<Beacon, WireError> {
    if body.len() < IE_FIXED {
        return Err(WireError::ForeignVendorIe);
    }
    if body[0..3] != ACORN_OUI || body[3] != ACORN_OUI_TYPE {
        return Err(WireError::ForeignVendorIe);
    }
    if body[4] != WIRE_VERSION {
        return Err(WireError::BadVersion(body[4]));
    }
    let ap = ApId(u16::from_le_bytes([body[5], body[6]]) as usize);
    let channel = body[7];
    let assignment = match body[8] {
        20 => ChannelAssignment::Single(Channel20(channel)),
        40 => {
            ChannelAssignment::bonded(Channel20(channel)).ok_or(WireError::IllegalBond(channel))?
        }
        w => return Err(WireError::BadWidth(w)),
    };
    let share = u16::from_le_bytes([body[9], body[10]]) as f64 / SHARE_SCALE;
    let n = body[11] as usize;
    let atd = us_to_delay(u32::from_le_bytes([body[12], body[13], body[14], body[15]]));
    if body.len() != IE_FIXED + 4 * n {
        return Err(WireError::LengthMismatch);
    }
    let mut delays = Vec::with_capacity(n);
    for i in 0..n {
        let b = &body[IE_FIXED + 4 * i..IE_FIXED + 4 * i + 4];
        delays.push(us_to_delay(u32::from_le_bytes([b[0], b[1], b[2], b[3]])));
    }
    Ok(Beacon {
        ap,
        assignment,
        n_clients: n,
        client_delays_s: delays,
        atd_s: atd,
        access_share: share.clamp(f64::MIN_POSITIVE, 1.0),
    })
}

/// Serializes an IAPP [`Announcement`] as a vendor action frame: MAC
/// header, the ACORN vendor IE (subtype
/// [`ACORN_OUI_TYPE_IAPP`]), and the FCS. This is the transport the
/// fault-injection layer corrupts, so inter-AP control traffic gets the
/// same detection guarantees as beacons.
pub fn serialize_announcement(ann: &Announcement, bssid: [u8; 6]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAC_HEADER + 2 + IE_IAPP + FCS_LEN);
    out.extend_from_slice(&FC_ACTION);
    out.extend_from_slice(&[0, 0]); // duration
    out.extend_from_slice(&[0xFF; 6]); // DA: broadcast
    out.extend_from_slice(&bssid); // SA
    out.extend_from_slice(&bssid); // BSSID
    out.extend_from_slice(&[0, 0]); // sequence control

    out.push(IE_VENDOR);
    out.push(IE_IAPP as u8);
    out.extend_from_slice(&ACORN_OUI);
    out.push(ACORN_OUI_TYPE_IAPP);
    out.push(WIRE_VERSION);
    out.extend_from_slice(&(ann.from.0 as u16).to_le_bytes());
    out.extend_from_slice(&ann.seq.to_le_bytes());
    let (channel, width) = match ann.assignment {
        ChannelAssignment::Single(c) => (c.0, 20u8),
        ChannelAssignment::Bonded(c) => (c.0, 40u8),
    };
    out.push(channel);
    out.push(width);
    out.extend_from_slice(&(ann.n_clients.min(u16::MAX as usize) as u16).to_le_bytes());
    out.extend_from_slice(&ann.sent_at_s.to_bits().to_le_bytes());
    append_fcs(&mut out);
    out
}

/// Parses an action frame back into an [`Announcement`]. Defensive like
/// [`parse_beacon`]: every malformed input is a typed [`WireError`].
pub fn parse_announcement(frame: &[u8]) -> Result<Announcement, WireError> {
    let body = check_fcs(frame)?;
    if body.len() < MAC_HEADER {
        return Err(WireError::Truncated);
    }
    if body[0..2] != FC_ACTION {
        return Err(WireError::NotAnAnnouncement);
    }
    let mut off = MAC_HEADER;
    while off + 2 <= body.len() {
        let id = body[off];
        let len = body[off + 1] as usize;
        let ie = body
            .get(off + 2..off + 2 + len)
            .ok_or(WireError::Truncated)?;
        if id == IE_VENDOR {
            return parse_iapp_ie(ie);
        }
        off += 2 + len;
    }
    Err(WireError::MissingIe)
}

fn parse_iapp_ie(body: &[u8]) -> Result<Announcement, WireError> {
    if body.len() < 4 || body[0..3] != ACORN_OUI || body[3] != ACORN_OUI_TYPE_IAPP {
        return Err(WireError::ForeignVendorIe);
    }
    if body.len() != IE_IAPP {
        return Err(WireError::LengthMismatch);
    }
    if body[4] != WIRE_VERSION {
        return Err(WireError::BadVersion(body[4]));
    }
    let from = ApId(u16::from_le_bytes([body[5], body[6]]) as usize);
    let mut seq_bytes = [0u8; 8];
    seq_bytes.copy_from_slice(&body[7..15]);
    let seq = u64::from_le_bytes(seq_bytes);
    let channel = body[15];
    let assignment = match body[16] {
        20 => ChannelAssignment::Single(Channel20(channel)),
        40 => {
            ChannelAssignment::bonded(Channel20(channel)).ok_or(WireError::IllegalBond(channel))?
        }
        w => return Err(WireError::BadWidth(w)),
    };
    let n_clients = u16::from_le_bytes([body[17], body[18]]) as usize;
    let mut at_bytes = [0u8; 8];
    at_bytes.copy_from_slice(&body[19..27]);
    let sent_at_s = f64::from_bits(u64::from_le_bytes(at_bytes));
    Ok(Announcement {
        from,
        seq,
        assignment,
        n_clients,
        sent_at_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beacon(n: usize, bonded: bool) -> Beacon {
        Beacon {
            ap: ApId(7),
            assignment: if bonded {
                ChannelAssignment::bonded(Channel20(4)).unwrap()
            } else {
                ChannelAssignment::Single(Channel20(9))
            },
            n_clients: n,
            client_delays_s: (0..n).map(|i| 0.001 * (i + 1) as f64).collect(),
            atd_s: (0..n).map(|i| 0.001 * (i + 1) as f64).sum(),
            access_share: 1.0 / 3.0,
        }
    }

    #[test]
    fn roundtrip_single_and_bonded() {
        for bonded in [false, true] {
            let b = beacon(3, bonded);
            let frame = serialize_beacon(&b, [2; 6], 123_456).unwrap();
            let parsed = parse_beacon(&frame).unwrap();
            assert_eq!(parsed.ap, b.ap);
            assert_eq!(parsed.assignment, b.assignment);
            assert_eq!(parsed.n_clients, 3);
            assert!((parsed.atd_s - b.atd_s).abs() < 2e-6);
            assert!((parsed.access_share - b.access_share).abs() < 1e-4);
            for (x, y) in parsed.client_delays_s.iter().zip(&b.client_delays_s) {
                assert!((x - y).abs() < 2e-6);
            }
            assert!(parsed.is_consistent());
        }
    }

    #[test]
    fn infinite_delays_survive() {
        let mut b = beacon(2, false);
        b.client_delays_s[1] = f64::INFINITY;
        b.atd_s = f64::INFINITY;
        let frame = serialize_beacon(&b, [0; 6], 0).unwrap();
        let parsed = parse_beacon(&frame).unwrap();
        assert!(parsed.client_delays_s[1].is_infinite());
        assert!(parsed.atd_s.is_infinite());
    }

    #[test]
    fn empty_cell_roundtrips() {
        let b = beacon(0, false);
        let parsed = parse_beacon(&serialize_beacon(&b, [0; 6], 0).unwrap()).unwrap();
        assert_eq!(parsed.n_clients, 0);
        assert_eq!(parsed.atd_s, 0.0);
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let frame = serialize_beacon(&beacon(2, true), [1; 6], 9).unwrap();
        for cut in [0, 1, HEADER - 1, HEADER + 1, frame.len() - 1] {
            assert!(
                parse_beacon(&frame[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn non_beacon_frames_are_rejected() {
        let mut frame = serialize_beacon(&beacon(1, false), [1; 6], 9).unwrap();
        frame[0] = 0x08; // data frame
        refresh_fcs(&mut frame);
        assert_eq!(parse_beacon(&frame), Err(WireError::NotABeacon));
    }

    #[test]
    fn foreign_vendor_ie_is_rejected() {
        let mut frame = serialize_beacon(&beacon(1, false), [1; 6], 9).unwrap();
        frame[HEADER + 2] = 0x00; // clobber the OUI
        refresh_fcs(&mut frame);
        assert_eq!(parse_beacon(&frame), Err(WireError::ForeignVendorIe));
    }

    #[test]
    fn version_and_width_are_checked() {
        let mut f1 = serialize_beacon(&beacon(1, false), [1; 6], 9).unwrap();
        f1[HEADER + 2 + 4] = 99; // version byte
        refresh_fcs(&mut f1);
        assert_eq!(parse_beacon(&f1), Err(WireError::BadVersion(99)));
        let mut f2 = serialize_beacon(&beacon(1, false), [1; 6], 9).unwrap();
        f2[HEADER + 2 + 8] = 30; // width byte
        refresh_fcs(&mut f2);
        assert_eq!(parse_beacon(&f2), Err(WireError::BadWidth(30)));
    }

    #[test]
    fn illegal_bond_is_rejected() {
        let mut frame = serialize_beacon(&beacon(1, true), [1; 6], 9).unwrap();
        frame[HEADER + 2 + 7] = 5; // odd primary channel
        refresh_fcs(&mut frame);
        assert_eq!(parse_beacon(&frame), Err(WireError::IllegalBond(5)));
    }

    #[test]
    fn client_count_must_match_length() {
        let mut frame = serialize_beacon(&beacon(2, false), [1; 6], 9).unwrap();
        let count_off = HEADER + 2 + 11;
        frame[count_off] = 3; // claim one more client than present
        refresh_fcs(&mut frame);
        assert_eq!(parse_beacon(&frame), Err(WireError::LengthMismatch));
    }

    #[test]
    fn corruption_without_fcs_repair_is_detected() {
        // The in-flight story: any byte flipped after serialization (FCS
        // not recomputed) must surface as BadFcs, including flips inside
        // the trailer itself.
        let frame = serialize_beacon(&beacon(2, true), [1; 6], 9).unwrap();
        for at in [0, 2, HEADER + 2, HEADER + 9, frame.len() - 1] {
            let mut bad = frame.clone();
            bad[at] ^= 0x10;
            assert_eq!(parse_beacon(&bad), Err(WireError::BadFcs), "flip at {at}");
        }
    }

    #[test]
    fn announcement_roundtrip_and_corruption() {
        let ann = Announcement {
            from: ApId(12),
            seq: 977,
            assignment: ChannelAssignment::bonded(Channel20(6)).unwrap(),
            n_clients: 5,
            sent_at_s: 1234.5,
        };
        let frame = serialize_announcement(&ann, [9; 6]);
        assert_eq!(parse_announcement(&frame), Ok(ann));
        // Beacon parser refuses it and vice versa (typed, no panic).
        assert_eq!(parse_beacon(&frame), Err(WireError::NotABeacon));
        let beacon_frame = serialize_beacon(&beacon(1, false), [1; 6], 0).unwrap();
        assert_eq!(
            parse_announcement(&beacon_frame),
            Err(WireError::NotAnAnnouncement)
        );
        // A flipped bit is detected.
        let mut bad = frame.clone();
        bad[MAC_HEADER + 7] ^= 0x01;
        assert_eq!(parse_announcement(&bad), Err(WireError::BadFcs));
        // Truncations are typed errors.
        for cut in [0, 3, MAC_HEADER, frame.len() - 1] {
            assert!(parse_announcement(&frame[..cut]).is_err());
        }
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn too_many_clients_is_a_serialize_error() {
        let b = beacon(MAX_CLIENTS + 1, false);
        assert_eq!(
            serialize_beacon(&b, [0; 6], 0),
            Err(WireError::TooManyClients(MAX_CLIENTS + 1))
        );
        // And the maximum itself fits.
        assert!(serialize_beacon(&beacon(MAX_CLIENTS, false), [0; 6], 0).is_ok());
    }

    #[test]
    fn other_ies_before_ours_are_skipped() {
        let b = beacon(1, false);
        let mut frame = serialize_beacon(&b, [3; 6], 1).unwrap();
        // Splice an SSID IE (id 0) in front of the vendor IE.
        let ssid: &[u8] = &[0u8, 4, b't', b'e', b's', b't'];
        let mut spliced = frame[..HEADER].to_vec();
        spliced.extend_from_slice(ssid);
        spliced.extend_from_slice(&frame[HEADER..]);
        frame = spliced;
        refresh_fcs(&mut frame);
        let parsed = parse_beacon(&frame).unwrap();
        assert_eq!(parsed.ap, b.ap);
    }

    #[test]
    fn random_bytes_never_panic() {
        // Cheap robustness sweep (the proptest suite goes further).
        let mut x = 0x12345u64;
        for len in 0..200 {
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x as u8
                })
                .collect();
            let _ = parse_beacon(&bytes);
        }
    }
}
