//! # acorn-core — the ACORN auto-configuration framework
//!
//! The paper's primary contribution: joint user association and
//! channel-bonding-aware channel allocation for enterprise 802.11n WLANs
//! ("Auto-configuration of 802.11n WLANs", CoNEXT 2010).
//!
//! * [`beacon`] — the modified beacon payload (`K_i`, per-client delays,
//!   `ATD_i`, `M_i`) ACORN APs broadcast.
//! * [`association`] — **Algorithm 1**: network-aware user association via
//!   the Eq. 4 utility (plus a selfish baseline for ablations).
//! * [`allocation`] — **Algorithm 2**: iterative max-rank greedy colouring
//!   over basic (20 MHz) and composite (40 MHz) colours with the ε = 1.05
//!   stopping rule.
//! * [`model`] — the throughput model both algorithms optimize: the §4.2
//!   estimator feeding the performance-anomaly airtime model under
//!   `M = 1/(|con|+1)` contention.
//! * [`theory`] — `Y*`, the NP-completeness argument, and the O(1/(Δ+1))
//!   worst-case approximation bound.
//! * [`controller`] — the live controller: beacons, arrival-driven
//!   association, periodic re-allocation (T = 30 min), and the
//!   opportunistic 20-MHz fallback for mobility.
//! * [`scanning`] — the §4.2 per-channel scanning extension.
//! * [`iapp`] — the IEEE 802.11F-style Inter-AP Protocol substrate for
//!   distributed neighbour/contender discovery.
//! * [`wire`] — the 802.11 wire format of the modified beacon (management
//!   frame + vendor IE), with defensive parsing.
//! * [`csa`] — 802.11h-style channel-switch announcements so re-allocation
//!   epochs deploy without stranding clients.
//! * [`tracker`] — driver-style per-client SNR/association bookkeeping
//!   (EWMA smoothing, outlier rejection, staleness) per §5.1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod association;
pub mod beacon;
pub mod controller;
pub mod csa;
pub mod error;
pub mod iapp;
pub mod model;
pub mod par;
pub mod scanning;
pub mod theory;
pub mod tracker;
pub mod wire;

pub use allocation::{
    allocate, allocate_from_random, allocate_from_random_obs, allocate_obs,
    allocate_shard_slice_obs, allocate_sharded_with_restarts, allocate_sharded_with_restarts_obs,
    allocate_with_restarts, allocate_with_restarts_obs, random_initial, AllocationConfig,
    AllocationResult,
};
pub use association::{
    choose_ap, choose_ap_obs, choose_ap_selfish, choose_ap_selfish_obs, screen_score, utility,
    Candidate,
};
pub use beacon::Beacon;
pub use controller::{AcornConfig, AcornController, NetworkState};
pub use csa::{switch_plans, ApCsa, ClientCsa, CsaAction, SwitchPlan};
pub use error::ControlError;
pub use model::{ClientSnr, ModelStats, ModelStatsSnapshot, NetworkModel, ThroughputModel};
pub use theory::{approximation_ratio, worst_case_bound_bps, y_star_bps};
pub use tracker::{ClientTracker, TrackerConfig};
pub use wire::{
    crc32, parse_announcement, parse_beacon, refresh_fcs, serialize_announcement, serialize_beacon,
    WireError,
};
