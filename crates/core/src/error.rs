//! Typed error taxonomy for controller inputs.
//!
//! The control plane ingests data that crossed a radio: beacons parsed
//! off the wire, IAPP caches built from lossy announcements, SNR reports
//! from client drivers. None of that is trusted, so malformed inputs must
//! surface as *recoverable* faults — a [`ControlError`] the caller can
//! count, log, and route around — never as a process abort. This module
//! replaces the `assert!`/`unwrap` edges that used to guard
//! [`switch_plans`](crate::csa::switch_plans), the
//! [`TrackerConfig`](crate::tracker::TrackerConfig) validation, the CSA
//! countdown, and the model setters.

use crate::wire::WireError;

/// A recoverable control-plane fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlError {
    /// Two assignment vectors that must describe the same deployment have
    /// different lengths (e.g. a CSA diff between epochs of different
    /// topologies).
    AssignmentLengthMismatch {
        /// Length of the old assignment vector.
        old: usize,
        /// Length of the new assignment vector.
        new: usize,
    },
    /// The interference graph and the per-AP cell list disagree on the
    /// number of APs.
    CellCountMismatch {
        /// APs in the interference graph.
        graph: usize,
        /// Cells supplied.
        cells: usize,
    },
    /// A CSA countdown of zero beacons would switch without ever
    /// announcing — clients could never follow.
    ZeroCsaCountdown,
    /// Tracker EWMA weight outside `(0, 1]`.
    BadTrackerAlpha(f64),
    /// Tracker outlier window of zero samples.
    EmptyTrackerWindow,
    /// A tracker threshold (outlier gate or staleness horizon) that is
    /// not a finite, positive number.
    BadTrackerThreshold(&'static str),
    /// A measurement (SNR report) that is NaN or infinite.
    NonFiniteMeasurement(f64),
    /// A frame failed wire-level validation.
    Wire(WireError),
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::AssignmentLengthMismatch { old, new } => {
                write!(f, "assignment vectors must align: {old} vs {new} APs")
            }
            ControlError::CellCountMismatch { graph, cells } => {
                write!(f, "one cell per AP: graph has {graph}, got {cells} cells")
            }
            ControlError::ZeroCsaCountdown => {
                write!(f, "CSA countdown must be at least 1 beacon")
            }
            ControlError::BadTrackerAlpha(a) => {
                write!(f, "tracker alpha {a} outside (0, 1]")
            }
            ControlError::EmptyTrackerWindow => {
                write!(f, "tracker outlier window must hold at least 1 sample")
            }
            ControlError::BadTrackerThreshold(which) => {
                write!(f, "tracker {which} must be finite and positive")
            }
            ControlError::NonFiniteMeasurement(x) => {
                write!(f, "non-finite measurement {x}")
            }
            ControlError::Wire(e) => write!(f, "wire: {e}"),
        }
    }
}

impl std::error::Error for ControlError {}

impl From<WireError> for ControlError {
    fn from(e: WireError) -> ControlError {
        ControlError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ControlError::AssignmentLengthMismatch { old: 3, new: 2 };
        assert!(e.to_string().contains("3 vs 2"));
        let w: ControlError = WireError::Truncated.into();
        assert!(w.to_string().contains("truncated"));
    }
}
