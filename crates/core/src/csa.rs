//! Channel-switch orchestration (802.11h-style CSA).
//!
//! Algorithm 2 outputs a new assignment `F`; deploying it must not strand
//! associated clients. 802.11 solves this with the Channel Switch
//! Announcement: the AP advertises (target channel, countdown) in its
//! beacons for a few intervals, clients arm themselves, and everyone hops
//! together when the countdown reaches zero. This module implements that
//! machinery for ACORN's re-allocation epochs:
//!
//! * [`switch_plans`] — diffs old vs new assignments into per-AP plans
//!   (unchanged APs produce none).
//! * [`ApCsa`] — the AP-side countdown state machine, ticked once per
//!   beacon interval.
//! * [`ClientCsa`] — the client-side follower: arms on the first heard
//!   announcement, tolerates missed beacons by tracking the absolute
//!   switch epoch, and reports the channel to retune to. If its AP goes
//!   silent mid-countdown (crash, deep fade), the client does **not**
//!   blindly follow a possibly-dead switch: [`ClientCsa::check_orphan`]
//!   times the silence out and tells the caller to re-scan.

use crate::error::ControlError;
use acorn_topology::{ApId, ChannelAssignment};

/// One AP's pending channel switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchPlan {
    /// The AP that will switch.
    pub ap: ApId,
    /// Assignment being vacated.
    pub from: ChannelAssignment,
    /// Assignment being adopted.
    pub to: ChannelAssignment,
}

/// Diffs two full assignments into the switches that must be announced.
///
/// Mismatched vector lengths are a recoverable
/// [`ControlError::AssignmentLengthMismatch`] — between epochs the
/// controller may be fed state from before/after a topology change, and
/// that must not abort the control loop.
pub fn switch_plans(
    old: &[ChannelAssignment],
    new: &[ChannelAssignment],
) -> Result<Vec<SwitchPlan>, ControlError> {
    if old.len() != new.len() {
        return Err(ControlError::AssignmentLengthMismatch {
            old: old.len(),
            new: new.len(),
        });
    }
    Ok(old
        .iter()
        .zip(new.iter())
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .map(|(i, (a, b))| SwitchPlan {
            ap: ApId(i),
            from: *a,
            to: *b,
        })
        .collect())
}

/// What an AP does at a beacon interval while a switch is pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsaAction {
    /// No switch pending.
    Idle,
    /// Keep operating on the old channel; announce (target, remaining).
    Announce {
        /// The assignment being switched to.
        to: ChannelAssignment,
        /// Beacons left before the switch (≥ 1).
        remaining: u8,
    },
    /// Countdown expired: retune to the target now.
    SwitchNow(ChannelAssignment),
}

/// AP-side CSA state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApCsa {
    pending: Option<(ChannelAssignment, u8)>,
}

impl ApCsa {
    /// Schedules a switch `countdown_beacons` intervals ahead. A zero
    /// countdown would switch without ever announcing, so it is rejected
    /// as [`ControlError::ZeroCsaCountdown`] with no state change.
    pub fn schedule(
        &mut self,
        to: ChannelAssignment,
        countdown_beacons: u8,
    ) -> Result<(), ControlError> {
        if countdown_beacons == 0 {
            return Err(ControlError::ZeroCsaCountdown);
        }
        self.pending = Some((to, countdown_beacons));
        Ok(())
    }

    /// Whether a switch is pending.
    pub fn is_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Advances one beacon interval; returns what to do this interval.
    pub fn tick(&mut self) -> CsaAction {
        match self.pending {
            None => CsaAction::Idle,
            Some((to, remaining)) => {
                if remaining == 0 {
                    self.pending = None;
                    CsaAction::SwitchNow(to)
                } else {
                    self.pending = Some((to, remaining - 1));
                    CsaAction::Announce { to, remaining }
                }
            }
        }
    }
}

/// Client-side CSA follower. The client tracks the *absolute* switch
/// epoch (in beacon counts) so missing intermediate announcements is
/// harmless — the 802.11h design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientCsa {
    armed: Option<(ChannelAssignment, u64)>, // (target, switch epoch)
    last_heard: u64,                         // beacon epoch of the last heard beacon
}

impl ClientCsa {
    /// Records that *any* beacon from the client's AP was heard at epoch
    /// `now` — the liveness signal [`ClientCsa::check_orphan`] times out.
    pub fn note_heard(&mut self, now: u64) {
        self.last_heard = self.last_heard.max(now);
    }

    /// Processes a heard announcement at beacon epoch `now`. Later
    /// announcements for the same switch refresh/correct the epoch.
    pub fn on_announcement(&mut self, to: ChannelAssignment, remaining: u8, now: u64) {
        self.armed = Some((to, now + remaining as u64));
        self.note_heard(now);
    }

    /// Orphan detection: if the client is armed for a switch but has not
    /// heard its AP for more than `miss_limit` beacon epochs, the AP
    /// likely died mid-countdown. The client disarms (it must NOT follow
    /// the dead switch) and the caller should deassociate and re-scan.
    /// Returns `true` exactly when that timeout fires.
    pub fn check_orphan(&mut self, now: u64, miss_limit: u64) -> bool {
        if self.armed.is_some() && now.saturating_sub(self.last_heard) > miss_limit {
            self.armed = None;
            return true;
        }
        false
    }

    /// Called every beacon epoch (whether or not a beacon was heard).
    /// Returns the assignment to retune to when the switch epoch arrives.
    pub fn poll(&mut self, now: u64) -> Option<ChannelAssignment> {
        match self.armed {
            Some((to, epoch)) if now >= epoch => {
                self.armed = None;
                Some(to)
            }
            _ => None,
        }
    }

    /// Whether the client is armed for a switch.
    pub fn is_armed(&self) -> bool {
        self.armed.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorn_topology::Channel20;

    fn single(c: u8) -> ChannelAssignment {
        ChannelAssignment::Single(Channel20(c))
    }

    fn bonded(c: u8) -> ChannelAssignment {
        ChannelAssignment::bonded(Channel20(c)).unwrap()
    }

    #[test]
    fn diff_only_reports_changes() {
        let old = vec![single(0), bonded(2), single(5)];
        let new = vec![single(0), single(2), bonded(6)];
        let plans = switch_plans(&old, &new).unwrap();
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].ap, ApId(1));
        assert_eq!(plans[0].to, single(2));
        assert_eq!(plans[1].ap, ApId(2));
        assert_eq!(plans[1].from, single(5));
        assert!(switch_plans(&old, &old).unwrap().is_empty());
    }

    #[test]
    fn ap_countdown_sequence() {
        let mut ap = ApCsa::default();
        assert_eq!(ap.tick(), CsaAction::Idle);
        ap.schedule(bonded(4), 3).unwrap();
        assert_eq!(
            ap.tick(),
            CsaAction::Announce {
                to: bonded(4),
                remaining: 3
            }
        );
        assert_eq!(
            ap.tick(),
            CsaAction::Announce {
                to: bonded(4),
                remaining: 2
            }
        );
        assert_eq!(
            ap.tick(),
            CsaAction::Announce {
                to: bonded(4),
                remaining: 1
            }
        );
        assert_eq!(ap.tick(), CsaAction::SwitchNow(bonded(4)));
        assert_eq!(ap.tick(), CsaAction::Idle);
        assert!(!ap.is_pending());
    }

    #[test]
    fn client_follows_even_with_missed_beacons() {
        let mut ap = ApCsa::default();
        let mut client = ClientCsa::default();
        ap.schedule(single(7), 3).unwrap();
        // Client hears only the FIRST announcement (epoch 0, remaining 3),
        // then misses everything.
        if let CsaAction::Announce { to, remaining } = ap.tick() {
            client.on_announcement(to, remaining, 0);
        } else {
            panic!("expected announce");
        }
        assert!(client.is_armed());
        assert_eq!(client.poll(1), None);
        assert_eq!(client.poll(2), None);
        // AP switches after its countdown (epochs 1, 2 announce; 3 switch).
        ap.tick();
        ap.tick();
        assert_eq!(ap.tick(), CsaAction::SwitchNow(single(7)));
        // Client's absolute epoch 0+3 = 3: it hops in the same interval.
        assert_eq!(client.poll(3), Some(single(7)));
        assert!(!client.is_armed());
    }

    #[test]
    fn late_announcements_refresh_the_epoch() {
        let mut client = ClientCsa::default();
        client.on_announcement(single(2), 5, 0); // epoch 5
        client.on_announcement(single(2), 1, 6); // corrected: epoch 7
        assert_eq!(client.poll(5), None);
        assert_eq!(client.poll(7), Some(single(2)));
    }

    #[test]
    fn whole_network_hops_in_lockstep() {
        // Orchestrate a re-allocation across 3 APs and their clients and
        // verify everyone lands on the new plan at the same epoch.
        let old = vec![single(0), single(0), bonded(2)];
        let new = vec![bonded(0), single(4), bonded(2)];
        let plans = switch_plans(&old, &new).unwrap();
        let countdown = 4u8;
        let mut aps: Vec<ApCsa> = vec![ApCsa::default(); 3];
        for p in &plans {
            aps[p.ap.0].schedule(p.to, countdown).unwrap();
        }
        let mut clients: Vec<ClientCsa> = vec![ClientCsa::default(); 3];
        let mut current = old.clone();
        for epoch in 0..=u64::from(countdown) {
            for i in 0..3 {
                match aps[i].tick() {
                    CsaAction::Announce { to, remaining } => {
                        clients[i].on_announcement(to, remaining, epoch);
                    }
                    CsaAction::SwitchNow(to) => current[i] = to,
                    CsaAction::Idle => {}
                }
                if let Some(to) = clients[i].poll(epoch) {
                    assert_eq!(to, new[i], "client {i} must follow its AP");
                }
            }
        }
        assert_eq!(current, new);
    }

    #[test]
    fn zero_countdown_is_a_typed_error() {
        let mut ap = ApCsa::default();
        assert_eq!(
            ap.schedule(single(0), 0),
            Err(crate::error::ControlError::ZeroCsaCountdown)
        );
        assert!(!ap.is_pending(), "rejected schedule must not arm the AP");
        assert_eq!(ap.tick(), CsaAction::Idle);
    }

    #[test]
    fn mismatched_diff_is_a_typed_error() {
        assert_eq!(
            switch_plans(&[single(0)], &[]),
            Err(crate::error::ControlError::AssignmentLengthMismatch { old: 1, new: 0 })
        );
    }

    #[test]
    fn orphaned_client_disarms_and_requests_rescan() {
        // The AP dies mid-countdown: the client must NOT follow the dead
        // switch, and must time out to a re-scan.
        let mut ap = ApCsa::default();
        let mut client = ClientCsa::default();
        ap.schedule(single(7), 5).unwrap();
        if let CsaAction::Announce { to, remaining } = ap.tick() {
            client.on_announcement(to, remaining, 0);
        }
        assert!(client.is_armed());
        // Silence for 3 epochs with miss_limit 2: orphan fires once.
        assert!(!client.check_orphan(1, 2), "within the miss budget");
        assert!(!client.check_orphan(2, 2), "still within");
        assert!(client.check_orphan(3, 2), "limit exceeded: orphan");
        assert!(!client.is_armed(), "must disarm, not follow a dead switch");
        assert_eq!(client.poll(5), None, "the dead switch never fires");
        assert!(!client.check_orphan(4, 2), "orphan reported exactly once");
    }

    #[test]
    fn heard_beacons_keep_the_countdown_alive() {
        let mut client = ClientCsa::default();
        client.on_announcement(single(3), 4, 0);
        // Beacons keep arriving (without CSA IEs heard): no orphan.
        for epoch in 1..=3 {
            client.note_heard(epoch);
            assert!(!client.check_orphan(epoch, 2));
        }
        assert_eq!(client.poll(4), Some(single(3)), "switch proceeds");
    }
}
