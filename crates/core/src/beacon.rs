//! The modified beacon ACORN APs broadcast (§4.1, §5.1).
//!
//! "This beacon includes the number of clients associated with the AP
//! (including u) K_i, the transmission delays per client d_cl, the
//! aggregate transmission delay ATD_i of the AP and the channel access
//! time M_i of the AP (if there is fully saturated traffic and no
//! contention M_i = 1)."
//!
//! In the paper this structure rides in 802.11 beacon frames emitted by a
//! Click user-level utility; here it is the message type the simulated
//! APs hand to prospective clients.

use acorn_mac::airtime::CellAirtime;
use acorn_topology::{ApId, ChannelAssignment};

/// The ACORN beacon payload for one AP.
#[derive(Debug, Clone, PartialEq)]
pub struct Beacon {
    /// The advertising AP.
    pub ap: ApId,
    /// The AP's current channel assignment (so clients can measure/
    /// calibrate SNR at the right width).
    pub assignment: ChannelAssignment,
    /// Number of associated clients, `K_i`.
    pub n_clients: usize,
    /// Per-client delivery delays `d_cl` in seconds (one per associated
    /// client, order private to the AP).
    pub client_delays_s: Vec<f64>,
    /// Aggregate transmission delay `ATD_i = Σ d_cl` (seconds).
    pub atd_s: f64,
    /// Channel-access share `M_i ∈ (0, 1]`.
    pub access_share: f64,
}

impl Beacon {
    /// Builds a beacon from a cell's airtime accounting and access share.
    pub fn from_airtime(
        ap: ApId,
        assignment: ChannelAssignment,
        airtime: &CellAirtime,
        access_share: f64,
    ) -> Beacon {
        Beacon {
            ap,
            assignment,
            n_clients: airtime.n_clients(),
            client_delays_s: airtime.delays_s.clone(),
            atd_s: airtime.atd_s(),
            access_share,
        }
    }

    /// Internal consistency check: ATD must equal the delay sum and the
    /// share must be a valid probability. Used by debug assertions and
    /// property tests.
    pub fn is_consistent(&self) -> bool {
        let sum: f64 = self.client_delays_s.iter().sum();
        let atd_ok = if sum.is_finite() {
            (self.atd_s - sum).abs() <= 1e-9 * sum.max(1.0)
        } else {
            !self.atd_s.is_finite()
        };
        atd_ok
            && self.client_delays_s.len() == self.n_clients
            && self.access_share > 0.0
            && self.access_share <= 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorn_mac::airtime::ClientLink;
    use acorn_topology::Channel20;

    fn beacon() -> Beacon {
        let airtime = CellAirtime::new(
            &[
                ClientLink {
                    rate_bps: 65e6,
                    per: 0.05,
                },
                ClientLink {
                    rate_bps: 13e6,
                    per: 0.2,
                },
            ],
            1500,
        );
        Beacon::from_airtime(
            ApId(3),
            ChannelAssignment::Single(Channel20(2)),
            &airtime,
            0.5,
        )
    }

    #[test]
    fn beacon_reflects_airtime() {
        let b = beacon();
        assert_eq!(b.n_clients, 2);
        assert_eq!(b.client_delays_s.len(), 2);
        assert!((b.atd_s - b.client_delays_s.iter().sum::<f64>()).abs() < 1e-12);
        assert!(b.is_consistent());
    }

    #[test]
    fn inconsistent_beacons_detected() {
        let mut b = beacon();
        b.atd_s *= 2.0;
        assert!(!b.is_consistent());
        let mut b2 = beacon();
        b2.access_share = 0.0;
        assert!(!b2.is_consistent());
        let mut b3 = beacon();
        b3.n_clients = 5;
        assert!(!b3.is_consistent());
    }

    #[test]
    fn saturated_uncontended_ap_advertises_full_share() {
        // "if there is fully saturated traffic and no contention M_i = 1".
        let airtime = CellAirtime::new(
            &[ClientLink {
                rate_bps: 65e6,
                per: 0.0,
            }],
            1500,
        );
        let b = Beacon::from_airtime(
            ApId(0),
            ChannelAssignment::Single(Channel20(0)),
            &airtime,
            1.0,
        );
        assert_eq!(b.access_share, 1.0);
        assert!(b.is_consistent());
    }

    #[test]
    fn dead_link_beacon_is_still_consistent() {
        let airtime = CellAirtime::new(
            &[ClientLink {
                rate_bps: 6.5e6,
                per: 1.0,
            }],
            1500,
        );
        let b = Beacon::from_airtime(
            ApId(0),
            ChannelAssignment::Single(Channel20(0)),
            &airtime,
            1.0,
        );
        assert!(b.atd_s.is_infinite());
        assert!(b.is_consistent());
    }
}
