//! The theoretical backbone of §4.2: the Y* upper bound, the NP-
//! completeness argument, and the O(1/(Δ+1)) worst-case approximation
//! ratio.
//!
//! **NP-completeness (paper's argument, recorded here).** The aggregate
//! throughput is upper-bounded by `Y* = Σ_i X_i^{isol}`, each AP's best
//! isolated throughput. A solution `F'` attains `Y' = Y*` iff every AP is
//! free of conflicts on its preferred colour, i.e. iff the interference
//! graph admits a proper k-colouring with the available colours — so
//! deciding whether the throughput-maximal assignment reaches `Y*` decides
//! graph k-colourability, which is NP-complete. (Membership in NP: a
//! claimed assignment's `Y` is computable in polynomial time.)
//!
//! **Worst case of Algorithm 2.** The worst local optimum has every AP on
//! the *same* colour (conflicting-but-different colours always yield
//! strictly more throughput). Then each AP keeps `1/(deg_i + 1)` of its
//! isolated throughput, so
//!
//! ```text
//! Y_worst = Σ_i X_i^{isol}/(deg_i + 1) ≥ Y*/(Δ + 1)
//! ```
//!
//! giving the O(1/(Δ+1)) ratio. [`worst_case_bound_bps`] computes the
//! bound and [`approximation_ratio`] measures where a concrete run landed
//! (Fig. 14 shows practice is far better).

use crate::model::NetworkModel;
use acorn_topology::ApId;

/// `Y* = Σ_i max(X_i^{isol-20}, X_i^{isol-40})` — the interference-free
/// upper bound on aggregate throughput (bits/s).
pub fn y_star_bps(model: &NetworkModel) -> f64 {
    (0..model.graph.len())
        .map(|i| model.isolated_best_bps(ApId(i)))
        .sum()
}

/// The degree-aware worst-case throughput of Algorithm 2:
/// `Σ_i X_i^{isol}/(deg_i + 1)`.
pub fn worst_case_bps(model: &NetworkModel) -> f64 {
    (0..model.graph.len())
        .map(|i| model.isolated_best_bps(ApId(i)) / (model.graph.degree(ApId(i)) as f64 + 1.0))
        .sum()
}

/// The coarser Δ-based bound the paper quotes: `Y*/(Δ+1)` (bits/s).
pub fn worst_case_bound_bps(model: &NetworkModel) -> f64 {
    y_star_bps(model) / (model.graph.max_degree() as f64 + 1.0)
}

/// Empirical approximation ratio `Y/Y*` of a concrete outcome.
pub fn approximation_ratio(achieved_bps: f64, y_star_bps: f64) -> f64 {
    if y_star_bps <= 0.0 {
        1.0
    } else {
        achieved_bps / y_star_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::{allocate_from_random, AllocationConfig};
    use crate::model::{ClientSnr, NetworkModel, ThroughputModel};
    use acorn_topology::{ChannelPlan, InterferenceGraph};

    fn model(snrs_per_ap: &[&[f64]], graph: InterferenceGraph) -> NetworkModel {
        let cells = snrs_per_ap
            .iter()
            .map(|snrs| {
                snrs.iter()
                    .enumerate()
                    .map(|(i, &s)| ClientSnr {
                        client: i,
                        snr20_db: s,
                    })
                    .collect()
            })
            .collect();
        NetworkModel::new(graph, cells)
    }

    #[test]
    fn y_star_sums_isolated_bests() {
        let m = model(&[&[30.0], &[3.0]], InterferenceGraph::complete(2));
        let y = y_star_bps(&m);
        let manual = m.isolated_best_bps(ApId(0)) + m.isolated_best_bps(ApId(1));
        assert!((y - manual).abs() < 1e-6);
    }

    #[test]
    fn bounds_are_ordered() {
        // worst_case_bound ≤ degree-aware worst case ≤ Y*.
        let g = InterferenceGraph::from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
        let m = model(&[&[25.0], &[20.0], &[15.0], &[10.0]], g);
        let ystar = y_star_bps(&m);
        let worst = worst_case_bps(&m);
        let bound = worst_case_bound_bps(&m);
        assert!(bound <= worst + 1e-9, "bound {bound} worst {worst}");
        assert!(worst <= ystar + 1e-9);
        // Δ = 3 here.
        assert!((bound - ystar / 4.0).abs() < 1e-9);
    }

    #[test]
    fn algorithm2_beats_its_worst_case_bound() {
        // The paper's headline (Fig. 14): in practice the greedy lands
        // well above Y*/(Δ+1).
        let m = model(&[&[28.0], &[10.0], &[4.0]], InterferenceGraph::complete(3));
        for n_channels in [2u8, 4, 6] {
            let plan = ChannelPlan::restricted(n_channels);
            let r = allocate_from_random(&m, &plan, &AllocationConfig::default(), 5);
            let bound = worst_case_bound_bps(&m);
            assert!(
                r.total_bps + 1e-9 >= bound,
                "{n_channels} channels: {:.3e} < bound {:.3e}",
                r.total_bps,
                bound
            );
        }
    }

    #[test]
    fn six_channels_reach_y_star_for_three_aps() {
        // Fig. 14: "In the case of 6 channels, ACORN can achieve Y*, since
        // channel allocation isolates every AP and configures the best
        // channel width for each AP."
        let m = model(&[&[28.0], &[10.0], &[4.0]], InterferenceGraph::complete(3));
        let plan = ChannelPlan::restricted(6);
        let cfg = AllocationConfig {
            epsilon: 1.0,
            max_rounds: 64,
        };
        let r = allocate_from_random(&m, &plan, &cfg, 5);
        let ratio = approximation_ratio(r.total_bps, y_star_bps(&m));
        assert!(ratio > 0.999, "ratio {ratio}");
    }

    #[test]
    fn two_channels_land_near_y_star_over_three() {
        // Fig. 14: "With 2 channels ... the aggregate network throughput
        // is Y*/3, since the medium access is shared among the contending
        // APs" (loose: Y* is an upper bound, and mixed widths shift it).
        let m = model(&[&[28.0], &[26.0], &[27.0]], InterferenceGraph::complete(3));
        let plan = ChannelPlan::restricted(2);
        let r = allocate_from_random(&m, &plan, &AllocationConfig::default(), 5);
        let ratio = approximation_ratio(r.total_bps, y_star_bps(&m));
        assert!(ratio >= 1.0 / 3.0 - 1e-9, "ratio {ratio}");
        assert!(
            ratio < 0.75,
            "with 2 channels full isolation of 3 APs is impossible: {ratio}"
        );
    }

    #[test]
    fn ratio_edge_cases() {
        assert_eq!(approximation_ratio(5.0, 0.0), 1.0);
        assert_eq!(approximation_ratio(5.0, 10.0), 0.5);
    }

    #[test]
    fn empty_network_bounds_are_zero() {
        let m = model(&[], InterferenceGraph::new(0));
        assert_eq!(y_star_bps(&m), 0.0);
        assert_eq!(worst_case_bps(&m), 0.0);
        let _ = m.total_bps(&[]);
    }
}
