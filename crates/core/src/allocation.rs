//! Algorithm 2 — ACORN's channel-bonding selection / channel allocation.
//!
//! The problem (§4.2): assign each AP a basic colour (20 MHz channel) or a
//! composite colour (bonded 40 MHz channel) to maximize aggregate network
//! throughput `Y = Σ_i X_i(F)` (Eq. 5). The decision version is
//! NP-complete (reduction from graph k-colouring — see
//! [`crate::theory`]), so ACORN runs an iterative greedy:
//!
//! 1. Every AP that has not yet switched in this round evaluates every
//!    colour, assuming all other APs keep their current colours, and
//!    computes its `rank` — the aggregate-throughput gain of its best
//!    switch.
//! 2. The max-rank AP (the "winner") switches; it is removed from the
//!    round's eligible set.
//! 3. Repeat within the round until no eligible AP has a positive rank;
//!    repeat rounds until the improvement falls below the ε = 1.05
//!    stopping rule ("if there is a 5 % or less increase in the total
//!    aggregate throughput as compared to the previous iteration, the
//!    algorithm stops").
//!
//! This mimics gradient descent on the throughput landscape; its
//! worst-case approximation ratio is O(1/(Δ+1)) ([`crate::theory`]), but
//! §5.2 shows it does far better in practice.
//!
//! ## Evaluation engine
//!
//! Candidate scoring uses [`ThroughputModel::best_switch`] — on
//! [`NetworkModel`](crate::model::NetworkModel) the whole colour scan
//! costs O(Δ) because a switch only perturbs the AP and its neighbours,
//! not a full-network recompute per colour — and fans the per-AP ranking
//! out over [`crate::par::par_map`]. Restarts parallelize across seeds
//! the same way. Both reductions are order-stable, so results are
//! bit-identical for every thread count (`ACORN_THREADS=1` included).

use crate::model::{NetworkModel, ThroughputModel};
use crate::par;
use acorn_obs::{names, NullSink, Sink};
use acorn_topology::{ApId, ChannelAssignment, ChannelPlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocationConfig {
    /// Stopping rule: continue rounds only while
    /// `Y_new > epsilon · Y_old`. The paper uses ε = 1.05.
    pub epsilon: f64,
    /// Hard cap on rounds (safety; the paper's algorithm converges long
    /// before this).
    pub max_rounds: usize,
}

impl Default for AllocationConfig {
    fn default() -> Self {
        AllocationConfig {
            epsilon: 1.05,
            max_rounds: 32,
        }
    }
}

/// Output of one allocation run.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationResult {
    /// The final channel assignment `F`.
    pub assignments: Vec<ChannelAssignment>,
    /// Aggregate predicted throughput of the final assignment (bits/s).
    pub total_bps: f64,
    /// Number of single-AP evaluation iterations performed (the paper's
    /// `k` counter).
    pub iterations: usize,
    /// Number of actual channel switches.
    pub switches: usize,
    /// Aggregate throughput after each switch (for convergence plots).
    pub history_bps: Vec<f64>,
}

/// Draws the random initial assignment of Algorithm 2: "Initially, all
/// APs are assigned either a 20 MHz or a 40 MHz channel at random."
pub fn random_initial(plan: &ChannelPlan, n_aps: usize, seed: u64) -> Vec<ChannelAssignment> {
    let mut rng = StdRng::seed_from_u64(seed);
    let all = plan.all_assignments();
    (0..n_aps)
        .map(|_| all[rng.gen_range(0..all.len())])
        .collect()
}

/// Runs Algorithm 2 from a given initial assignment.
pub fn allocate<M: ThroughputModel + Sync>(
    model: &M,
    plan: &ChannelPlan,
    initial: Vec<ChannelAssignment>,
    config: &AllocationConfig,
) -> AllocationResult {
    allocate_obs(model, plan, initial, config, &NullSink)
}

/// [`allocate`] reporting into a metric sink: `alloc.runs`,
/// `alloc.rounds`, `alloc.iterations`, and `alloc.switches` counters,
/// emitted once per run as commutative adds — safe to share one sink
/// across the restart fan-out.
pub fn allocate_obs<M: ThroughputModel + Sync, S: Sink>(
    model: &M,
    plan: &ChannelPlan,
    initial: Vec<ChannelAssignment>,
    config: &AllocationConfig,
    sink: &S,
) -> AllocationResult {
    let n = model.n_aps();
    assert_eq!(initial.len(), n, "one initial assignment per AP");
    for a in &initial {
        assert!(plan.contains(*a), "initial assignment {a:?} outside plan");
    }
    let colours = plan.all_assignments();
    let mut assignments = initial;
    let mut y = model.total_bps(&assignments);
    let mut iterations = 0usize;
    let mut switches = 0usize;
    let mut rounds = 0usize;
    let mut history = vec![y];

    for _round in 0..config.max_rounds {
        rounds += 1;
        let y_round_start = y;
        let mut eligible: Vec<bool> = vec![true; n];
        // Inner loop: repeatedly let the max-rank eligible AP switch.
        loop {
            let candidates: Vec<usize> = (0..n).filter(|&i| eligible[i]).collect();
            if candidates.is_empty() {
                break;
            }
            iterations += candidates.len();
            // Rank every eligible AP: the gain of its best colour with
            // everyone else frozen (line 10). Each AP's scan is
            // independent given the frozen assignment, so the scans fan
            // out; the fold below runs in candidate order, keeping the
            // winner identical to the sequential pass.
            let ranked: Vec<(ChannelAssignment, f64)> = par::par_map(&candidates, |&i| {
                model.best_switch(ApId(i), &colours, &assignments)
            });
            let mut best: Option<(usize, ChannelAssignment, f64)> = None;
            for (&i, &(c, rank)) in candidates.iter().zip(&ranked) {
                match best {
                    Some((_, _, r)) if r >= rank => {}
                    _ => best = Some((i, c, rank)),
                }
            }
            match best {
                // "winner" switches if it improves the objective.
                Some((winner, c_star, rank)) if rank > 0.0 => {
                    if assignments[winner] != c_star {
                        switches += 1;
                    }
                    assignments[winner] = c_star;
                    eligible[winner] = false;
                    y += rank;
                    history.push(y);
                }
                _ => break, // no eligible AP can improve
            }
        }
        // ε stopping rule across rounds.
        if y <= config.epsilon * y_round_start {
            break;
        }
    }

    if sink.enabled() {
        sink.inc(names::ALLOC_RUNS);
        sink.add(names::ALLOC_ROUNDS, rounds as u64);
        sink.add(names::ALLOC_ITERATIONS, iterations as u64);
        sink.add(names::ALLOC_SWITCHES, switches as u64);
    }

    // Re-anchor the headline number with one full evaluation so that
    // accumulated delta rounding cannot drift it; `history_bps` keeps the
    // exact per-switch gains.
    let total_bps = model.total_bps(&assignments);
    AllocationResult {
        total_bps,
        assignments,
        iterations,
        switches,
        history_bps: history,
    }
}

/// Convenience: random initialization + allocation.
pub fn allocate_from_random<M: ThroughputModel + Sync>(
    model: &M,
    plan: &ChannelPlan,
    config: &AllocationConfig,
    seed: u64,
) -> AllocationResult {
    allocate_from_random_obs(model, plan, config, seed, &NullSink)
}

/// [`allocate_from_random`] reporting into a metric sink.
pub fn allocate_from_random_obs<M: ThroughputModel + Sync, S: Sink>(
    model: &M,
    plan: &ChannelPlan,
    config: &AllocationConfig,
    seed: u64,
    sink: &S,
) -> AllocationResult {
    let initial = random_initial(plan, model.n_aps(), seed);
    allocate_obs(model, plan, initial, config, sink)
}

/// Multi-restart allocation: runs Algorithm 2 from `restarts` random
/// initial assignments and keeps the best outcome. A standard hedge for
/// gradient-style local search — the greedy has an O(1/(Δ+1)) worst case
/// precisely because single runs can stall in local optima (e.g. a bond
/// parked on the wrong AP with no improving unilateral move).
pub fn allocate_with_restarts<M: ThroughputModel + Sync>(
    model: &M,
    plan: &ChannelPlan,
    config: &AllocationConfig,
    restarts: usize,
    seed: u64,
) -> AllocationResult {
    allocate_with_restarts_obs(model, plan, config, restarts, seed, &NullSink)
}

/// [`allocate_with_restarts`] reporting into a metric sink shared across
/// the restart fan-out (hence `S: Sync`). Each restart emits its own
/// per-run counters plus one `alloc.restarts` increment; all of them are
/// commutative adds, so the recorded totals are identical at any
/// `ACORN_THREADS`.
pub fn allocate_with_restarts_obs<M: ThroughputModel + Sync, S: Sink + Sync>(
    model: &M,
    plan: &ChannelPlan,
    config: &AllocationConfig,
    restarts: usize,
    seed: u64,
    sink: &S,
) -> AllocationResult {
    // Restarts are fully independent (each derives its own seed from its
    // index), so they fan out; the max-fold runs in seed order with last
    // max winning on exact ties, matching the sequential `max_by`.
    // `restarts = 0` degrades to a single run rather than aborting —
    // allocation totals are finite by construction, so the fold is
    // NaN-free and needs no fallible comparator.
    par::par_map_n(restarts, |i| {
        if sink.enabled() {
            sink.inc(names::ALLOC_RESTARTS);
        }
        allocate_from_random_obs(model, plan, config, seed.wrapping_add(i as u64), sink)
    })
    .into_iter()
    .reduce(|best, r| {
        if r.total_bps >= best.total_bps {
            r
        } else {
            best
        }
    })
    .unwrap_or_else(|| allocate_from_random_obs(model, plan, config, seed, sink))
}

/// One shard's slice of [`allocate_sharded_with_restarts_obs`]: the
/// current-start attempt plus that shard's restart hedge, folded under
/// the exact same tie rules (later random attempt wins exact ties among
/// the hedge; the hedge replaces the current-start winner only on a
/// strict improvement) and the exact same seed schedule
/// (`seed + shard_index·restarts + attempt - 1`).
///
/// This is the distributed control plane's zone-view entry point: a zone
/// controller that holds only its own component's submodel
/// ([`NetworkModel::restrict`](crate::model::NetworkModel::restrict))
/// and knows its index in the canonical component ordering reproduces
/// the centralized sharded allocator's decision for that component
/// bit-for-bit — the golden-twin property the benign distributed path is
/// gated on. On a single-component graph, `shard_index = 0` makes the
/// schedule coincide with the centralized single-shard fast path.
pub fn allocate_shard_slice_obs<M: ThroughputModel + Sync, S: Sink + Sync>(
    sub: &M,
    plan: &ChannelPlan,
    init: Vec<ChannelAssignment>,
    config: &AllocationConfig,
    restarts: usize,
    seed: u64,
    shard_index: usize,
    sink: &S,
) -> AllocationResult {
    let per_shard = restarts + 1;
    let attempts: Vec<AllocationResult> = par::par_map_n(per_shard, |k| {
        if k == 0 {
            allocate_obs(sub, plan, init.clone(), config, sink)
        } else {
            if sink.enabled() {
                sink.inc(names::ALLOC_RESTARTS);
            }
            let attempt_seed = seed.wrapping_add((shard_index * restarts + k - 1) as u64);
            allocate_from_random_obs(sub, plan, config, attempt_seed, sink)
        }
    });
    let mut attempts = attempts.into_iter();
    let best = attempts
        .next()
        .unwrap_or_else(|| allocate_obs(sub, plan, init, config, sink));
    let hedged = attempts.reduce(|b, r| if r.total_bps >= b.total_bps { r } else { b });
    match hedged {
        Some(h) if h.total_bps > best.total_bps => h,
        _ => best,
    }
}

/// Sharded Algorithm 2: decompose the conflict graph into connected
/// components and solve each independently — a current-assignment run
/// plus a `restarts`-way random hedge per shard — merging the per-shard
/// winners into one assignment.
///
/// Correctness rests on the objective being separable across components:
/// an AP's access share depends only on its graph neighbours, so
/// `Y = Σ_shards Y_shard` and no switch inside one shard can change
/// another shard's throughput. Each shard keeping its own better of
/// (current-start, hedge) can therefore only improve on hedging the
/// whole network with a single winner.
///
/// Determinism: components come ordered by smallest vertex, the
/// `(shard, attempt)` tasks fan out through the order-stable
/// [`par::par_map_n`], restart seeds are a pure function of the shard and
/// attempt indices, and every fold runs sequentially in task order — the
/// merged result is bit-identical at any `ACORN_THREADS`. On a connected
/// graph this degrades to exactly the current-start + restart-hedge
/// composition on the full model (same seeds, same tie rules).
pub fn allocate_sharded_with_restarts(
    model: &NetworkModel,
    plan: &ChannelPlan,
    initial: Vec<ChannelAssignment>,
    config: &AllocationConfig,
    restarts: usize,
    seed: u64,
) -> AllocationResult {
    allocate_sharded_with_restarts_obs(model, plan, initial, config, restarts, seed, &NullSink)
}

/// [`allocate_sharded_with_restarts`] reporting into a metric sink: the
/// per-run `alloc.*` counters of every attempt, one `alloc.restarts`
/// increment per random attempt, and `alloc.shards` += the component
/// count. All adds commute, so totals are thread-count invariant.
pub fn allocate_sharded_with_restarts_obs<S: Sink + Sync>(
    model: &NetworkModel,
    plan: &ChannelPlan,
    initial: Vec<ChannelAssignment>,
    config: &AllocationConfig,
    restarts: usize,
    seed: u64,
    sink: &S,
) -> AllocationResult {
    let n = model.n_aps();
    assert_eq!(initial.len(), n, "one initial assignment per AP");
    let components = model.graph.connected_components();
    if sink.enabled() {
        sink.add(names::ALLOC_SHARDS, components.len().max(1) as u64);
    }

    // Pick the better of a current-start run and the restart hedge; the
    // current assignment wins exact ties (strict `>`), matching the
    // controller's historical composition.
    let pick = |best: AllocationResult, hedged: Option<AllocationResult>| match hedged {
        Some(h) if h.total_bps > best.total_bps => h,
        _ => best,
    };

    if components.len() <= 1 {
        // Connected (or empty) graph: run on the full model directly so
        // the result is exactly the unsharded composition.
        let attempts: Vec<AllocationResult> = par::par_map_n(restarts + 1, |k| {
            if k == 0 {
                allocate_obs(model, plan, initial.clone(), config, sink)
            } else {
                if sink.enabled() {
                    sink.inc(names::ALLOC_RESTARTS);
                }
                allocate_from_random_obs(model, plan, config, seed.wrapping_add(k as u64 - 1), sink)
            }
        });
        let mut attempts = attempts.into_iter();
        let best = attempts
            .next()
            .unwrap_or_else(|| allocate_obs(model, plan, initial, config, sink));
        let hedged = attempts.reduce(|b, r| if r.total_bps >= b.total_bps { r } else { b });
        return pick(best, hedged);
    }

    // Build the per-shard submodels (cheap: cell-base rows are copied,
    // not re-estimated) and shard-local initial assignments.
    let shards: Vec<(Vec<usize>, NetworkModel, Vec<ChannelAssignment>)> = components
        .into_iter()
        .map(|nodes| {
            let sub = model.restrict(&nodes);
            let init: Vec<ChannelAssignment> = nodes.iter().map(|&i| initial[i]).collect();
            (nodes, sub, init)
        })
        .collect();

    // Fan every (shard, attempt) pair out flat: attempt 0 is the
    // current-start run, attempts 1..=restarts are the random hedge.
    let per_shard = restarts + 1;
    let results: Vec<AllocationResult> = par::par_map_n(shards.len() * per_shard, |t| {
        let (s, k) = (t / per_shard, t % per_shard);
        let (_, sub, init) = &shards[s];
        if k == 0 {
            allocate_obs(sub, plan, init.clone(), config, sink)
        } else {
            if sink.enabled() {
                sink.inc(names::ALLOC_RESTARTS);
            }
            let attempt_seed = seed.wrapping_add((s * restarts + k - 1) as u64);
            allocate_from_random_obs(sub, plan, config, attempt_seed, sink)
        }
    });

    // Deterministic merge in shard order: scatter each shard winner back
    // to global AP indices, sum the work counters, and concatenate the
    // per-shard convergence histories.
    let mut merged = initial;
    let mut iterations = 0usize;
    let mut switches = 0usize;
    let mut history = Vec::new();
    for (s, (nodes, _, _)) in shards.iter().enumerate() {
        let mut chunk = results[s * per_shard..(s + 1) * per_shard].iter().cloned();
        let Some(best) = chunk.next() else {
            continue; // unreachable: every shard ran `per_shard >= 1` attempts
        };
        let hedged = chunk.reduce(|b, r| if r.total_bps >= b.total_bps { r } else { b });
        let winner = pick(best, hedged);
        for (local, &global) in nodes.iter().enumerate() {
            merged[global] = winner.assignments[local];
        }
        iterations += winner.iterations;
        switches += winner.switches;
        history.extend(winner.history_bps);
    }
    // One full evaluation re-anchors the headline number, exactly as the
    // unsharded path does.
    let total_bps = model.total_bps(&merged);
    AllocationResult {
        assignments: merged,
        total_bps,
        iterations,
        switches,
        history_bps: history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ClientSnr, NetworkModel};
    use acorn_topology::{Channel20, InterferenceGraph};

    fn model(snrs_per_ap: &[&[f64]], graph: InterferenceGraph) -> NetworkModel {
        let cells = snrs_per_ap
            .iter()
            .map(|snrs| {
                snrs.iter()
                    .enumerate()
                    .map(|(i, &s)| ClientSnr {
                        client: i,
                        snr20_db: s,
                    })
                    .collect()
            })
            .collect();
        NetworkModel::new(graph, cells)
    }

    fn single(c: u8) -> ChannelAssignment {
        ChannelAssignment::Single(Channel20(c))
    }

    #[test]
    fn never_decreases_throughput() {
        let m = model(
            &[&[30.0, 28.0], &[5.0, 4.0], &[20.0]],
            InterferenceGraph::complete(3),
        );
        let plan = ChannelPlan::restricted(4);
        for seed in 0..10 {
            let initial = random_initial(&plan, 3, seed);
            let y0 = m.total_bps(&initial);
            let r = allocate(&m, &plan, initial, &AllocationConfig::default());
            assert!(r.total_bps + 1e-6 >= y0, "seed {seed}");
            // History is monotone.
            for w in r.history_bps.windows(2) {
                assert!(w[1] + 1e-6 >= w[0]);
            }
        }
    }

    #[test]
    fn isolated_good_cell_gets_bonded() {
        // One AP, strong clients, plenty of channels → it should end up on
        // a 40 MHz channel.
        let m = model(&[&[30.0, 28.0]], InterferenceGraph::new(1));
        let plan = ChannelPlan::full_5ghz();
        let r = allocate(&m, &plan, vec![single(0)], &AllocationConfig::default());
        assert_eq!(
            r.assignments[0].width(),
            acorn_phy::ChannelWidth::Ht40,
            "{:?}",
            r.assignments
        );
    }

    #[test]
    fn isolated_poor_cell_stays_at_20mhz() {
        let m = model(&[&[2.0, 1.0]], InterferenceGraph::new(1));
        let plan = ChannelPlan::full_5ghz();
        let bonded0 = ChannelAssignment::bonded(Channel20(0)).unwrap();
        let r = allocate(&m, &plan, vec![bonded0], &AllocationConfig::default());
        assert_eq!(r.assignments[0].width(), acorn_phy::ChannelWidth::Ht20);
    }

    #[test]
    fn contending_aps_spread_across_channels() {
        // Two mutually interfering strong cells with 4 channels: the
        // optimum is two disjoint bonds; at minimum they must not overlap.
        let m = model(&[&[30.0], &[30.0]], InterferenceGraph::complete(2));
        let plan = ChannelPlan::restricted(4);
        let r = allocate(
            &m,
            &plan,
            vec![single(0), single(0)],
            &AllocationConfig::default(),
        );
        assert!(
            !r.assignments[0].conflicts(r.assignments[1]),
            "{:?}",
            r.assignments
        );
    }

    #[test]
    fn fig11_shape_three_aps_four_channels() {
        // Fig. 11: AP 1 good client, APs 2–3 poor clients, 4 channels —
        // only one AP can bond without overlap, and it should be the good
        // one: widths (40, 20, 20). Single greedy runs can park the bond
        // on a poor AP (a true local optimum: no unilateral move escapes),
        // so run with restarts, as the evaluation harness does.
        let m = model(&[&[28.0], &[0.0], &[0.0]], InterferenceGraph::complete(3));
        let plan = ChannelPlan::restricted(4);
        let r = allocate_with_restarts(&m, &plan, &AllocationConfig::default(), 8, 7);
        use acorn_phy::ChannelWidth::*;
        let widths: Vec<_> = r.assignments.iter().map(|a| a.width()).collect();
        assert_eq!(widths, vec![Ht40, Ht20, Ht20], "{:?}", r.assignments);
        // And nobody overlaps anybody.
        for i in 0..3 {
            for j in i + 1..3 {
                assert!(!r.assignments[i].conflicts(r.assignments[j]));
            }
        }
    }

    #[test]
    fn epsilon_one_runs_to_a_local_optimum() {
        // ε = 1.0 keeps iterating while *any* improvement exists, so the
        // result must be single-switch stable.
        let m = model(&[&[30.0], &[12.0], &[4.0]], InterferenceGraph::complete(3));
        let plan = ChannelPlan::restricted(6);
        let cfg = AllocationConfig {
            epsilon: 1.0,
            max_rounds: 64,
        };
        let r = allocate_from_random(&m, &plan, &cfg, 3);
        // No single AP can improve the total by moving.
        for i in 0..3 {
            let mut alt = r.assignments.clone();
            for c in plan.all_assignments() {
                alt[i] = c;
                assert!(
                    m.total_bps(&alt) <= r.total_bps + 1e-6,
                    "AP {i} could still improve via {c:?}"
                );
            }
            alt[i] = r.assignments[i];
        }
    }

    #[test]
    fn random_initial_is_reproducible_and_legal() {
        let plan = ChannelPlan::restricted(4);
        let a = random_initial(&plan, 10, 99);
        let b = random_initial(&plan, 10, 99);
        assert_eq!(a, b);
        assert!(a.iter().all(|x| plan.contains(*x)));
    }

    #[test]
    #[should_panic(expected = "outside plan")]
    fn illegal_initial_panics() {
        let m = model(&[&[20.0]], InterferenceGraph::new(1));
        let plan = ChannelPlan::restricted(2);
        allocate(&m, &plan, vec![single(7)], &AllocationConfig::default());
    }

    #[test]
    fn obs_counters_match_the_result_and_the_plain_path() {
        use acorn_obs::{names, RecordingSink};
        let m = model(
            &[&[30.0, 28.0], &[5.0, 4.0], &[20.0]],
            InterferenceGraph::complete(3),
        );
        let plan = ChannelPlan::restricted(4);
        let cfg = AllocationConfig::default();
        let sink = RecordingSink::new();
        let r_obs = allocate_with_restarts_obs(&m, &plan, &cfg, 4, 11, &sink);
        let r_plain = allocate_with_restarts(&m, &plan, &cfg, 4, 11);
        assert_eq!(r_obs, r_plain, "instrumentation must not change results");
        sink.with_telemetry(|t| {
            assert_eq!(t.counter(names::ALLOC_RESTARTS), 4);
            assert_eq!(t.counter(names::ALLOC_RUNS), 4);
            assert!(t.counter(names::ALLOC_ROUNDS) >= 4);
            assert!(t.counter(names::ALLOC_ITERATIONS) >= t.counter(names::ALLOC_SWITCHES));
        });
    }

    #[test]
    fn sharded_on_connected_graph_matches_the_unsharded_composition() {
        let m = model(
            &[&[30.0, 28.0], &[5.0, 4.0], &[20.0]],
            InterferenceGraph::complete(3),
        );
        let plan = ChannelPlan::restricted(4);
        let cfg = AllocationConfig::default();
        let initial = random_initial(&plan, 3, 5);
        let sharded = allocate_sharded_with_restarts(&m, &plan, initial.clone(), &cfg, 4, 11);
        let best = allocate(&m, &plan, initial, &cfg);
        let hedged = allocate_with_restarts(&m, &plan, &cfg, 4, 11);
        let expect = if hedged.total_bps > best.total_bps {
            hedged
        } else {
            best
        };
        assert_eq!(sharded.assignments, expect.assignments);
        assert_eq!(sharded.total_bps.to_bits(), expect.total_bps.to_bits());
    }

    #[test]
    fn sharded_multi_component_solves_each_shard_independently() {
        // Two components: a triangle {0,1,2} and an edge {3,4}.
        let g = InterferenceGraph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (3, 4)]);
        let m = model(&[&[30.0], &[5.0, 4.0], &[20.0], &[28.0], &[12.0]], g);
        let plan = ChannelPlan::restricted(4);
        let cfg = AllocationConfig::default();
        let (restarts, seed) = (3usize, 17u64);
        let initial = random_initial(&plan, 5, 2);
        let sharded =
            allocate_sharded_with_restarts(&m, &plan, initial.clone(), &cfg, restarts, seed);

        // Every shard's slice of the merged assignment must equal solving
        // that shard's restricted model directly with the same seeds.
        for (s, nodes) in m.graph.connected_components().iter().enumerate() {
            let sub = m.restrict(nodes);
            let init: Vec<_> = nodes.iter().map(|&i| initial[i]).collect();
            let best = allocate(&sub, &plan, init, &cfg);
            let hedged = allocate_with_restarts(
                &sub,
                &plan,
                &cfg,
                restarts,
                seed.wrapping_add((s * restarts) as u64),
            );
            let expect = if hedged.total_bps > best.total_bps {
                hedged
            } else {
                best
            };
            for (local, &global) in nodes.iter().enumerate() {
                assert_eq!(
                    sharded.assignments[global], expect.assignments[local],
                    "shard {s}, AP {global}"
                );
            }
        }
        // The merged headline number is one full-model evaluation.
        assert_eq!(
            sharded.total_bps.to_bits(),
            m.total_bps(&sharded.assignments).to_bits()
        );
    }

    #[test]
    fn sharded_never_decreases_throughput_and_records_shards() {
        use acorn_obs::RecordingSink;
        let g = InterferenceGraph::from_edges(6, &[(0, 1), (2, 3), (4, 5)]);
        let m = model(&[&[30.0], &[5.0], &[20.0], &[28.0], &[12.0], &[7.0]], g);
        let plan = ChannelPlan::restricted(4);
        let cfg = AllocationConfig::default();
        let initial = random_initial(&plan, 6, 9);
        let y0 = m.total_bps(&initial);
        let sink = RecordingSink::new();
        let r = allocate_sharded_with_restarts_obs(&m, &plan, initial, &cfg, 2, 3, &sink);
        assert!(r.total_bps + 1e-6 >= y0);
        sink.with_telemetry(|t| {
            assert_eq!(t.counter(names::ALLOC_SHARDS), 3);
            assert_eq!(t.counter(names::ALLOC_RESTARTS), 3 * 2);
            assert_eq!(t.counter(names::ALLOC_RUNS), 3 * 3);
        });
    }

    #[test]
    fn iteration_counter_grows_with_network_size() {
        let plan = ChannelPlan::restricted(4);
        let small = model(&[&[20.0]], InterferenceGraph::new(1));
        let large = model(
            &[&[20.0], &[18.0], &[16.0], &[14.0]],
            InterferenceGraph::complete(4),
        );
        let rs = allocate_from_random(&small, &plan, &AllocationConfig::default(), 1);
        let rl = allocate_from_random(&large, &plan, &AllocationConfig::default(), 1);
        assert!(rl.iterations > rs.iterations);
    }
}
