//! Per-client link statistics tracking — the driver-side bookkeeping of
//! §5.1.
//!
//! "We keep track of the SNR, the nominal rate and the association time
//! per client by using dedicated functions implemented in our card's
//! driver." Raw per-frame SNR readings are noisy; the delays ACORN
//! advertises in beacons should reflect the *link*, not the last frame.
//! [`ClientTracker`] provides the standard treatment: EWMA smoothing with
//! median-of-recent outlier rejection, staleness detection, and the
//! association-time clock.

use crate::error::ControlError;
use std::collections::VecDeque;

/// Tracker configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackerConfig {
    /// EWMA weight of a new (accepted) sample, in `(0, 1]`.
    pub alpha: f64,
    /// Samples deviating more than this from the median of the recent
    /// window are rejected as outliers (dB).
    pub outlier_db: f64,
    /// Recent-sample window used for the outlier median.
    pub window: usize,
    /// A link with no samples for this long is stale and should be
    /// re-probed before its estimate is trusted (seconds).
    pub staleness_s: f64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            alpha: 0.2,
            outlier_db: 10.0,
            window: 8,
            staleness_s: 5.0,
        }
    }
}

impl TrackerConfig {
    /// Validates the configuration, returning the first violation as a
    /// typed [`ControlError`].
    pub fn validate(&self) -> Result<(), ControlError> {
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(ControlError::BadTrackerAlpha(self.alpha));
        }
        if self.window < 1 {
            return Err(ControlError::EmptyTrackerWindow);
        }
        if !(self.outlier_db.is_finite() && self.outlier_db > 0.0) {
            return Err(ControlError::BadTrackerThreshold("outlier_db"));
        }
        if !(self.staleness_s.is_finite() && self.staleness_s > 0.0) {
            return Err(ControlError::BadTrackerThreshold("staleness_s"));
        }
        Ok(())
    }
}

/// Smoothed link state for one client.
#[derive(Debug, Clone)]
pub struct ClientTracker {
    config: TrackerConfig,
    associated_at_s: f64,
    ewma_snr_db: Option<f64>,
    recent: VecDeque<f64>,
    last_sample_s: f64,
    samples: u64,
    rejected: u64,
}

impl ClientTracker {
    /// Starts tracking a client that associated at `now_s`. A malformed
    /// configuration is a recoverable [`ControlError`], not an abort —
    /// tracker configs may come from operator input.
    pub fn new(config: TrackerConfig, now_s: f64) -> Result<ClientTracker, ControlError> {
        config.validate()?;
        Ok(ClientTracker {
            config,
            associated_at_s: now_s,
            ewma_snr_db: None,
            recent: VecDeque::with_capacity(config.window),
            last_sample_s: now_s,
            samples: 0,
            rejected: 0,
        })
    }

    /// Feeds one per-frame SNR reading. Returns `Ok(true)` if the sample
    /// was accepted, `Ok(false)` if it was rejected as an outlier, and
    /// `Err(ControlError::NonFiniteMeasurement)` for NaN/±∞ readings — a
    /// faulty driver report must never reach the EWMA or the median sort.
    pub fn observe_snr(&mut self, snr_db: f64, now_s: f64) -> Result<bool, ControlError> {
        if !snr_db.is_finite() {
            return Err(ControlError::NonFiniteMeasurement(snr_db));
        }
        self.samples += 1;
        // Outlier test against the median of the recent window (only once
        // the window has some substance; early samples are all accepted).
        if self.recent.len() >= self.config.window / 2 + 1 {
            let mut sorted: Vec<f64> = self.recent.iter().copied().collect();
            sorted.sort_by(f64::total_cmp);
            let median = sorted[sorted.len() / 2];
            if (snr_db - median).abs() > self.config.outlier_db {
                self.rejected += 1;
                return Ok(false);
            }
        }
        if self.recent.len() == self.config.window {
            self.recent.pop_front();
        }
        self.recent.push_back(snr_db);
        self.ewma_snr_db = Some(match self.ewma_snr_db {
            Some(prev) => prev + self.config.alpha * (snr_db - prev),
            None => snr_db,
        });
        self.last_sample_s = now_s;
        Ok(true)
    }

    /// The smoothed SNR estimate, if any sample was ever accepted.
    pub fn snr_db(&self) -> Option<f64> {
        self.ewma_snr_db
    }

    /// The staleness-gated estimate the *controller boundary* must use: a
    /// link with no fresh samples inside `staleness_s` yields `None`, so
    /// its advertised delay degrades to ∞ (`u32::MAX` on the wire)
    /// instead of a confidently-wrong last EWMA value.
    pub fn fresh_snr_db(&self, now_s: f64) -> Option<f64> {
        if self.is_stale(now_s) {
            None
        } else {
            self.ewma_snr_db
        }
    }

    /// Whether the estimate is stale at `now_s`.
    pub fn is_stale(&self, now_s: f64) -> bool {
        self.ewma_snr_db.is_none() || now_s - self.last_sample_s > self.config.staleness_s
    }

    /// Association duration so far — the quantity Fig. 9's trace records.
    pub fn association_time_s(&self, now_s: f64) -> f64 {
        (now_s - self.associated_at_s).max(0.0)
    }

    /// (accepted, rejected) sample counts.
    pub fn sample_counts(&self) -> (u64, u64) {
        (self.samples - self.rejected, self.rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> ClientTracker {
        ClientTracker::new(TrackerConfig::default(), 100.0).unwrap()
    }

    #[test]
    fn first_sample_seeds_the_ewma() {
        let mut t = tracker();
        assert_eq!(t.snr_db(), None);
        assert!(t.observe_snr(17.0, 100.1).unwrap());
        assert_eq!(t.snr_db(), Some(17.0));
    }

    #[test]
    fn ewma_converges_to_a_level_shift() {
        let mut t = tracker();
        for i in 0..50 {
            t.observe_snr(10.0, 100.0 + i as f64).unwrap();
        }
        assert!((t.snr_db().unwrap() - 10.0).abs() < 1e-6);
        // Gradual 5 dB drop (within the outlier gate) is tracked.
        for i in 0..80 {
            t.observe_snr(5.0, 200.0 + i as f64).unwrap();
        }
        assert!((t.snr_db().unwrap() - 5.0).abs() < 0.05);
    }

    #[test]
    fn spikes_are_rejected_but_persistent_changes_accepted() {
        let mut t = tracker();
        for i in 0..10 {
            t.observe_snr(20.0, 100.0 + i as f64).unwrap();
        }
        // A single 30 dB spike: rejected, estimate unmoved.
        assert!(!t.observe_snr(50.0, 111.0).unwrap());
        assert!((t.snr_db().unwrap() - 20.0).abs() < 0.1);
        let (ok, bad) = t.sample_counts();
        assert_eq!(bad, 1);
        assert_eq!(ok, 10);
    }

    #[test]
    fn smoothing_beats_raw_samples_under_noise() {
        // Deterministic zig-zag noise around 15 dB: the EWMA's error must
        // be far below the raw sample error.
        let mut t = tracker();
        let mut worst_raw: f64 = 0.0;
        for i in 0..200 {
            let noise = if i % 2 == 0 { 4.0 } else { -4.0 };
            let sample = 15.0 + noise;
            worst_raw = worst_raw.max((sample - 15.0f64).abs());
            t.observe_snr(sample, 100.0 + i as f64).unwrap();
        }
        let err = (t.snr_db().unwrap() - 15.0).abs();
        assert!(err < 1.0, "ewma err {err}");
        assert!(worst_raw >= 4.0);
    }

    #[test]
    fn staleness_detection() {
        let mut t = tracker();
        assert!(t.is_stale(100.0), "no samples yet");
        t.observe_snr(12.0, 100.0).unwrap();
        assert!(!t.is_stale(104.0));
        assert!(t.is_stale(106.0));
    }

    #[test]
    fn stale_links_yield_no_fresh_estimate() {
        // The satellite regression: past the staleness horizon the
        // gated accessor must return None (→ ∞ delay on the wire), while
        // the raw EWMA is still available for diagnostics.
        let mut t = tracker();
        t.observe_snr(12.0, 100.0).unwrap();
        assert_eq!(t.fresh_snr_db(104.0), Some(12.0));
        assert_eq!(t.fresh_snr_db(106.0), None, "stale link must gate out");
        assert_eq!(t.snr_db(), Some(12.0), "raw estimate still readable");
        // A fresh sample restores the gated estimate.
        t.observe_snr(13.0, 200.0).unwrap();
        assert!(t.fresh_snr_db(201.0).is_some());
    }

    #[test]
    fn non_finite_measurements_are_typed_errors() {
        let mut t = tracker();
        for i in 0..5 {
            t.observe_snr(20.0, 100.0 + i as f64).unwrap();
        }
        let before = t.snr_db();
        let (ok_before, _) = t.sample_counts();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            match t.observe_snr(bad, 110.0) {
                Err(ControlError::NonFiniteMeasurement(_)) => {}
                other => panic!("expected NonFiniteMeasurement, got {other:?}"),
            }
        }
        assert_eq!(t.snr_db(), before, "estimate unmoved by faulty reports");
        assert_eq!(t.sample_counts().0, ok_before, "counts unmoved");
        // Last *accepted* sample was at t = 104: the faulty reports at
        // t = 110 must not have refreshed liveness.
        assert!(
            t.is_stale(111.0),
            "faulty reports must not refresh liveness"
        );
    }

    #[test]
    fn association_clock() {
        let t = tracker();
        assert_eq!(t.association_time_s(100.0), 0.0);
        assert_eq!(t.association_time_s(1900.0), 1800.0);
    }

    #[test]
    fn bad_configs_are_typed_errors() {
        let bad_alpha = TrackerConfig {
            alpha: 0.0,
            ..TrackerConfig::default()
        };
        assert_eq!(
            ClientTracker::new(bad_alpha, 0.0).err(),
            Some(ControlError::BadTrackerAlpha(0.0))
        );
        let no_window = TrackerConfig {
            window: 0,
            ..TrackerConfig::default()
        };
        assert_eq!(
            ClientTracker::new(no_window, 0.0).err(),
            Some(ControlError::EmptyTrackerWindow)
        );
        let nan_gate = TrackerConfig {
            outlier_db: f64::NAN,
            ..TrackerConfig::default()
        };
        assert_eq!(
            ClientTracker::new(nan_gate, 0.0).err(),
            Some(ControlError::BadTrackerThreshold("outlier_db"))
        );
        assert!(TrackerConfig::default().validate().is_ok());
    }
}
