//! Per-client link statistics tracking — the driver-side bookkeeping of
//! §5.1.
//!
//! "We keep track of the SNR, the nominal rate and the association time
//! per client by using dedicated functions implemented in our card's
//! driver." Raw per-frame SNR readings are noisy; the delays ACORN
//! advertises in beacons should reflect the *link*, not the last frame.
//! [`ClientTracker`] provides the standard treatment: EWMA smoothing with
//! median-of-recent outlier rejection, staleness detection, and the
//! association-time clock.

use std::collections::VecDeque;

/// Tracker configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackerConfig {
    /// EWMA weight of a new (accepted) sample, in `(0, 1]`.
    pub alpha: f64,
    /// Samples deviating more than this from the median of the recent
    /// window are rejected as outliers (dB).
    pub outlier_db: f64,
    /// Recent-sample window used for the outlier median.
    pub window: usize,
    /// A link with no samples for this long is stale and should be
    /// re-probed before its estimate is trusted (seconds).
    pub staleness_s: f64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            alpha: 0.2,
            outlier_db: 10.0,
            window: 8,
            staleness_s: 5.0,
        }
    }
}

/// Smoothed link state for one client.
#[derive(Debug, Clone)]
pub struct ClientTracker {
    config: TrackerConfig,
    associated_at_s: f64,
    ewma_snr_db: Option<f64>,
    recent: VecDeque<f64>,
    last_sample_s: f64,
    samples: u64,
    rejected: u64,
}

impl ClientTracker {
    /// Starts tracking a client that associated at `now_s`.
    pub fn new(config: TrackerConfig, now_s: f64) -> ClientTracker {
        assert!(config.alpha > 0.0 && config.alpha <= 1.0, "alpha in (0,1]");
        assert!(config.window >= 1, "window must be positive");
        ClientTracker {
            config,
            associated_at_s: now_s,
            ewma_snr_db: None,
            recent: VecDeque::with_capacity(config.window),
            last_sample_s: now_s,
            samples: 0,
            rejected: 0,
        }
    }

    /// Feeds one per-frame SNR reading. Returns `true` if the sample was
    /// accepted (not an outlier).
    pub fn observe_snr(&mut self, snr_db: f64, now_s: f64) -> bool {
        self.samples += 1;
        // Outlier test against the median of the recent window (only once
        // the window has some substance; early samples are all accepted).
        if self.recent.len() >= self.config.window / 2 + 1 {
            let mut sorted: Vec<f64> = self.recent.iter().copied().collect();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = sorted[sorted.len() / 2];
            if (snr_db - median).abs() > self.config.outlier_db {
                self.rejected += 1;
                return false;
            }
        }
        if self.recent.len() == self.config.window {
            self.recent.pop_front();
        }
        self.recent.push_back(snr_db);
        self.ewma_snr_db = Some(match self.ewma_snr_db {
            Some(prev) => prev + self.config.alpha * (snr_db - prev),
            None => snr_db,
        });
        self.last_sample_s = now_s;
        true
    }

    /// The smoothed SNR estimate, if any sample was ever accepted.
    pub fn snr_db(&self) -> Option<f64> {
        self.ewma_snr_db
    }

    /// Whether the estimate is stale at `now_s`.
    pub fn is_stale(&self, now_s: f64) -> bool {
        self.ewma_snr_db.is_none() || now_s - self.last_sample_s > self.config.staleness_s
    }

    /// Association duration so far — the quantity Fig. 9's trace records.
    pub fn association_time_s(&self, now_s: f64) -> f64 {
        (now_s - self.associated_at_s).max(0.0)
    }

    /// (accepted, rejected) sample counts.
    pub fn sample_counts(&self) -> (u64, u64) {
        (self.samples - self.rejected, self.rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> ClientTracker {
        ClientTracker::new(TrackerConfig::default(), 100.0)
    }

    #[test]
    fn first_sample_seeds_the_ewma() {
        let mut t = tracker();
        assert_eq!(t.snr_db(), None);
        assert!(t.observe_snr(17.0, 100.1));
        assert_eq!(t.snr_db(), Some(17.0));
    }

    #[test]
    fn ewma_converges_to_a_level_shift() {
        let mut t = tracker();
        for i in 0..50 {
            t.observe_snr(10.0, 100.0 + i as f64);
        }
        assert!((t.snr_db().unwrap() - 10.0).abs() < 1e-6);
        // Gradual 5 dB drop (within the outlier gate) is tracked.
        for i in 0..80 {
            t.observe_snr(5.0, 200.0 + i as f64);
        }
        assert!((t.snr_db().unwrap() - 5.0).abs() < 0.05);
    }

    #[test]
    fn spikes_are_rejected_but_persistent_changes_accepted() {
        let mut t = tracker();
        for i in 0..10 {
            t.observe_snr(20.0, 100.0 + i as f64);
        }
        // A single 30 dB spike: rejected, estimate unmoved.
        assert!(!t.observe_snr(50.0, 111.0));
        assert!((t.snr_db().unwrap() - 20.0).abs() < 0.1);
        let (ok, bad) = t.sample_counts();
        assert_eq!(bad, 1);
        assert_eq!(ok, 10);
    }

    #[test]
    fn smoothing_beats_raw_samples_under_noise() {
        // Deterministic zig-zag noise around 15 dB: the EWMA's error must
        // be far below the raw sample error.
        let mut t = tracker();
        let mut worst_raw: f64 = 0.0;
        for i in 0..200 {
            let noise = if i % 2 == 0 { 4.0 } else { -4.0 };
            let sample = 15.0 + noise;
            worst_raw = worst_raw.max((sample - 15.0f64).abs());
            t.observe_snr(sample, 100.0 + i as f64);
        }
        let err = (t.snr_db().unwrap() - 15.0).abs();
        assert!(err < 1.0, "ewma err {err}");
        assert!(worst_raw >= 4.0);
    }

    #[test]
    fn staleness_detection() {
        let mut t = tracker();
        assert!(t.is_stale(100.0), "no samples yet");
        t.observe_snr(12.0, 100.0);
        assert!(!t.is_stale(104.0));
        assert!(t.is_stale(106.0));
    }

    #[test]
    fn association_clock() {
        let t = tracker();
        assert_eq!(t.association_time_s(100.0), 0.0);
        assert_eq!(t.association_time_s(1900.0), 1800.0);
    }

    #[test]
    #[should_panic(expected = "alpha in (0,1]")]
    fn zero_alpha_panics() {
        ClientTracker::new(
            TrackerConfig {
                alpha: 0.0,
                ..TrackerConfig::default()
            },
            0.0,
        );
    }
}
