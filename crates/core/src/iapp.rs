//! An Inter-Access-Point Protocol (IAPP) substrate.
//!
//! §4.2: to estimate throughput on a candidate channel, an AP "needs to
//! take into account (i) the number of APs already residing on this new
//! channel ... possible either with help from an administrative authority
//! or the Inter Access Point Protocol (IAPP) \[31\]." The rest of the
//! codebase uses the administrative-authority path (the genie interference
//! graph); this module builds the distributed alternative in the spirit of
//! IEEE 802.11F:
//!
//! * APs periodically broadcast [`Announcement`]s (sequence-numbered,
//!   carrying their current channel assignment and load).
//! * Each AP's [`IappAgent`] maintains a neighbour cache with per-entry
//!   expiry and replay protection, learning exactly the `con_a` sets that
//!   the `M_a = 1/(|con_a|+1)` estimate needs.
//! * [`IappBus`] is the radio: it delivers an announcement to every AP
//!   whose received power clears the decode threshold, with optional
//!   loss, using the deployment's real propagation model.
//!
//! The integration test in this module shows the protocol-derived access
//! shares converging to the genie-graph values after one announcement
//! round, and degrading gracefully (never *under*-counting contention
//! into over-optimism for long) under message loss.

use acorn_topology::{ApId, ChannelAssignment, Wlan};
use std::collections::HashMap;

/// One IAPP announcement frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Announcement {
    /// Originating AP.
    pub from: ApId,
    /// Monotonic per-AP sequence number (replay/ordering protection).
    pub seq: u64,
    /// The sender's current channel assignment.
    pub assignment: ChannelAssignment,
    /// The sender's associated-client count (available for future load
    /// balancing; carried but not yet consumed by the allocator).
    pub n_clients: usize,
    /// Send timestamp (seconds).
    pub sent_at_s: f64,
}

/// A cached neighbour record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeighborEntry {
    /// Highest sequence number seen from this neighbour.
    pub last_seq: u64,
    /// The neighbour's advertised assignment.
    pub assignment: ChannelAssignment,
    /// Client count it advertised.
    pub n_clients: usize,
    /// When we last heard it (seconds).
    pub heard_at_s: f64,
    /// Received power of the last announcement (dBm).
    pub rx_power_dbm: f64,
}

/// An expired neighbour in its hold-down window: still counted as a
/// contender (pessimistic), being re-solicited with exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeldEntry {
    entry: NeighborEntry,
    /// Hold-down deadline: past this the neighbour is finally forgotten.
    held_until_s: f64,
    /// Next solicitation due time.
    next_retry_s: f64,
    /// Current backoff interval (doubles per solicitation).
    retry_interval_s: f64,
}

/// Per-AP IAPP state machine.
///
/// Loss resilience: when a cached neighbour expires without being
/// refreshed, it does **not** silently vanish — that would drop
/// `|con_a|`, inflate `M_a = 1/(|con_a|+1)`, and make the allocator
/// *optimistic* exactly when its information is worst. Instead the entry
/// enters a *hold-down* window ([`IappAgent::hold_down_s`]) during which
/// it still counts as a contender while the agent re-solicits the silent
/// neighbour with exponential backoff ([`IappAgent::due_solicits`]). Only
/// after hold-down also lapses (the neighbour is genuinely gone, not just
/// lossy) does the contender count drop.
#[derive(Debug, Clone)]
pub struct IappAgent {
    /// The AP this agent runs on.
    pub ap: ApId,
    /// Entries older than this are pruned (the 802.11F-style cache
    /// lifetime; announcements are expected once per beacon-ish period).
    pub expiry_s: f64,
    /// How long an expired entry stays pessimistically counted while
    /// retries try to re-confirm it. Defaults to one expiry period, so
    /// `M_a` can stay optimistic for at most that long under pure loss.
    pub hold_down_s: f64,
    /// Initial solicitation backoff (doubles per retry).
    pub retry_backoff_s: f64,
    seq: u64,
    neighbors: HashMap<ApId, NeighborEntry>,
    held: HashMap<ApId, HeldEntry>,
}

impl IappAgent {
    /// Creates an agent with a 10-second cache lifetime (and an equal
    /// hold-down window).
    pub fn new(ap: ApId) -> IappAgent {
        IappAgent {
            ap,
            expiry_s: 10.0,
            hold_down_s: 10.0,
            retry_backoff_s: 1.0,
            seq: 0,
            neighbors: HashMap::new(),
            held: HashMap::new(),
        }
    }

    /// Emits the next announcement.
    pub fn announce(
        &mut self,
        assignment: ChannelAssignment,
        n_clients: usize,
        now_s: f64,
    ) -> Announcement {
        self.seq += 1;
        Announcement {
            from: self.ap,
            seq: self.seq,
            assignment,
            n_clients,
            sent_at_s: now_s,
        }
    }

    /// Processes a received announcement. Stale (non-increasing sequence)
    /// frames are dropped; own frames are ignored.
    pub fn handle(&mut self, msg: &Announcement, rx_power_dbm: f64, now_s: f64) {
        if msg.from == self.ap {
            return;
        }
        // Replay protection spans both the active cache and the hold-down
        // shelf: a delayed old frame must not resurrect anything.
        let last_seq = self
            .neighbors
            .get(&msg.from)
            .map(|e| e.last_seq)
            .or_else(|| self.held.get(&msg.from).map(|h| h.entry.last_seq));
        if matches!(last_seq, Some(s) if s >= msg.seq) {
            return; // replay / reorder
        }
        self.held.remove(&msg.from); // fresh word from a silent neighbour
        self.neighbors.insert(
            msg.from,
            NeighborEntry {
                last_seq: msg.seq,
                assignment: msg.assignment,
                n_clients: msg.n_clients,
                heard_at_s: now_s,
                rx_power_dbm,
            },
        );
    }

    /// Ages the cache: entries not refreshed within `expiry_s` move to the
    /// hold-down shelf (still counted as contenders, queued for
    /// re-solicitation); shelf entries past `hold_down_s` are dropped.
    pub fn prune(&mut self, now_s: f64) {
        let expiry = self.expiry_s;
        let hold = self.hold_down_s;
        let backoff = self.retry_backoff_s;
        let mut expired: Vec<(ApId, NeighborEntry)> = Vec::new();
        self.neighbors.retain(|ap, e| {
            if now_s - e.heard_at_s <= expiry {
                true
            } else {
                expired.push((*ap, *e));
                false
            }
        });
        for (ap, entry) in expired {
            self.held.entry(ap).or_insert(HeldEntry {
                entry,
                held_until_s: entry.heard_at_s + expiry + hold,
                next_retry_s: now_s,
                retry_interval_s: backoff,
            });
        }
        self.held.retain(|_, h| now_s <= h.held_until_s);
    }

    /// Neighbours currently in hold-down (sorted by AP id).
    pub fn held_down(&self) -> Vec<ApId> {
        let mut v: Vec<ApId> = self.held.keys().copied().collect();
        v.sort_by_key(|ap| ap.0);
        v
    }

    /// Returns the held-down neighbours whose solicitation timer has
    /// fired, and doubles their backoff. The caller (controller or fault
    /// harness) should unicast a probe / expect an announcement from each;
    /// any reply re-enters the active cache via [`IappAgent::handle`].
    pub fn due_solicits(&mut self, now_s: f64) -> Vec<ApId> {
        let mut due: Vec<ApId> = self
            .held
            .iter()
            .filter(|(_, h)| now_s >= h.next_retry_s)
            .map(|(ap, _)| *ap)
            .collect();
        due.sort_by_key(|ap| ap.0);
        for ap in &due {
            if let Some(h) = self.held.get_mut(ap) {
                h.next_retry_s = now_s + h.retry_interval_s;
                h.retry_interval_s *= 2.0;
            }
        }
        due
    }

    /// Current neighbour cache (sorted by AP id for determinism).
    pub fn neighbors(&self) -> Vec<(ApId, NeighborEntry)> {
        let mut v: Vec<_> = self.neighbors.iter().map(|(k, v)| (*k, *v)).collect();
        v.sort_by_key(|(ap, _)| ap.0);
        v
    }

    /// `|con_a|` as learned from the protocol: cached neighbours whose
    /// advertised assignment spectrally overlaps `my_assignment`. Held-down
    /// (expired-but-unconfirmed) neighbours still count — under loss the
    /// share estimate degrades pessimistically, never optimistically.
    pub fn contender_count(&self, my_assignment: ChannelAssignment) -> usize {
        self.neighbors
            .values()
            .filter(|e| e.assignment.conflicts(my_assignment))
            .count()
            + self
                .held
                .values()
                .filter(|h| h.entry.assignment.conflicts(my_assignment))
                .count()
    }

    /// The protocol-derived channel-access share `M_a = 1/(|con_a|+1)`.
    pub fn access_share(&self, my_assignment: ChannelAssignment) -> f64 {
        1.0 / (self.contender_count(my_assignment) as f64 + 1.0)
    }
}

/// The shared medium for announcements: delivers a frame to every other
/// AP whose received power clears `decode_floor_dbm`, dropping each copy
/// independently with probability `loss`.
#[derive(Debug, Clone)]
pub struct IappBus<'a> {
    /// The deployment providing propagation.
    pub wlan: &'a Wlan,
    /// Minimum receive power to decode an announcement (dBm). Broadcast
    /// management frames ride robust base rates, so this sits well below
    /// the data decode floor; −85 dBm is a sensible default.
    pub decode_floor_dbm: f64,
    /// Independent per-copy loss probability in `[0, 1)`.
    pub loss: f64,
    /// Seed for the (deterministic) loss process.
    pub seed: u64,
}

impl<'a> IappBus<'a> {
    /// Creates a lossless bus with a −85 dBm decode floor.
    pub fn new(wlan: &'a Wlan) -> IappBus<'a> {
        IappBus {
            wlan,
            decode_floor_dbm: -85.0,
            loss: 0.0,
            seed: 0,
        }
    }

    fn drop_roll(&self, from: ApId, to: ApId, seq: u64) -> bool {
        if self.loss <= 0.0 {
            return false;
        }
        let mut x = self.seed
            ^ (from.0 as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)
            ^ (to.0 as u64 + 1).wrapping_mul(0xBF58476D1CE4E5B9)
            ^ seq.wrapping_mul(0x94D049BB133111EB);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51AFD7ED558CCD);
        x ^= x >> 33;
        ((x >> 11) as f64 / (1u64 << 53) as f64) < self.loss
    }

    /// Broadcasts one announcement: every other agent in decode range
    /// (and not hit by loss) handles it.
    pub fn broadcast(&self, msg: &Announcement, agents: &mut [IappAgent], now_s: f64) {
        for agent in agents.iter_mut() {
            if agent.ap == msg.from {
                continue;
            }
            let rx = self.wlan.ap_to_ap_rx_dbm(msg.from, agent.ap);
            if rx < self.decode_floor_dbm || self.drop_roll(msg.from, agent.ap, msg.seq) {
                continue;
            }
            agent.handle(msg, rx, now_s);
        }
    }

    /// One full announcement round: every AP announces its assignment and
    /// load; everyone in range updates their caches.
    pub fn round(
        &self,
        agents: &mut [IappAgent],
        assignments: &[ChannelAssignment],
        client_counts: &[usize],
        now_s: f64,
    ) {
        assert_eq!(agents.len(), assignments.len());
        assert_eq!(agents.len(), client_counts.len());
        let msgs: Vec<Announcement> = agents
            .iter_mut()
            .enumerate()
            .map(|(i, a)| a.announce(assignments[i], client_counts[i], now_s))
            .collect();
        for m in &msgs {
            self.broadcast(m, agents, now_s);
        }
        for a in agents.iter_mut() {
            a.prune(now_s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorn_mac::contention::access_share as genie_access_share;
    use acorn_topology::{Channel20, Point};

    fn wlan_line(n: usize, spacing: f64) -> Wlan {
        let mut w = Wlan::new(
            (0..n)
                .map(|i| Point::new(i as f64 * spacing, 0.0))
                .collect(),
            vec![],
            4,
        );
        w.pathloss.shadowing_sigma_db = 0.0;
        w
    }

    fn single(c: u8) -> ChannelAssignment {
        ChannelAssignment::Single(Channel20(c))
    }

    fn bonded(c: u8) -> ChannelAssignment {
        ChannelAssignment::bonded(Channel20(c)).unwrap()
    }

    #[test]
    fn one_round_matches_the_genie_graph() {
        // Three APs in a line, 50 m apart: with the default CS range the
        // genie graph is a chain. The decode floor reaches further (mgmt
        // frames are robust), so trim it to the same reach for parity.
        let w = wlan_line(3, 50.0);
        let mut agents: Vec<IappAgent> = (0..3).map(|i| IappAgent::new(ApId(i))).collect();
        let assignments = vec![bonded(0), single(0), single(1)];
        // Decode floor = power at exactly the carrier-sense range.
        let cs = w.radio.carrier_sense_range_m;
        let floor = w.radio.tx_power_dbm + w.radio.antenna_gains_dbi - w.pathloss.median_db(cs);
        let bus = IappBus {
            decode_floor_dbm: floor,
            ..IappBus::new(&w)
        };
        bus.round(&mut agents, &assignments, &[2, 1, 1], 0.0);

        let genie = w.ap_only_interference_graph();
        for i in 0..3 {
            let via_iapp = agents[i].access_share(assignments[i]);
            let via_genie = genie_access_share(&genie, &assignments, ApId(i));
            assert!(
                (via_iapp - via_genie).abs() < 1e-12,
                "AP {i}: iapp {via_iapp} vs genie {via_genie}"
            );
        }
    }

    #[test]
    fn out_of_range_aps_never_enter_the_cache() {
        let w = wlan_line(2, 5000.0);
        let mut agents: Vec<IappAgent> = (0..2).map(|i| IappAgent::new(ApId(i))).collect();
        let bus = IappBus::new(&w);
        bus.round(&mut agents, &[single(0), single(0)], &[0, 0], 0.0);
        assert!(agents[0].neighbors().is_empty());
        assert_eq!(agents[0].access_share(single(0)), 1.0);
    }

    #[test]
    fn replayed_frames_are_dropped() {
        let w = wlan_line(2, 30.0);
        let mut a = IappAgent::new(ApId(1));
        let mut b = IappAgent::new(ApId(0));
        let msg1 = b.announce(single(0), 3, 0.0);
        let msg2 = b.announce(bonded(0), 4, 1.0);
        let _ = &w;
        a.handle(&msg2, -60.0, 1.0);
        a.handle(&msg1, -60.0, 2.0); // replay of the older frame
        let entry = a.neighbors()[0].1;
        assert_eq!(entry.last_seq, 2);
        assert_eq!(entry.assignment, bonded(0), "stale frame must not win");
    }

    #[test]
    fn cache_entries_expire() {
        let w = wlan_line(2, 30.0);
        let mut agents: Vec<IappAgent> = (0..2).map(|i| IappAgent::new(ApId(i))).collect();
        let bus = IappBus::new(&w);
        bus.round(&mut agents, &[single(0), single(0)], &[0, 0], 0.0);
        assert_eq!(agents[0].contender_count(single(0)), 1);
        // Silence for longer than the expiry: the neighbour vanishes.
        agents[0].prune(100.0);
        assert_eq!(agents[0].contender_count(single(0)), 0);
        assert_eq!(agents[0].access_share(single(0)), 1.0);
    }

    #[test]
    fn loss_is_deterministic_and_repaired_by_retries() {
        let w = wlan_line(2, 30.0);
        let mk = || (0..2).map(|i| IappAgent::new(ApId(i))).collect::<Vec<_>>();
        let lossy = IappBus {
            loss: 0.9,
            seed: 5,
            ..IappBus::new(&w)
        };
        let mut a1 = mk();
        let mut a2 = mk();
        for t in 0..20 {
            lossy.round(&mut a1, &[single(0), single(0)], &[0, 0], t as f64 * 0.1);
            lossy.round(&mut a2, &[single(0), single(0)], &[0, 0], t as f64 * 0.1);
        }
        // Determinism.
        assert_eq!(a1[0].neighbors(), a2[0].neighbors());
        // Even at 90 % loss, 20 rounds almost surely get one through.
        assert_eq!(a1[0].contender_count(single(0)), 1);
    }

    #[test]
    fn bonded_neighbours_count_against_both_members() {
        let w = wlan_line(2, 30.0);
        let mut agents: Vec<IappAgent> = (0..2).map(|i| IappAgent::new(ApId(i))).collect();
        let bus = IappBus::new(&w);
        bus.round(&mut agents, &[single(0), bonded(0)], &[0, 0], 0.0);
        // AP 0 on channel 0 contends with AP 1's bond {0,1}…
        assert_eq!(agents[0].contender_count(single(0)), 1);
        // …but would not on channel 2.
        assert_eq!(agents[0].contender_count(single(2)), 0);
    }

    #[test]
    fn expired_entries_hold_down_pessimistically() {
        let w = wlan_line(2, 30.0);
        let mut agents: Vec<IappAgent> = (0..2).map(|i| IappAgent::new(ApId(i))).collect();
        let bus = IappBus::new(&w);
        bus.round(&mut agents, &[single(0), single(0)], &[0, 0], 0.0);
        // Past expiry (10 s) but inside hold-down (expiry + 10 s): the
        // silent neighbour leaves the active cache yet still counts, so
        // M_a never turns optimistic on pure loss.
        agents[0].prune(15.0);
        assert!(agents[0].neighbors().is_empty());
        assert_eq!(agents[0].held_down(), vec![ApId(1)]);
        assert_eq!(agents[0].contender_count(single(0)), 1);
        assert_eq!(agents[0].access_share(single(0)), 0.5);
        // Past hold-down the neighbour is genuinely forgotten.
        agents[0].prune(25.0);
        assert!(agents[0].held_down().is_empty());
        assert_eq!(agents[0].access_share(single(0)), 1.0);
    }

    #[test]
    fn solicitations_retry_with_exponential_backoff() {
        let mut a = IappAgent::new(ApId(0));
        a.hold_down_s = 100.0;
        let mut b = IappAgent::new(ApId(1));
        let msg = b.announce(single(0), 0, 0.0);
        a.handle(&msg, -60.0, 0.0);
        a.prune(11.0); // expired → held
        assert_eq!(a.due_solicits(11.0), vec![ApId(1)], "first retry is due");
        assert!(a.due_solicits(11.0).is_empty(), "backoff gates a re-ask");
        assert!(a.due_solicits(11.5).is_empty());
        assert_eq!(a.due_solicits(12.0), vec![ApId(1)], "1 s backoff");
        assert!(a.due_solicits(13.5).is_empty(), "now doubled to 2 s");
        assert_eq!(a.due_solicits(14.0), vec![ApId(1)]);
    }

    #[test]
    fn fresh_announcements_clear_hold_down() {
        let mut a = IappAgent::new(ApId(0));
        let mut b = IappAgent::new(ApId(1));
        let m1 = b.announce(single(0), 0, 0.0);
        let m2 = b.announce(single(1), 0, 12.0);
        a.handle(&m1, -60.0, 0.0);
        a.prune(11.0);
        assert_eq!(a.held_down(), vec![ApId(1)]);
        // A replay of the expired frame must not resurrect the entry...
        a.handle(&m1, -60.0, 11.5);
        assert!(a.neighbors().is_empty());
        // ...but a genuinely fresh one restores it to the active cache.
        a.handle(&m2, -60.0, 12.0);
        assert!(a.held_down().is_empty());
        assert_eq!(a.neighbors()[0].1.assignment, single(1));
    }

    #[test]
    fn sequence_numbers_are_monotonic() {
        let mut a = IappAgent::new(ApId(0));
        let s1 = a.announce(single(0), 0, 0.0).seq;
        let s2 = a.announce(single(0), 0, 1.0).seq;
        assert!(s2 > s1);
    }
}
