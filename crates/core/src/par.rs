//! Order-stable parallel map on std scoped threads.
//!
//! The evaluation engine's one concurrency primitive: [`par_map`] (and
//! its index-driven sibling [`par_map_n`]) fans work items out over a
//! pool of `std::thread::scope` workers and returns results **in item
//! order**, so every reduction downstream is identical to the sequential
//! fold — parallelism never changes an answer, only how fast it arrives.
//! Work is claimed from an atomic counter (no pre-chunking), results flow
//! back through a channel tagged with their index, and panics in workers
//! propagate to the caller via scope join.
//!
//! Thread count comes from `std::thread::available_parallelism`, capped
//! by the `ACORN_THREADS` env var (read per call, so tests can flip it at
//! runtime). Nested calls run sequentially on the calling worker — outer
//! parallelism (e.g. restarts) already owns the cores, and keeping the
//! nesting flat means the result is the same whichever level fans out.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

thread_local! {
    /// True on threads that are themselves `par_map` workers.
    static IN_PAR_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The maximum worker count: `available_parallelism`, overridden by the
/// `ACORN_THREADS` env var (values < 1 or unparsable are ignored).
pub fn max_threads() -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    match std::env::var("ACORN_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or(hw),
        Err(_) => hw,
    }
}

/// Maps `f` over `items` in parallel, returning results in item order.
///
/// Equivalent to `items.iter().map(f).collect()` — bit-identical
/// results, any thread count (including 1).
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_n(items.len(), |i| f(&items[i]))
}

/// Maps `f` over `0..n` in parallel, returning results in index order.
///
/// Equivalent to `(0..n).map(f).collect()` — bit-identical results, any
/// thread count. `f` gets the item index, which doubles as the stable
/// per-work-item seed derivation point for randomized workloads.
pub fn par_map_n<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = max_threads().min(n);
    if threads <= 1 || IN_PAR_WORKER.with(|w| w.get()) {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, U)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || {
                IN_PAR_WORKER.with(|w| w.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // The receiver outlives the scope; a send can only
                    // fail if the main thread is already unwinding.
                    let _ = tx.send((i, f(i)));
                }
            });
        }
        drop(tx);
    });

    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for (i, v) in rx {
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * x).collect();
        let par: Vec<u64> = par_map(&items, |&x| x * x);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = par_map_n(0, |i| i as u32);
        assert!(empty.is_empty());
        assert_eq!(par_map_n(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn nested_calls_fall_back_to_sequential() {
        // Inner calls run on the worker thread; results stay identical.
        let out = par_map_n(8, |i| par_map_n(8, move |j| i * 8 + j));
        for (i, row) in out.iter().enumerate() {
            assert_eq!(*row, (i * 8..i * 8 + 8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn float_sums_are_bit_identical_to_sequential() {
        let xs: Vec<f64> = (0..4096).map(|i| (i as f64).sin() * 1e7).collect();
        let seq: f64 = xs.iter().map(|x| x.sqrt().abs().ln_1p()).sum();
        let par: f64 = par_map(&xs, |x| x.sqrt().abs().ln_1p()).into_iter().sum();
        assert_eq!(seq.to_bits(), par.to_bits());
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let _ = par_map_n(64, |i| {
            if i == 33 {
                panic!("worker boom");
            }
            i
        });
    }
}
