//! Per-channel scanning — the extension §4.2 sketches.
//!
//! ACORN's base design assumes "the quality of a link does not exhibit
//! significant variations ... on different channels of the same width"
//! (validated in Fig. 8). The paper adds: "ACORN can easily be modified,
//! such that each AP scans (one at a time) all the available channels and
//! gets more accurate information regarding the link quality to its
//! clients. However, this would add more complexity and increase the
//! convergence time of the system."
//!
//! This module implements that modification:
//!
//! * [`ChannelSounding`] — the per-channel measurement source: each
//!   (AP, client, channel) triple gets an SNR deviation from the link's
//!   wideband reference.
//! * [`ScanningModel`] — a [`ThroughputModel`] that evaluates every
//!   candidate assignment at the *scanned* per-channel qualities (bonded
//!   channels average their two members' deviations), so Algorithm 2 can
//!   steer around frequency-selective notches.
//! * [`scan_overhead_s`] — the convergence-time cost the paper warns
//!   about, so deployments can weigh accuracy against downtime.

use crate::model::{NetworkModel, ThroughputModel};
use acorn_mac::airtime::{CellAirtime, ClientLink};
use acorn_mac::contention::access_share;
use acorn_topology::{ApId, Channel20, ChannelAssignment};

/// A source of per-channel link-quality deviations.
pub trait ChannelSounding {
    /// SNR deviation (dB) of link (ap, client) on a specific 20 MHz
    /// channel, relative to the link's wideband (channel-agnostic) SNR.
    fn offset_db(&self, ap: usize, client: usize, channel: Channel20) -> f64;
}

/// No per-channel structure: every channel behaves like the wideband
/// reference (the Fig. 8 regime). [`ScanningModel`] over this sounding is
/// exactly the base [`NetworkModel`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FlatSounding;

impl ChannelSounding for FlatSounding {
    fn offset_db(&self, _ap: usize, _client: usize, _channel: Channel20) -> f64 {
        0.0
    }
}

/// Deterministic per-(link, channel) deviations: zero-mean, `sigma_db`
/// spread, frozen by a hash — a stand-in for real scan measurements on a
/// mildly frequency-selective plant.
#[derive(Debug, Clone, Copy)]
pub struct HashSounding {
    /// Standard deviation of the per-channel deviation (dB).
    pub sigma_db: f64,
    /// Seed mixed into the hash.
    pub seed: u64,
}

impl ChannelSounding for HashSounding {
    fn offset_db(&self, ap: usize, client: usize, channel: Channel20) -> f64 {
        let mut x = self.seed
            ^ (ap as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)
            ^ (client as u64 + 1).wrapping_mul(0xBF58476D1CE4E5B9)
            ^ (channel.0 as u64 + 1).wrapping_mul(0x94D049BB133111EB);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58476D1CE4E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D049BB133111EB);
        x ^= x >> 31;
        // Two uniforms → one standard normal (Box–Muller, cos branch).
        let u1 = ((x >> 11) as f64 / (1u64 << 53) as f64).max(1e-18);
        let u2 = (x & 0xFFFF_FFFF) as f64 / 4_294_967_296.0;
        let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        g * self.sigma_db
    }
}

/// A throughput model that folds scan measurements into the prediction.
///
/// Like [`NetworkModel`], memoizes the `M = 1` cell throughput — here per
/// (AP, concrete assignment), since with scanning the quality depends on
/// *which* channels are occupied, not just the width. The cache can't be
/// precomputed densely (the key space is every concrete assignment), so
/// it stays lazy behind a `Mutex` — keeping the model `Sync` for the
/// parallel evaluation engine.
#[derive(Debug)]
pub struct ScanningModel<S: ChannelSounding> {
    /// The base (wideband) model: graph, cells, estimator.
    pub base: NetworkModel,
    /// The scan measurements.
    pub sounding: S,
    cell_cache: std::sync::Mutex<std::collections::HashMap<(usize, ChannelAssignment), f64>>,
}

impl<S: ChannelSounding> ScanningModel<S> {
    /// Creates a scanning model over a base model and a sounding source.
    pub fn new(base: NetworkModel, sounding: S) -> ScanningModel<S> {
        ScanningModel {
            base,
            sounding,
            cell_cache: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }
}

impl<S: ChannelSounding> ScanningModel<S> {
    /// Effective SNR deviation of a link under an assignment: the mean of
    /// the occupied channels' deviations (a bonded channel spans both).
    pub fn assignment_offset_db(&self, ap: usize, client: usize, a: ChannelAssignment) -> f64 {
        let occupied: Vec<Channel20> = a.occupied().collect();
        occupied
            .iter()
            .map(|&c| self.sounding.offset_db(ap, client, c))
            .sum::<f64>()
            / occupied.len() as f64
    }
}

impl<S: ChannelSounding> ThroughputModel for ScanningModel<S> {
    fn n_aps(&self) -> usize {
        self.base.graph.len()
    }

    fn ap_throughput_bps(&self, ap: ApId, assignments: &[ChannelAssignment]) -> f64 {
        let a = assignments[ap.0];
        let m = access_share(&self.base.graph, assignments, ap);
        // A panicked holder cannot corrupt this cache (values are written
        // atomically under the lock), so a poisoned mutex is recoverable:
        // take the inner guard rather than propagating the poison panic.
        if let Some(v) = self
            .cell_cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&(ap.0, a))
        {
            return m * v;
        }
        let width = a.width();
        let est = self.base.estimator();
        let links: Vec<ClientLink> = self.base.cells()[ap.0]
            .iter()
            .map(|c| {
                let snr = c.snr20_db + self.assignment_offset_db(ap.0, c.client, a);
                let e = est.estimate(snr, acorn_phy::ChannelWidth::Ht20);
                let p = e.rate_point(width);
                ClientLink {
                    rate_bps: p.mcs.mcs().rate_bps(width, est.gi),
                    per: p.per,
                }
            })
            .collect();
        let base = CellAirtime::new(&links, self.base.payload_bytes()).cell_throughput_bps(1.0);
        self.cell_cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert((ap.0, a), base);
        m * base
    }
}

/// The scan-time cost the paper warns about: each AP dwells
/// `dwell_s` on each of `n_channels` channels, one AP at a time (so
/// clients keep service from neighbours during each AP's scan).
pub fn scan_overhead_s(n_aps: usize, n_channels: usize, dwell_s: f64) -> f64 {
    n_aps as f64 * n_channels as f64 * dwell_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::{allocate_with_restarts, AllocationConfig};
    use crate::model::ClientSnr;
    use acorn_topology::{ChannelPlan, InterferenceGraph};

    fn base(snrs: &[f64]) -> NetworkModel {
        let cells = snrs
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                vec![ClientSnr {
                    client: i,
                    snr20_db: s,
                }]
            })
            .collect();
        NetworkModel::new(InterferenceGraph::complete(snrs.len()), cells)
    }

    #[test]
    fn flat_sounding_equals_base_model() {
        let m = base(&[25.0, 8.0]);
        let s = ScanningModel::new(m.clone(), FlatSounding);
        let plan = ChannelPlan::restricted(4);
        for a in [
            vec![
                ChannelAssignment::Single(Channel20(0)),
                ChannelAssignment::Single(Channel20(1)),
            ],
            vec![
                ChannelAssignment::bonded(Channel20(0)).unwrap(),
                ChannelAssignment::Single(Channel20(2)),
            ],
        ] {
            assert!((m.total_bps(&a) - s.total_bps(&a)).abs() < 1e-6, "{a:?}");
            assert!(a.iter().all(|x| plan.contains(*x)));
        }
    }

    #[test]
    fn hash_sounding_is_deterministic_and_zero_mean() {
        let s = HashSounding {
            sigma_db: 2.0,
            seed: 9,
        };
        assert_eq!(
            s.offset_db(1, 2, Channel20(3)),
            s.offset_db(1, 2, Channel20(3))
        );
        assert_ne!(
            s.offset_db(1, 2, Channel20(3)),
            s.offset_db(1, 2, Channel20(4))
        );
        let mean: f64 = (0..2000)
            .map(|i| s.offset_db(i, i * 7, Channel20((i % 12) as u8)))
            .sum::<f64>()
            / 2000.0;
        assert!(mean.abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn bonded_offset_is_the_member_mean() {
        let s = ScanningModel::new(
            base(&[20.0]),
            HashSounding {
                sigma_db: 3.0,
                seed: 1,
            },
        );
        let bond = ChannelAssignment::bonded(Channel20(2)).unwrap();
        let manual = (s.sounding.offset_db(0, 0, Channel20(2))
            + s.sounding.offset_db(0, 0, Channel20(3)))
            / 2.0;
        assert!((s.assignment_offset_db(0, 0, bond) - manual).abs() < 1e-12);
    }

    #[test]
    fn scanning_allocator_never_loses_under_the_scanned_truth() {
        // Plan with the wideband model vs with the scanning model, both
        // scored at the scanned truth: scan-aware planning must win or
        // tie (it optimizes the true objective).
        let cfg = AllocationConfig::default();
        let plan = ChannelPlan::full_5ghz();
        for seed in 0..5 {
            // Mid-SNR links so per-channel ±2.5 dB actually moves MCS/PER.
            let m = base(&[15.0 + seed as f64, 9.0, 12.0]);
            let truth = ScanningModel::new(
                m.clone(),
                HashSounding {
                    sigma_db: 2.5,
                    seed,
                },
            );
            let blind = allocate_with_restarts(&m, &plan, &cfg, 6, seed);
            let aware = allocate_with_restarts(&truth, &plan, &cfg, 6, seed);
            let y_blind = truth.total_bps(&blind.assignments);
            let y_aware = truth.total_bps(&aware.assignments);
            assert!(
                y_aware + 1e-6 >= y_blind,
                "seed {seed}: aware {y_aware:.4e} < blind {y_blind:.4e}"
            );
        }
    }

    #[test]
    fn scan_overhead_grows_as_the_paper_warns() {
        // 12 channels × 50 ms dwell × 9 APs ≈ 5.4 s of scanning.
        let t = scan_overhead_s(9, 12, 0.05);
        assert!((t - 5.4).abs() < 1e-9);
        assert!(scan_overhead_s(18, 12, 0.05) > t);
    }
}
