//! The network throughput model ACORN's algorithms optimize over.
//!
//! Algorithm 2 repeatedly asks: *if AP `i` moved to channel `c` while
//! everyone else stayed put, what would the aggregate network throughput
//! be?* (line 10 of the pseudocode). Answering that requires exactly two
//! ingredients, both from the paper:
//!
//! 1. the AP's channel-access share `M_a = 1/(|con_a|+1)` given the
//!    interference graph and the hypothetical assignment (§5.1), and
//! 2. each client's goodput at the hypothetical width, predicted by the
//!    §4.2 estimator (SNR ± 3 dB calibration → coded BER → PER), fed into
//!    the performance-anomaly airtime model (§4.1).
//!
//! [`NetworkModel`] packages those ingredients behind the
//! [`ThroughputModel`] trait so the allocation algorithm (and the
//! baselines) stay independent of how throughputs are predicted.

use crate::error::ControlError;
use acorn_mac::airtime::{CellAirtime, ClientLink};
use acorn_mac::contention::{access_share, access_share_with};
use acorn_obs::{names, Sink};
use acorn_phy::estimator::LinkQualityEstimator;
use acorn_phy::{ChannelWidth, GoodputTable};
use acorn_topology::{ApId, ChannelAssignment, InterferenceGraph};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Evaluation counters a [`NetworkModel`] maintains about itself:
/// throughput-table rebuilds, O(Δ) delta evaluations, and hoisted
/// colour scans. Kept as relaxed atomics so the instrumented model
/// stays `Sync` and the counts stay exact under the parallel evaluation
/// engine — relaxed `u64` adds commute, so totals are invariant to the
/// thread count and never perturb the determinism contract.
#[derive(Debug, Default)]
pub struct ModelStats {
    rebuilds: AtomicU64,
    delta_evals: AtomicU64,
    best_switch_scans: AtomicU64,
}

/// A point-in-time copy of [`ModelStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModelStatsSnapshot {
    /// Full `cell_base_bps` table rebuilds.
    pub rebuilds: u64,
    /// Colour-candidate evaluations served from the cached table (one
    /// per `delta_bps` call or per colour in a hoisted scan).
    pub delta_evals: u64,
    /// Hoisted `best_switch` scans.
    pub best_switch_scans: u64,
}

impl ModelStats {
    fn add_rebuild(&self) {
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    fn add_delta_evals(&self, n: u64) {
        self.delta_evals.fetch_add(n, Ordering::Relaxed);
    }

    fn add_best_switch_scan(&self) {
        self.best_switch_scans.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads the current counter values.
    pub fn snapshot(&self) -> ModelStatsSnapshot {
        ModelStatsSnapshot {
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            delta_evals: self.delta_evals.load(Ordering::Relaxed),
            best_switch_scans: self.best_switch_scans.load(Ordering::Relaxed),
        }
    }

    /// Reads and zeroes the counters (for periodic flushes into a sink).
    pub fn take(&self) -> ModelStatsSnapshot {
        ModelStatsSnapshot {
            rebuilds: self.rebuilds.swap(0, Ordering::Relaxed),
            delta_evals: self.delta_evals.swap(0, Ordering::Relaxed),
            best_switch_scans: self.best_switch_scans.swap(0, Ordering::Relaxed),
        }
    }

    /// Reads, zeroes, and reports the counters into a metric sink under
    /// the `model.*` names. Call from sequential contexts only (the
    /// counts themselves are thread-exact; the *flush* is a read-reset).
    pub fn flush_into<S: Sink>(&self, sink: &S) {
        if !sink.enabled() {
            return;
        }
        let s = self.take();
        sink.add(names::MODEL_REBUILDS, s.rebuilds);
        sink.add(names::MODEL_DELTA_EVALS, s.delta_evals);
        sink.add(names::MODEL_BEST_SWITCH_SCANS, s.best_switch_scans);
    }
}

impl Clone for ModelStats {
    fn clone(&self) -> ModelStats {
        let s = self.snapshot();
        ModelStats {
            rebuilds: AtomicU64::new(s.rebuilds),
            delta_evals: AtomicU64::new(s.delta_evals),
            best_switch_scans: AtomicU64::new(s.best_switch_scans),
        }
    }
}

/// Per-attach flush cursor over a shared [`GoodputTable`]'s *cumulative*
/// counters. The table itself is never drained (its counters only grow, so
/// any number of models can share one `Arc` without stealing each other's
/// counts — the DESIGN.md §13.3 footgun); instead each model remembers the
/// last values it flushed and reports deltas. The cursor starts at the
/// table's hit/miss counts as of the attach but at **zero** rebuilds, so a
/// model adopting an already-built table still surfaces the build cost
/// once, in its own first flush, while the traffic counters cover only
/// lookups made while this model was attached.
#[derive(Debug)]
struct TableFlushCursor {
    hits: AtomicU64,
    misses: AtomicU64,
    rebuilds: AtomicU64,
}

impl TableFlushCursor {
    fn at_attach(table: Option<&Arc<GoodputTable>>) -> TableFlushCursor {
        let (hits, misses) = match table {
            Some(t) => {
                let s = t.stats();
                (s.hits, s.misses)
            }
            None => (0, 0),
        };
        TableFlushCursor {
            hits: AtomicU64::new(hits),
            misses: AtomicU64::new(misses),
            rebuilds: AtomicU64::new(0),
        }
    }

    /// Advances one counter to `now` and returns the delta since the last
    /// flush. Flushes are sequential-context-only, so the load/swap pair
    /// never races another flush of the same cursor.
    fn advance(slot: &AtomicU64, now: u64) -> u64 {
        now.saturating_sub(slot.swap(now, Ordering::Relaxed))
    }
}

impl Clone for TableFlushCursor {
    fn clone(&self) -> TableFlushCursor {
        TableFlushCursor {
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicU64::new(self.misses.load(Ordering::Relaxed)),
            rebuilds: AtomicU64::new(self.rebuilds.load(Ordering::Relaxed)),
        }
    }
}

/// Anything that can score a full channel assignment.
pub trait ThroughputModel {
    /// Number of APs.
    fn n_aps(&self) -> usize;

    /// Predicted long-term throughput of one AP's cell under a full
    /// network assignment (bits/s).
    fn ap_throughput_bps(&self, ap: ApId, assignments: &[ChannelAssignment]) -> f64;

    /// Predicted aggregate network throughput `Y = Σ X_i` (bits/s) — the
    /// objective of Eq. 5.
    fn total_bps(&self, assignments: &[ChannelAssignment]) -> f64 {
        (0..self.n_aps())
            .map(|i| self.ap_throughput_bps(ApId(i), assignments))
            .sum()
    }

    /// Change in `total_bps` if `ap` switched from its current colour in
    /// `assignments` to `colour`, everyone else frozen — the quantity
    /// Algorithm 2's candidate ranking actually needs. The default
    /// implementation recomputes both totals; models that know which
    /// cells a switch can affect should override it (see
    /// [`NetworkModel`]'s O(Δ) version).
    fn delta_bps(
        &self,
        ap: ApId,
        colour: ChannelAssignment,
        assignments: &[ChannelAssignment],
    ) -> f64 {
        if assignments[ap.0] == colour {
            return 0.0;
        }
        let mut alt = assignments.to_vec();
        alt[ap.0] = colour;
        self.total_bps(&alt) - self.total_bps(assignments)
    }

    /// The best colour for `ap` with everyone else frozen, and its gain —
    /// one candidate ranking of Algorithm 2's inner loop. Ties keep the
    /// first colour in `colours` (matching the sequential scan). An empty
    /// colour set degrades to "stay put" (current colour, zero gain)
    /// rather than aborting. The default scans via
    /// [`delta_bps`](ThroughputModel::delta_bps); models that can share
    /// work across the colour scan should override it (see
    /// [`NetworkModel`]'s hoisted version).
    fn best_switch(
        &self,
        ap: ApId,
        colours: &[ChannelAssignment],
        assignments: &[ChannelAssignment],
    ) -> (ChannelAssignment, f64) {
        let mut best: Option<(ChannelAssignment, f64)> = None;
        for &c in colours {
            let gain = self.delta_bps(ap, c, assignments);
            match best {
                Some((_, g)) if g >= gain => {}
                _ => best = Some((c, gain)),
            }
        }
        best.unwrap_or((assignments[ap.0], 0.0))
    }
}

/// One client as the model sees it: its 20 MHz-referenced SNR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientSnr {
    /// Global client index (for bookkeeping; not used in the math).
    pub client: usize,
    /// Per-subcarrier SNR the client would see on a 20 MHz channel (dB).
    pub snr20_db: f64,
}

/// The concrete model: interference graph + per-cell client SNRs +
/// estimator.
///
/// A cell's throughput at a width is independent of the rest of the
/// assignment and *linear* in the access share `M` (`X = M·K·L/ATD`), so
/// the model precomputes the `M = 1` value for every (AP, width) pair
/// into a dense table at construction — Algorithm 2 evaluates candidates
/// thousands of times per run and would otherwise re-derive every
/// client's MCS/PER pipeline each time. The table is rebuilt
/// automatically whenever [`set_estimator`](NetworkModel::set_estimator),
/// [`set_payload_bytes`](NetworkModel::set_payload_bytes) or
/// [`set_cells`](NetworkModel::set_cells) mutate its inputs, so the model
/// is always consistent, holds no interior mutability, and is `Sync` —
/// the parallel evaluation engine shares it across threads.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    /// AP-level interference graph (footnote 5 semantics).
    pub graph: InterferenceGraph,
    cells: Vec<Vec<ClientSnr>>,
    estimator: LinkQualityEstimator,
    payload_bytes: u32,
    /// Dense `M = 1` cell throughput, indexed `[ap * 2 + width_index]`.
    cell_base: Vec<f64>,
    /// Optional memoized goodput table; when present, `client_link` (and
    /// hence the `cell_base` build) answers from the table instead of
    /// running the exact union-bound search per client. Shared by `Arc`
    /// so model clones (and per-shard submodels) reuse one build and one
    /// set of hit/miss counters.
    table: Option<Arc<GoodputTable>>,
    /// Where this model's last flush left off in the shared table's
    /// cumulative counters (see [`TableFlushCursor`]).
    table_cursor: TableFlushCursor,
    stats: ModelStats,
}

fn width_index(width: ChannelWidth) -> usize {
    match width {
        ChannelWidth::Ht20 => 0,
        ChannelWidth::Ht40 => 1,
    }
}

impl NetworkModel {
    /// Creates a model; `cells[i]` lists AP i's associated clients.
    pub fn new(graph: InterferenceGraph, cells: Vec<Vec<ClientSnr>>) -> NetworkModel {
        NetworkModel::with_config(graph, cells, LinkQualityEstimator::default(), 1500)
    }

    /// Creates a fully configured model in one step (one cache build —
    /// prefer this over `new` + setters when the estimator or payload
    /// differ from the defaults).
    pub fn with_config(
        graph: InterferenceGraph,
        cells: Vec<Vec<ClientSnr>>,
        estimator: LinkQualityEstimator,
        payload_bytes: u32,
    ) -> NetworkModel {
        assert_eq!(graph.len(), cells.len(), "one cell per AP");
        let mut model = NetworkModel {
            graph,
            cells,
            estimator,
            payload_bytes,
            cell_base: Vec::new(),
            table: None,
            table_cursor: TableFlushCursor::at_attach(None),
            stats: ModelStats::default(),
        };
        model.rebuild_cell_base();
        model
    }

    /// Creates a model whose per-client rate/PER predictions come from a
    /// prebuilt memoized [`GoodputTable`] instead of per-call exact
    /// union-bound searches. The table must have been built from the same
    /// estimator configuration (same packet size, GI, fading model), or
    /// predictions would silently mix two error models.
    pub fn with_table(
        graph: InterferenceGraph,
        cells: Vec<Vec<ClientSnr>>,
        table: Arc<GoodputTable>,
        payload_bytes: u32,
    ) -> NetworkModel {
        assert_eq!(graph.len(), cells.len(), "one cell per AP");
        let estimator = *table.estimator();
        let table_cursor = TableFlushCursor::at_attach(Some(&table));
        let mut model = NetworkModel {
            graph,
            cells,
            estimator,
            payload_bytes,
            cell_base: Vec::new(),
            table: Some(table),
            table_cursor,
            stats: ModelStats::default(),
        };
        model.rebuild_cell_base();
        model
    }

    /// Fallible construction for inputs of runtime provenance (wire or
    /// operator data): a graph/cells size mismatch is a typed
    /// [`ControlError`] instead of an abort.
    pub fn try_with_config(
        graph: InterferenceGraph,
        cells: Vec<Vec<ClientSnr>>,
        estimator: LinkQualityEstimator,
        payload_bytes: u32,
    ) -> Result<NetworkModel, ControlError> {
        if graph.len() != cells.len() {
            return Err(ControlError::CellCountMismatch {
                graph: graph.len(),
                cells: cells.len(),
            });
        }
        Ok(NetworkModel::with_config(
            graph,
            cells,
            estimator,
            payload_bytes,
        ))
    }

    /// Clients associated with each AP.
    pub fn cells(&self) -> &[Vec<ClientSnr>] {
        &self.cells
    }

    /// The §4.2 link-quality estimator.
    pub fn estimator(&self) -> &LinkQualityEstimator {
        &self.estimator
    }

    /// Payload size for airtime accounting (bytes).
    pub fn payload_bytes(&self) -> u32 {
        self.payload_bytes
    }

    /// Replaces the estimator and rebuilds the throughput table. Any
    /// attached memoized table is detached — it baked in the previous
    /// estimator; attach a fresh one via [`set_table`]
    /// (NetworkModel::set_table) to restore memoization.
    pub fn set_estimator(&mut self, estimator: LinkQualityEstimator) {
        self.estimator = estimator;
        self.table = None;
        self.table_cursor = TableFlushCursor::at_attach(None);
        self.rebuild_cell_base();
    }

    /// Replaces the airtime payload size and rebuilds the table.
    pub fn set_payload_bytes(&mut self, payload_bytes: u32) {
        self.payload_bytes = payload_bytes;
        self.rebuild_cell_base();
    }

    /// Replaces the per-AP client lists and rebuilds the table. A size
    /// mismatch is a typed error and leaves the model untouched.
    pub fn set_cells(&mut self, cells: Vec<Vec<ClientSnr>>) -> Result<(), ControlError> {
        if self.graph.len() != cells.len() {
            return Err(ControlError::CellCountMismatch {
                graph: self.graph.len(),
                cells: cells.len(),
            });
        }
        self.cells = cells;
        self.rebuild_cell_base();
        Ok(())
    }

    /// The memoized goodput table, when one is attached.
    pub fn table(&self) -> Option<&Arc<GoodputTable>> {
        self.table.as_ref()
    }

    /// Attaches (or detaches) a memoized goodput table and rebuilds the
    /// throughput cache through it. Attaching a table also adopts its
    /// estimator configuration, keeping the two consistent.
    pub fn set_table(&mut self, table: Option<Arc<GoodputTable>>) {
        if let Some(t) = &table {
            self.estimator = *t.estimator();
        }
        self.table_cursor = TableFlushCursor::at_attach(table.as_ref());
        self.table = table;
        self.rebuild_cell_base();
    }

    /// The model's own evaluation counters (rebuilds, delta evals,
    /// hoisted scans) — flush into a sink with
    /// [`ModelStats::flush_into`] from a sequential context.
    pub fn stats(&self) -> &ModelStats {
        &self.stats
    }

    /// Flushes the model counters *and*, when a table is attached, the
    /// model's view of its hit/miss/rebuild counters (plus the
    /// max-quantization-error gauge) into a sink under the `model.*` /
    /// `phy.table.*` names. Call from sequential contexts only.
    ///
    /// The shared table's counters are **cumulative and never reset**;
    /// this flush reports the delta since this model's previous flush via
    /// a per-attach cursor, so any number of models — including two
    /// sequential runs sharing one `Arc<GoodputTable>` — report their own
    /// traffic (and the one build, exactly once each) without draining
    /// each other's counts.
    pub fn flush_stats_into<S: Sink>(&self, sink: &S) {
        self.stats.flush_into(sink);
        if let Some(t) = &self.table {
            if sink.enabled() {
                let s = t.stats();
                let c = &self.table_cursor;
                sink.add(
                    names::TABLE_HITS,
                    TableFlushCursor::advance(&c.hits, s.hits),
                );
                sink.add(
                    names::TABLE_MISSES,
                    TableFlushCursor::advance(&c.misses, s.misses),
                );
                sink.add(
                    names::TABLE_REBUILDS,
                    TableFlushCursor::advance(&c.rebuilds, s.rebuilds),
                );
                sink.gauge(names::TABLE_MAX_QUANT_ERROR, s.max_quant_error_bps);
            }
        }
    }

    /// The submodel induced by a subset of APs (`nodes`, strictly
    /// ascending): the vertex-induced subgraph reindexed to `0..k`, the
    /// corresponding cells, and — crucially — the corresponding rows of
    /// the precomputed `cell_base` table *copied, not re-estimated*, so
    /// restriction is O(k·Δ) and every per-shard throughput term is
    /// bit-identical to the full model's. The sharded allocation path
    /// solves each connected component on such a submodel.
    pub fn restrict(&self, nodes: &[usize]) -> NetworkModel {
        let n = self.graph.len();
        let mut index_of = vec![usize::MAX; n];
        let mut prev: Option<usize> = None;
        for (new, &old) in nodes.iter().enumerate() {
            assert!(old < n, "restrict node out of range");
            assert!(prev.map_or(true, |p| p < old), "restrict nodes must ascend");
            prev = Some(old);
            index_of[old] = new;
        }
        let mut graph = InterferenceGraph::new(nodes.len());
        let mut cells = Vec::with_capacity(nodes.len());
        let mut cell_base = Vec::with_capacity(nodes.len() * 2);
        for (new, &old) in nodes.iter().enumerate() {
            for nb in self.graph.neighbors(ApId(old)) {
                let mapped = index_of[nb.0];
                if mapped != usize::MAX && nb.0 > old {
                    graph.add_edge(ApId(new), ApId(mapped));
                }
            }
            cells.push(self.cells[old].clone());
            cell_base.push(self.cell_base[old * 2]);
            cell_base.push(self.cell_base[old * 2 + 1]);
        }
        NetworkModel {
            graph,
            cells,
            estimator: self.estimator,
            payload_bytes: self.payload_bytes,
            cell_base,
            table: self.table.clone(),
            table_cursor: self.table_cursor.clone(),
            stats: ModelStats::default(),
        }
    }

    fn rebuild_cell_base(&mut self) {
        self.stats.add_rebuild();
        let n = self.cells.len();
        let mut table = vec![0.0; n * 2];
        for ap in 0..n {
            for width in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
                table[ap * 2 + width_index(width)] =
                    self.cell_airtime(ApId(ap), width).cell_throughput_bps(1.0);
            }
        }
        self.cell_base = table;
    }

    /// The precomputed contention-free (`M = 1`) cell throughput.
    pub fn cell_base_bps(&self, ap: ApId, width: ChannelWidth) -> f64 {
        self.cell_base[ap.0 * 2 + width_index(width)]
    }

    /// Predicts the MAC-layer operating point of a client at a width —
    /// through the memoized table when one is attached, the exact §4.2
    /// pipeline otherwise.
    pub fn client_link(&self, snr20_db: f64, width: ChannelWidth) -> ClientLink {
        let point = match &self.table {
            Some(t) => {
                let snr = self
                    .estimator
                    .calibrate_snr(snr20_db, ChannelWidth::Ht20, width);
                t.rate_point(snr, width)
            }
            None => self
                .estimator
                .estimate(snr20_db, ChannelWidth::Ht20)
                .rate_point(width),
        };
        ClientLink {
            rate_bps: point.mcs.mcs().rate_bps(width, self.estimator.gi),
            per: point.per,
        }
    }

    /// The cell's airtime accounting at a width.
    pub fn cell_airtime(&self, ap: ApId, width: ChannelWidth) -> CellAirtime {
        let links: Vec<ClientLink> = self.cells[ap.0]
            .iter()
            .map(|c| self.client_link(c.snr20_db, width))
            .collect();
        CellAirtime::new(&links, self.payload_bytes)
    }

    /// Isolated (contention-free) cell throughput at a width — the
    /// `X_i^{isol-20/40}` of the NP-completeness argument and Fig. 14's
    /// `Y*` calibration.
    pub fn isolated_throughput_bps(&self, ap: ApId, width: ChannelWidth) -> f64 {
        self.cell_base_bps(ap, width)
    }

    /// `X_i^{isol} = max(X_i^{isol-20}, X_i^{isol-40})`.
    pub fn isolated_best_bps(&self, ap: ApId) -> f64 {
        self.isolated_throughput_bps(ap, ChannelWidth::Ht20)
            .max(self.isolated_throughput_bps(ap, ChannelWidth::Ht40))
    }
}

impl ThroughputModel for NetworkModel {
    fn n_aps(&self) -> usize {
        self.graph.len()
    }

    fn ap_throughput_bps(&self, ap: ApId, assignments: &[ChannelAssignment]) -> f64 {
        let m = access_share(&self.graph, assignments, ap);
        m.clamp(0.0, 1.0) * self.cell_base_bps(ap, assignments[ap.0].width())
    }

    /// O(Δ) evaluation: switching `ap` can only change the access shares
    /// of `ap` itself and its interference-graph neighbours (everyone
    /// else's contender set is untouched), and cell throughput is linear
    /// in the share, so the delta is a sum over that neighbourhood of
    /// `M_new·base − M_old·base` — each term exactly the difference of
    /// the corresponding [`ap_throughput_bps`] values.
    fn delta_bps(
        &self,
        ap: ApId,
        colour: ChannelAssignment,
        assignments: &[ChannelAssignment],
    ) -> f64 {
        self.stats.add_delta_evals(1);
        let current = assignments[ap.0];
        if current == colour {
            return 0.0;
        }
        let patch = (ap, colour);
        let m_new = access_share_with(&self.graph, assignments, ap, patch);
        let m_old = access_share(&self.graph, assignments, ap);
        let mut delta = m_new.clamp(0.0, 1.0) * self.cell_base_bps(ap, colour.width())
            - m_old.clamp(0.0, 1.0) * self.cell_base_bps(ap, current.width());
        for j in self.graph.neighbors(ap) {
            let m_new = access_share_with(&self.graph, assignments, j, patch);
            let m_old = access_share(&self.graph, assignments, j);
            if m_new != m_old {
                let base = self.cell_base_bps(j, assignments[j.0].width());
                delta += m_new.clamp(0.0, 1.0) * base - m_old.clamp(0.0, 1.0) * base;
            }
        }
        delta
    }

    /// O(Δ) over the *whole* colour scan: the frozen-assignment state —
    /// the AP's own conflict count and every neighbour's conflict count
    /// and cell base — is computed once, and each colour then costs one
    /// O(Δ) rescan of the AP's own conflicts plus O(1) per neighbour
    /// (only the `ap`–`j` edge can change, so the neighbour's new count
    /// is its old count ±1). Term order matches
    /// [`delta_bps`](ThroughputModel::delta_bps), so gains are
    /// bit-identical to the per-colour scan.
    fn best_switch(
        &self,
        ap: ApId,
        colours: &[ChannelAssignment],
        assignments: &[ChannelAssignment],
    ) -> (ChannelAssignment, f64) {
        self.stats.add_best_switch_scan();
        self.stats.add_delta_evals(colours.len() as u64);
        let current = assignments[ap.0];
        let conflicts_of = |j: ApId, colour: ChannelAssignment| {
            self.graph
                .neighbors(j)
                .filter(|&nb| colour.conflicts(assignments[nb.0]))
                .count()
        };
        let share = |c: usize| (1.0 / (c as f64 + 1.0)).clamp(0.0, 1.0);
        let x_i_old = share(conflicts_of(ap, current)) * self.cell_base_bps(ap, current.width());
        // Per neighbour: (its current conflict count, its cell base).
        let neigh: Vec<(ChannelAssignment, usize, f64)> = self
            .graph
            .neighbors(ap)
            .map(|j| {
                let a_j = assignments[j.0];
                (
                    a_j,
                    conflicts_of(j, a_j),
                    self.cell_base_bps(j, a_j.width()),
                )
            })
            .collect();

        let mut best: Option<(ChannelAssignment, f64)> = None;
        for &c in colours {
            let gain = if c == current {
                0.0
            } else {
                let x_i_new = share(conflicts_of(ap, c)) * self.cell_base_bps(ap, c.width());
                let mut delta = x_i_new - x_i_old;
                for &(a_j, c_old, base) in &neigh {
                    let edge_old = a_j.conflicts(current);
                    let edge_new = a_j.conflicts(c);
                    if edge_old != edge_new {
                        let c_new = if edge_new { c_old + 1 } else { c_old - 1 };
                        delta += share(c_new) * base - share(c_old) * base;
                    }
                }
                delta
            };
            match best {
                Some((_, g)) if g >= gain => {}
                _ => best = Some((c, gain)),
            }
        }
        best.unwrap_or((current, 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorn_topology::Channel20;

    fn single(c: u8) -> ChannelAssignment {
        ChannelAssignment::Single(Channel20(c))
    }

    fn bonded(c: u8) -> ChannelAssignment {
        ChannelAssignment::bonded(Channel20(c)).unwrap()
    }

    fn two_ap_model(snrs_a: &[f64], snrs_b: &[f64], connected: bool) -> NetworkModel {
        let graph = if connected {
            InterferenceGraph::complete(2)
        } else {
            InterferenceGraph::new(2)
        };
        let mk = |snrs: &[f64]| {
            snrs.iter()
                .enumerate()
                .map(|(i, &s)| ClientSnr {
                    client: i,
                    snr20_db: s,
                })
                .collect()
        };
        NetworkModel::new(graph, vec![mk(snrs_a), mk(snrs_b)])
    }

    #[test]
    fn strong_cell_prefers_bonding() {
        let m = two_ap_model(&[32.0, 30.0], &[], false);
        let t20 = m.isolated_throughput_bps(ApId(0), ChannelWidth::Ht20);
        let t40 = m.isolated_throughput_bps(ApId(0), ChannelWidth::Ht40);
        assert!(t40 > 1.3 * t20, "t20 {t20:.3e} t40 {t40:.3e}");
    }

    #[test]
    fn weak_cell_prefers_20mhz() {
        let m = two_ap_model(&[1.0], &[], false);
        let t20 = m.isolated_throughput_bps(ApId(0), ChannelWidth::Ht20);
        let t40 = m.isolated_throughput_bps(ApId(0), ChannelWidth::Ht40);
        assert!(t20 > t40, "t20 {t20:.3e} t40 {t40:.3e}");
    }

    #[test]
    fn contention_halves_cochannel_throughput() {
        let m = two_ap_model(&[25.0], &[25.0], true);
        let same = vec![single(0), single(0)];
        let diff = vec![single(0), single(1)];
        let y_same = m.total_bps(&same);
        let y_diff = m.total_bps(&diff);
        assert!((y_same * 2.0 - y_diff).abs() / y_diff < 1e-9);
    }

    #[test]
    fn bonded_overlap_contends() {
        // AP 0 bonded on {0,1}, AP 1 single on 1 → both share the medium.
        let m = two_ap_model(&[25.0], &[25.0], true);
        let overlap = vec![bonded(0), single(1)];
        let x1 = m.ap_throughput_bps(ApId(1), &overlap);
        let clear = vec![bonded(0), single(2)];
        let x1_clear = m.ap_throughput_bps(ApId(1), &clear);
        assert!((x1 * 2.0 - x1_clear).abs() / x1_clear < 1e-9);
    }

    #[test]
    fn isolated_best_picks_the_right_width() {
        let m = two_ap_model(&[32.0], &[1.0], false);
        assert_eq!(
            m.isolated_best_bps(ApId(0)),
            m.isolated_throughput_bps(ApId(0), ChannelWidth::Ht40)
        );
        assert_eq!(
            m.isolated_best_bps(ApId(1)),
            m.isolated_throughput_bps(ApId(1), ChannelWidth::Ht20)
        );
    }

    #[test]
    fn poor_client_drags_down_a_bonded_cell() {
        // The anomaly + CB interaction at the heart of the paper: a strong
        // cell loses more from one poor client at 40 MHz than at 20 MHz.
        let strong = two_ap_model(&[30.0, 30.0], &[], false);
        let mixed = two_ap_model(&[30.0, 30.0, 2.0], &[], false);
        let loss_at = |width| {
            mixed.isolated_throughput_bps(ApId(0), width)
                / strong.isolated_throughput_bps(ApId(0), width)
        };
        assert!(
            loss_at(ChannelWidth::Ht40) < loss_at(ChannelWidth::Ht20),
            "40 MHz should suffer relatively more: {} vs {}",
            loss_at(ChannelWidth::Ht40),
            loss_at(ChannelWidth::Ht20)
        );
    }

    #[test]
    fn empty_cell_contributes_zero() {
        let m = two_ap_model(&[], &[20.0], false);
        let a = vec![single(0), single(1)];
        assert_eq!(m.ap_throughput_bps(ApId(0), &a), 0.0);
        assert!(m.total_bps(&a) > 0.0);
    }

    #[test]
    #[should_panic(expected = "one cell per AP")]
    fn mismatched_cells_panic() {
        NetworkModel::new(InterferenceGraph::new(2), vec![vec![]]);
    }

    #[test]
    fn setters_rebuild_the_table() {
        // The stale-cache footgun this refactor removes: mutating the
        // payload after first use must change subsequent predictions.
        let mut m = two_ap_model(&[25.0], &[20.0], false);
        let a = vec![single(0), single(1)];
        let before = m.total_bps(&a);
        m.set_payload_bytes(256);
        let after = m.total_bps(&a);
        assert_ne!(before, after, "smaller frames pay more per-frame overhead");
        m.set_payload_bytes(1500);
        assert_eq!(m.total_bps(&a), before, "rebuild is deterministic");

        let mut est = *m.estimator();
        est.fading_sigma_db += 4.0;
        m.set_estimator(est);
        assert_ne!(m.total_bps(&a), before);

        m.set_cells(vec![vec![], vec![]]).unwrap();
        assert_eq!(m.total_bps(&a), 0.0);
    }

    #[test]
    fn mismatched_cells_are_typed_errors_on_the_fallible_paths() {
        use crate::error::ControlError;
        let err = NetworkModel::try_with_config(
            InterferenceGraph::new(2),
            vec![vec![]],
            LinkQualityEstimator::default(),
            1500,
        )
        .err();
        assert!(matches!(
            err,
            Some(ControlError::CellCountMismatch { graph: 2, cells: 1 })
        ));
        let mut m = two_ap_model(&[25.0], &[20.0], false);
        let before = m.total_bps(&[single(0), single(1)]);
        assert!(m.set_cells(vec![vec![]]).is_err());
        assert_eq!(
            m.total_bps(&[single(0), single(1)]),
            before,
            "failed set_cells must leave the model untouched"
        );
    }

    #[test]
    fn empty_colour_sets_degrade_to_stay_put() {
        let m = two_ap_model(&[25.0], &[20.0], true);
        let a = vec![single(0), single(1)];
        // Both the hoisted scan and the trait default must return the
        // current colour with zero gain, not abort.
        assert_eq!(m.best_switch(ApId(0), &[], &a), (single(0), 0.0));
        struct Slow<'m>(&'m NetworkModel);
        impl ThroughputModel for Slow<'_> {
            fn n_aps(&self) -> usize {
                self.0.n_aps()
            }
            fn ap_throughput_bps(&self, ap: ApId, a: &[ChannelAssignment]) -> f64 {
                self.0.ap_throughput_bps(ap, a)
            }
        }
        assert_eq!(Slow(&m).best_switch(ApId(1), &[], &a), (single(1), 0.0));
    }

    #[test]
    fn delta_matches_full_recompute() {
        // The O(Δ) specialization must agree with the trait's
        // full-recompute default on every (AP, colour) candidate,
        // including bonded/overlap transitions, to float-sum accuracy.
        let graph = InterferenceGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let cells = [
            &[28.0, 22.0][..],
            &[15.0][..],
            &[8.0, 6.0, 31.0][..],
            &[2.0][..],
        ];
        let cells = cells
            .iter()
            .map(|snrs| {
                snrs.iter()
                    .enumerate()
                    .map(|(i, &s)| ClientSnr {
                        client: i,
                        snr20_db: s,
                    })
                    .collect()
            })
            .collect();
        let m = NetworkModel::new(graph, cells);
        let assignments = vec![single(0), bonded(0), single(1), single(3)];
        let colours = [
            single(0),
            single(1),
            single(2),
            single(3),
            bonded(0),
            bonded(2),
        ];
        for ap in 0..4 {
            for &c in &colours {
                let fast = m.delta_bps(ApId(ap), c, &assignments);
                let mut alt = assignments.clone();
                alt[ap] = c;
                let slow = m.total_bps(&alt) - m.total_bps(&assignments);
                assert!(
                    (fast - slow).abs() <= 1e-6 * slow.abs().max(1.0),
                    "ap {ap} -> {c:?}: fast {fast} slow {slow}"
                );
            }
        }
    }

    #[test]
    fn best_switch_matches_the_per_colour_scan_exactly() {
        // The hoisted colour scan must pick the same colour as a
        // first-max fold over `delta_bps`, with the gain bit-identical.
        let graph = InterferenceGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]);
        let cells = [
            &[28.0, 22.0][..],
            &[15.0][..],
            &[8.0, 6.0, 31.0][..],
            &[2.0][..],
            &[19.0][..],
        ];
        let cells = cells
            .iter()
            .map(|snrs| {
                snrs.iter()
                    .enumerate()
                    .map(|(i, &s)| ClientSnr {
                        client: i,
                        snr20_db: s,
                    })
                    .collect()
            })
            .collect();
        let m = NetworkModel::new(graph, cells);
        let assignments = vec![single(0), bonded(0), single(1), single(3), bonded(2)];
        let colours = [
            single(0),
            single(1),
            single(2),
            single(3),
            bonded(0),
            bonded(2),
        ];
        for ap in 0..5 {
            let (c_fast, g_fast) = m.best_switch(ApId(ap), &colours, &assignments);
            let mut ref_best: Option<(ChannelAssignment, f64)> = None;
            for &c in &colours {
                let gain = m.delta_bps(ApId(ap), c, &assignments);
                match ref_best {
                    Some((_, g)) if g >= gain => {}
                    _ => ref_best = Some((c, gain)),
                }
            }
            let (c_ref, g_ref) = ref_best.unwrap();
            assert_eq!(c_fast, c_ref, "ap {ap}: colour");
            assert_eq!(
                g_fast.to_bits(),
                g_ref.to_bits(),
                "ap {ap}: {g_fast} vs {g_ref}"
            );
        }
    }

    #[test]
    fn delta_of_current_colour_is_exactly_zero() {
        let m = two_ap_model(&[25.0], &[20.0], true);
        let a = vec![single(0), single(1)];
        assert_eq!(m.delta_bps(ApId(0), single(0), &a), 0.0);
    }

    #[test]
    fn model_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<NetworkModel>();
    }

    #[test]
    fn stats_count_rebuilds_deltas_and_scans() {
        let mut m = two_ap_model(&[25.0], &[20.0], true);
        assert_eq!(m.stats().snapshot().rebuilds, 1, "construction builds once");
        m.set_payload_bytes(256);
        assert_eq!(m.stats().snapshot().rebuilds, 2);

        let a = vec![single(0), single(1)];
        let before = m.stats().snapshot();
        m.delta_bps(ApId(0), single(1), &a);
        let colours = [single(0), single(1), single(2)];
        m.best_switch(ApId(0), &colours, &a);
        let after = m.stats().snapshot();
        assert_eq!(after.delta_evals - before.delta_evals, 1 + 3);
        assert_eq!(after.best_switch_scans - before.best_switch_scans, 1);

        // take() drains; a cloned model carries the values forward.
        let cloned = m.clone();
        assert_eq!(cloned.stats().snapshot(), after);
        assert_eq!(m.stats().take(), after);
        assert_eq!(m.stats().snapshot(), ModelStatsSnapshot::default());
    }

    #[test]
    fn restricted_submodel_copies_rows_and_edges_bit_exactly() {
        let graph = InterferenceGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let cells = [
            &[28.0, 22.0][..],
            &[15.0][..],
            &[8.0, 31.0][..],
            &[2.0][..],
            &[19.0][..],
        ];
        let cells: Vec<Vec<ClientSnr>> = cells
            .iter()
            .map(|snrs| {
                snrs.iter()
                    .enumerate()
                    .map(|(i, &s)| ClientSnr {
                        client: i,
                        snr20_db: s,
                    })
                    .collect()
            })
            .collect();
        let m = NetworkModel::new(graph, cells);
        let sub = m.restrict(&[3, 4]);
        assert_eq!(sub.n_aps(), 2);
        assert!(sub.graph.interferes(ApId(0), ApId(1)));
        for (new, old) in [(0usize, 3usize), (1, 4)] {
            for w in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
                assert_eq!(
                    sub.cell_base_bps(ApId(new), w).to_bits(),
                    m.cell_base_bps(ApId(old), w).to_bits(),
                    "row ({old}, {w:?}) must be copied, not re-derived"
                );
            }
        }
        // Restriction copies rows — no estimator pipeline rebuild.
        assert_eq!(sub.stats().snapshot().rebuilds, 0);
        // Edges to outside the subset are dropped.
        let sub2 = m.restrict(&[0, 1, 3]);
        assert!(sub2.graph.interferes(ApId(0), ApId(1)));
        assert_eq!(sub2.graph.degree(ApId(2)), 0, "edge (3,4) left the subset");
    }

    #[test]
    #[should_panic(expected = "must ascend")]
    fn restrict_rejects_unsorted_nodes() {
        let m = two_ap_model(&[25.0], &[20.0], true);
        m.restrict(&[1, 0]);
    }

    #[test]
    fn table_backed_model_tracks_the_exact_model() {
        use acorn_phy::GoodputTable;
        let graph = InterferenceGraph::complete(2);
        let mk = |snrs: &[f64]| {
            snrs.iter()
                .enumerate()
                .map(|(i, &s)| ClientSnr {
                    client: i,
                    snr20_db: s,
                })
                .collect::<Vec<_>>()
        };
        let cells = vec![mk(&[30.0, 8.5, 1.65]), mk(&[22.3, 14.0])];
        let exact = NetworkModel::new(graph.clone(), cells.clone());
        let table = std::sync::Arc::new(GoodputTable::build(
            LinkQualityEstimator::default(),
            -12.0,
            48.0,
            0.0625,
        ));
        let fast = NetworkModel::with_table(graph, cells, table.clone(), 1500);
        let a = vec![single(0), single(1)];
        let (ye, yf) = (exact.total_bps(&a), fast.total_bps(&a));
        assert!(
            (ye - yf).abs() / ye < 1e-3,
            "table-backed total {yf} vs exact {ye}"
        );
        assert!(table.stats().hits > 0, "cell-base build must hit the table");
        assert_eq!(
            fast.table().map(std::sync::Arc::as_ptr),
            Some(std::sync::Arc::as_ptr(&table))
        );
        // Restriction shares the same table.
        let sub = fast.restrict(&[0]);
        assert!(sub.table().is_some());
    }

    /// Regression for the DESIGN.md §13.3 footgun: epoch flushes used to
    /// *drain* the shared table's counters, so the second of two
    /// sequential runs over one `Arc<GoodputTable>` saw zero rebuilds
    /// (and whatever hits the first run hadn't stolen). With cumulative
    /// counters and per-attach flush cursors, both runs must report
    /// identical hit/miss/rebuild counts.
    #[test]
    fn sequential_runs_sharing_a_table_report_identical_counters() {
        use acorn_obs::RecordingSink;
        use acorn_phy::GoodputTable;
        let graph = InterferenceGraph::complete(2);
        let cells = vec![
            vec![ClientSnr {
                client: 0,
                snr20_db: 27.0,
            }],
            vec![ClientSnr {
                client: 1,
                snr20_db: 14.5,
            }],
        ];
        let table = std::sync::Arc::new(GoodputTable::build(
            LinkQualityEstimator::default(),
            -12.0,
            48.0,
            0.0625,
        ));
        let run = || {
            let m = NetworkModel::with_table(graph.clone(), cells.clone(), table.clone(), 1500);
            let a = vec![single(0), single(1)];
            m.total_bps(&a);
            let sink = RecordingSink::new();
            m.flush_stats_into(&sink);
            sink.with_telemetry(|t| {
                (
                    t.counter(names::TABLE_HITS),
                    t.counter(names::TABLE_MISSES),
                    t.counter(names::TABLE_REBUILDS),
                )
            })
        };
        let first = run();
        let second = run();
        assert_eq!(first, second, "shared-table runs must report identically");
        assert_eq!(first.2, 1, "each attach reports the one build it adopted");
        assert!(first.0 > 0, "cell-base build goes through the table");
        // The table itself keeps cumulative counts: two identical runs,
        // twice the traffic, still exactly one build.
        let s = table.stats();
        assert_eq!(s.rebuilds, 1);
        assert_eq!(s.hits, 2 * first.0);
    }

    #[test]
    fn stats_flush_reports_model_metrics() {
        use acorn_obs::RecordingSink;
        let m = two_ap_model(&[25.0], &[20.0], true);
        let a = vec![single(0), single(1)];
        m.best_switch(ApId(0), &[single(0), single(1)], &a);
        let sink = RecordingSink::new();
        m.stats().flush_into(&sink);
        sink.with_telemetry(|t| {
            assert_eq!(t.counter(acorn_obs::names::MODEL_REBUILDS), 1);
            assert_eq!(t.counter(acorn_obs::names::MODEL_DELTA_EVALS), 2);
            assert_eq!(t.counter(acorn_obs::names::MODEL_BEST_SWITCH_SCANS), 1);
        });
    }
}
