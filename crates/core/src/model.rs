//! The network throughput model ACORN's algorithms optimize over.
//!
//! Algorithm 2 repeatedly asks: *if AP `i` moved to channel `c` while
//! everyone else stayed put, what would the aggregate network throughput
//! be?* (line 10 of the pseudocode). Answering that requires exactly two
//! ingredients, both from the paper:
//!
//! 1. the AP's channel-access share `M_a = 1/(|con_a|+1)` given the
//!    interference graph and the hypothetical assignment (§5.1), and
//! 2. each client's goodput at the hypothetical width, predicted by the
//!    §4.2 estimator (SNR ± 3 dB calibration → coded BER → PER), fed into
//!    the performance-anomaly airtime model (§4.1).
//!
//! [`NetworkModel`] packages those ingredients behind the
//! [`ThroughputModel`] trait so the allocation algorithm (and the
//! baselines) stay independent of how throughputs are predicted.

use acorn_mac::airtime::{CellAirtime, ClientLink};
use acorn_mac::contention::access_share;
use acorn_phy::estimator::LinkQualityEstimator;
use acorn_phy::ChannelWidth;
use acorn_topology::{ApId, ChannelAssignment, InterferenceGraph};

/// Anything that can score a full channel assignment.
pub trait ThroughputModel {
    /// Number of APs.
    fn n_aps(&self) -> usize;

    /// Predicted long-term throughput of one AP's cell under a full
    /// network assignment (bits/s).
    fn ap_throughput_bps(&self, ap: ApId, assignments: &[ChannelAssignment]) -> f64;

    /// Predicted aggregate network throughput `Y = Σ X_i` (bits/s) — the
    /// objective of Eq. 5.
    fn total_bps(&self, assignments: &[ChannelAssignment]) -> f64 {
        (0..self.n_aps())
            .map(|i| self.ap_throughput_bps(ApId(i), assignments))
            .sum()
    }
}

/// One client as the model sees it: its 20 MHz-referenced SNR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientSnr {
    /// Global client index (for bookkeeping; not used in the math).
    pub client: usize,
    /// Per-subcarrier SNR the client would see on a 20 MHz channel (dB).
    pub snr20_db: f64,
}

/// The concrete model: interference graph + per-cell client SNRs +
/// estimator.
///
/// A cell's throughput at a width is independent of the rest of the
/// assignment and *linear* in the access share `M` (`X = M·K·L/ATD`), so
/// the model memoizes the `M = 1` value per (AP, width) — Algorithm 2
/// evaluates `total_bps` thousands of times per run and would otherwise
/// re-derive every client's MCS/PER pipeline each time. The cache is
/// invalidated implicitly by construction: configure `estimator` /
/// `payload_bytes` *before* the first throughput query (the controller
/// does).
#[derive(Debug, Clone)]
pub struct NetworkModel {
    /// AP-level interference graph (footnote 5 semantics).
    pub graph: InterferenceGraph,
    /// Clients associated with each AP.
    pub cells: Vec<Vec<ClientSnr>>,
    /// The §4.2 link-quality estimator.
    pub estimator: LinkQualityEstimator,
    /// Payload size for airtime accounting (bytes).
    pub payload_bytes: u32,
    /// Memoized `M = 1` cell throughput per (AP, width).
    cell_cache: std::cell::RefCell<std::collections::HashMap<(usize, ChannelWidth), f64>>,
}

impl NetworkModel {
    /// Creates a model; `cells[i]` lists AP i's associated clients.
    pub fn new(graph: InterferenceGraph, cells: Vec<Vec<ClientSnr>>) -> NetworkModel {
        assert_eq!(graph.len(), cells.len(), "one cell per AP");
        NetworkModel {
            graph,
            cells,
            estimator: LinkQualityEstimator::default(),
            payload_bytes: 1500,
            cell_cache: std::cell::RefCell::new(std::collections::HashMap::new()),
        }
    }

    /// Drops the memoized cell throughputs. Call after mutating
    /// `estimator`, `payload_bytes` or `cells` post-first-use.
    pub fn invalidate_cache(&mut self) {
        self.cell_cache.borrow_mut().clear();
    }

    /// Predicts the MAC-layer operating point of a client at a width.
    pub fn client_link(&self, snr20_db: f64, width: ChannelWidth) -> ClientLink {
        let est = self.estimator.estimate(snr20_db, ChannelWidth::Ht20);
        let point = est.rate_point(width);
        ClientLink {
            rate_bps: point.mcs.mcs().rate_bps(width, self.estimator.gi),
            per: point.per,
        }
    }

    /// The cell's airtime accounting at a width.
    pub fn cell_airtime(&self, ap: ApId, width: ChannelWidth) -> CellAirtime {
        let links: Vec<ClientLink> = self.cells[ap.0]
            .iter()
            .map(|c| self.client_link(c.snr20_db, width))
            .collect();
        CellAirtime::new(&links, self.payload_bytes)
    }

    /// Isolated (contention-free) cell throughput at a width — the
    /// `X_i^{isol-20/40}` of the NP-completeness argument and Fig. 14's
    /// `Y*` calibration.
    pub fn isolated_throughput_bps(&self, ap: ApId, width: ChannelWidth) -> f64 {
        self.cell_airtime(ap, width).cell_throughput_bps(1.0)
    }

    /// `X_i^{isol} = max(X_i^{isol-20}, X_i^{isol-40})`.
    pub fn isolated_best_bps(&self, ap: ApId) -> f64 {
        self.isolated_throughput_bps(ap, ChannelWidth::Ht20)
            .max(self.isolated_throughput_bps(ap, ChannelWidth::Ht40))
    }
}

impl ThroughputModel for NetworkModel {
    fn n_aps(&self) -> usize {
        self.graph.len()
    }

    fn ap_throughput_bps(&self, ap: ApId, assignments: &[ChannelAssignment]) -> f64 {
        let m = access_share(&self.graph, assignments, ap);
        let width = assignments[ap.0].width();
        let base = {
            let cache = self.cell_cache.borrow();
            cache.get(&(ap.0, width)).copied()
        };
        let base = match base {
            Some(v) => v,
            None => {
                let v = self.cell_airtime(ap, width).cell_throughput_bps(1.0);
                self.cell_cache.borrow_mut().insert((ap.0, width), v);
                v
            }
        };
        m.clamp(0.0, 1.0) * base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorn_topology::Channel20;

    fn single(c: u8) -> ChannelAssignment {
        ChannelAssignment::Single(Channel20(c))
    }

    fn bonded(c: u8) -> ChannelAssignment {
        ChannelAssignment::bonded(Channel20(c)).unwrap()
    }

    fn two_ap_model(snrs_a: &[f64], snrs_b: &[f64], connected: bool) -> NetworkModel {
        let graph = if connected {
            InterferenceGraph::complete(2)
        } else {
            InterferenceGraph::new(2)
        };
        let mk = |snrs: &[f64]| {
            snrs.iter()
                .enumerate()
                .map(|(i, &s)| ClientSnr {
                    client: i,
                    snr20_db: s,
                })
                .collect()
        };
        NetworkModel::new(graph, vec![mk(snrs_a), mk(snrs_b)])
    }

    #[test]
    fn strong_cell_prefers_bonding() {
        let m = two_ap_model(&[32.0, 30.0], &[], false);
        let t20 = m.isolated_throughput_bps(ApId(0), ChannelWidth::Ht20);
        let t40 = m.isolated_throughput_bps(ApId(0), ChannelWidth::Ht40);
        assert!(t40 > 1.3 * t20, "t20 {t20:.3e} t40 {t40:.3e}");
    }

    #[test]
    fn weak_cell_prefers_20mhz() {
        let m = two_ap_model(&[1.0], &[], false);
        let t20 = m.isolated_throughput_bps(ApId(0), ChannelWidth::Ht20);
        let t40 = m.isolated_throughput_bps(ApId(0), ChannelWidth::Ht40);
        assert!(t20 > t40, "t20 {t20:.3e} t40 {t40:.3e}");
    }

    #[test]
    fn contention_halves_cochannel_throughput() {
        let m = two_ap_model(&[25.0], &[25.0], true);
        let same = vec![single(0), single(0)];
        let diff = vec![single(0), single(1)];
        let y_same = m.total_bps(&same);
        let y_diff = m.total_bps(&diff);
        assert!((y_same * 2.0 - y_diff).abs() / y_diff < 1e-9);
    }

    #[test]
    fn bonded_overlap_contends() {
        // AP 0 bonded on {0,1}, AP 1 single on 1 → both share the medium.
        let m = two_ap_model(&[25.0], &[25.0], true);
        let overlap = vec![bonded(0), single(1)];
        let x1 = m.ap_throughput_bps(ApId(1), &overlap);
        let clear = vec![bonded(0), single(2)];
        let x1_clear = m.ap_throughput_bps(ApId(1), &clear);
        assert!((x1 * 2.0 - x1_clear).abs() / x1_clear < 1e-9);
    }

    #[test]
    fn isolated_best_picks_the_right_width() {
        let m = two_ap_model(&[32.0], &[1.0], false);
        assert_eq!(
            m.isolated_best_bps(ApId(0)),
            m.isolated_throughput_bps(ApId(0), ChannelWidth::Ht40)
        );
        assert_eq!(
            m.isolated_best_bps(ApId(1)),
            m.isolated_throughput_bps(ApId(1), ChannelWidth::Ht20)
        );
    }

    #[test]
    fn poor_client_drags_down_a_bonded_cell() {
        // The anomaly + CB interaction at the heart of the paper: a strong
        // cell loses more from one poor client at 40 MHz than at 20 MHz.
        let strong = two_ap_model(&[30.0, 30.0], &[], false);
        let mixed = two_ap_model(&[30.0, 30.0, 2.0], &[], false);
        let loss_at = |width| {
            mixed.isolated_throughput_bps(ApId(0), width)
                / strong.isolated_throughput_bps(ApId(0), width)
        };
        assert!(
            loss_at(ChannelWidth::Ht40) < loss_at(ChannelWidth::Ht20),
            "40 MHz should suffer relatively more: {} vs {}",
            loss_at(ChannelWidth::Ht40),
            loss_at(ChannelWidth::Ht20)
        );
    }

    #[test]
    fn empty_cell_contributes_zero() {
        let m = two_ap_model(&[], &[20.0], false);
        let a = vec![single(0), single(1)];
        assert_eq!(m.ap_throughput_bps(ApId(0), &a), 0.0);
        assert!(m.total_bps(&a) > 0.0);
    }

    #[test]
    #[should_panic(expected = "one cell per AP")]
    fn mismatched_cells_panic() {
        NetworkModel::new(InterferenceGraph::new(2), vec![vec![]]);
    }
}
