//! Algorithm 1 — ACORN's network-aware user association.
//!
//! A newly arriving client `u` with candidate AP set `A_u` computes, for
//! every candidate `i`:
//!
//! ```text
//! X_{w,u}^i  = M_i / ATD_i            (per-client throughput with u)
//! X_{wo,u}^i = M_i / (ATD_i − d_u^i)  (per-client throughput without u)
//!
//! U_assoc(u, i) = K_i·X_{w,u}^i + Σ_{j ∈ A_u, j≠i} (K_j − 1)·X_{wo,u}^j
//! ```
//!
//! and associates with the argmax. The utility is the predicted *total
//! network throughput* if `u` joins cell `i`: the first term is cell `i`'s
//! aggregate including `u`; each remaining term is cell `j`'s aggregate
//! after `u` declines it. The effect (§4.1): a poor client gravitates to
//! an AP already serving similar-quality clients, minimizing the
//! network-wide damage of the 802.11 performance anomaly, while good
//! clients simply pick their best AP.
//!
//! All quantities come out of the modified beacons plus the client's own
//! probed delay `d_u^i`, exactly as the paper's Click implementation does.
//!
//! ## NaN policy
//!
//! Fault injection can push NaN measurements into the beacon fields, and
//! a NaN can survive into a utility (e.g. a NaN `M_i` multiplied by a
//! zero client count is still NaN). The argmax therefore runs under a
//! documented deterministic policy, [`screen_score`]: a NaN score is
//! **least preferred** (screened to `-∞`) and counted, comparison uses
//! `f64::total_cmp` (a total order — no `partial_cmp` escape hatch), and
//! ties keep the earliest candidate. When *every* score is NaN the
//! choice degrades to the earliest candidate rather than becoming
//! candidate-order-dependent, which is what the old
//! `partial_cmp(..).unwrap_or(Equal)` comparator silently was.

use acorn_obs::{names, NullSink, Sink};
use acorn_topology::ApId;
use std::cmp::Ordering;

/// Everything the client knows about one candidate AP after probing it:
/// the beacon contents *with the client provisionally counted in*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The candidate AP.
    pub ap: ApId,
    /// `K_i` — number of associated clients *including u*.
    pub k_including_u: usize,
    /// `M_i` — the AP's channel-access share.
    pub access_share: f64,
    /// `ATD_i` — aggregate transmission delay *including u's delay*
    /// (seconds).
    pub atd_including_u_s: f64,
    /// `d_u^i` — u's own delivery delay at this AP (seconds).
    pub delay_u_s: f64,
}

impl Candidate {
    /// `X_{w,u}` — per-client throughput with u associated, in packets/s
    /// (the payload factor is common to all terms and cancels in the
    /// argmax).
    pub fn x_with(&self) -> f64 {
        safe_div(self.access_share, self.atd_including_u_s)
    }

    /// `X_{wo,u}` — per-client throughput without u.
    pub fn x_without(&self) -> f64 {
        safe_div(self.access_share, self.atd_including_u_s - self.delay_u_s)
    }
}

fn safe_div(num: f64, den: f64) -> f64 {
    if den.is_finite() && den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// Evaluates `U_assoc(u, i)` for `choice` being an index into
/// `candidates` (Eq. 4).
pub fn utility(candidates: &[Candidate], choice: usize) -> f64 {
    let mut u = 0.0;
    for (j, cand) in candidates.iter().enumerate() {
        if j == choice {
            u += cand.k_including_u as f64 * cand.x_with();
        } else {
            // K_j includes u by definition; the cell without u serves
            // K_j − 1 clients.
            u += (cand.k_including_u.saturating_sub(1)) as f64 * cand.x_without();
        }
    }
    u
}

/// The association NaN policy: a NaN score is least preferred. Screens
/// NaN to `-∞` (every real score, including `-∞` itself, then orders at
/// or above it under `total_cmp`, and an all-NaN field degrades to the
/// earliest candidate); anything else passes through untouched.
#[inline]
pub fn screen_score(score: f64) -> f64 {
    if score.is_nan() {
        f64::NEG_INFINITY
    } else {
        score
    }
}

/// Single-pass argmax under the NaN policy: scores are screened through
/// [`screen_score`], compared with `f64::total_cmp`, and the incumbent
/// is replaced only on a *strictly greater* score — so the earliest
/// maximal candidate wins every tie by construction (no `max_by`
/// last-maximal subtlety to invert).
fn choose_by_score<S: Sink>(
    n: usize,
    sink: &S,
    mut score: impl FnMut(usize) -> f64,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    let mut nans = 0u64;
    for i in 0..n {
        let raw = score(i);
        if raw.is_nan() {
            nans += 1;
        }
        let s = screen_score(raw);
        match best {
            Some((_, b)) if s.total_cmp(&b) != Ordering::Greater => {}
            _ => best = Some((i, s)),
        }
    }
    if sink.enabled() {
        sink.inc(names::ASSOC_CHOICES);
        sink.add(names::ASSOC_CANDIDATES, n as u64);
        sink.add(names::ASSOC_NAN_UTILITIES, nans);
    }
    best.map(|(i, _)| i)
}

/// Algorithm 1: returns the index of the utility-maximizing candidate, or
/// `None` for an empty candidate set. Ties break toward the earlier
/// candidate (stable); NaN utilities follow the module-level NaN policy.
pub fn choose_ap(candidates: &[Candidate]) -> Option<usize> {
    choose_ap_obs(candidates, &NullSink)
}

/// [`choose_ap`] reporting into a metric sink: `assoc.choices`,
/// `assoc.candidates`, and `assoc.nan_utilities` counters.
pub fn choose_ap_obs<S: Sink>(candidates: &[Candidate], sink: &S) -> Option<usize> {
    choose_by_score(candidates.len(), sink, |i| utility(candidates, i))
}

/// Greedy/selfish baseline for comparison and ablations: pick the AP
/// maximizing only u's own throughput `X_{w,u}` — ignoring collateral
/// damage to neighbouring cells. Same tie-break and NaN policy as
/// [`choose_ap`].
pub fn choose_ap_selfish(candidates: &[Candidate]) -> Option<usize> {
    choose_ap_selfish_obs(candidates, &NullSink)
}

/// [`choose_ap_selfish`] reporting into a metric sink.
pub fn choose_ap_selfish_obs<S: Sink>(candidates: &[Candidate], sink: &S) -> Option<usize> {
    choose_by_score(candidates.len(), sink, |i| candidates[i].x_with())
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorn_obs::RecordingSink;

    fn cand(ap: usize, k: usize, m: f64, atd: f64, du: f64) -> Candidate {
        Candidate {
            ap: ApId(ap),
            k_including_u: k,
            access_share: m,
            atd_including_u_s: atd,
            delay_u_s: du,
        }
    }

    #[test]
    fn empty_candidates_yield_none() {
        assert_eq!(choose_ap(&[]), None);
        assert_eq!(choose_ap_selfish(&[]), None);
    }

    #[test]
    fn single_candidate_is_chosen() {
        let c = [cand(0, 1, 1.0, 0.01, 0.01)];
        assert_eq!(choose_ap(&c), Some(0));
    }

    #[test]
    fn x_terms_match_definitions() {
        let c = cand(0, 3, 0.5, 0.030, 0.010);
        assert!((c.x_with() - 0.5 / 0.030).abs() < 1e-9);
        assert!((c.x_without() - 0.5 / 0.020).abs() < 1e-9);
    }

    #[test]
    fn degenerate_delays_are_safe() {
        // u is the only client and its delay equals ATD → "without u" the
        // cell is empty; the term must be 0, not ∞.
        let c = cand(0, 1, 1.0, 0.02, 0.02);
        assert_eq!(c.x_without(), 0.0);
        // Dead link: infinite ATD → both terms zero.
        let dead = cand(0, 2, 1.0, f64::INFINITY, f64::INFINITY);
        assert_eq!(dead.x_with(), 0.0);
        assert_eq!(dead.x_without(), 0.0);
    }

    #[test]
    fn poor_client_joins_the_poor_cell() {
        // AP 0 serves two good clients (small delays); AP 1 serves two
        // poor clients (large delays). A poor arriving client u (large
        // delay at both) must pick AP 1: joining AP 0 would wreck two good
        // clients' throughput via the anomaly.
        let d_good = 0.002; // 2 ms per delivered packet
        let d_poor = 0.020;
        let c = [
            cand(0, 3, 1.0, 2.0 * d_good + d_poor, d_poor),
            cand(1, 3, 1.0, 2.0 * d_poor + d_poor, d_poor),
        ];
        assert_eq!(choose_ap(&c), Some(1));
        // The selfish rule picks AP 0 (better personal throughput) —
        // exactly the failure mode ACORN's utility avoids.
        assert_eq!(choose_ap_selfish(&c), Some(0));
    }

    #[test]
    fn good_client_joins_its_best_ap() {
        // A good client picks the AP where it (and the network) does best;
        // with identical neighbours that is the one with the smaller ATD.
        let d_u = 0.002;
        let c = [
            cand(0, 2, 1.0, 0.004 + d_u, d_u), // one good client + u
            cand(1, 2, 1.0, 0.020 + d_u, d_u), // one poor client + u
        ];
        assert_eq!(choose_ap(&c), Some(0));
    }

    #[test]
    fn contended_ap_is_less_attractive() {
        // u would be the only client of either AP; AP 1 only has half the
        // medium, so the uncontended AP 0 wins.
        let d = 0.004;
        let c = [cand(0, 1, 1.0, d, d), cand(1, 1, 0.5, d, d)];
        assert!(utility(&c, 0) > utility(&c, 1));
        assert_eq!(choose_ap(&c), Some(0));
    }

    #[test]
    fn utility_is_total_network_throughput_shaped() {
        // Utility of choosing i must equal cell i's aggregate with u plus
        // the other cells' aggregates without u.
        let c = [cand(0, 2, 1.0, 0.010, 0.004), cand(1, 4, 0.5, 0.040, 0.010)];
        let u0 = utility(&c, 0);
        let manual = 2.0 * (1.0 / 0.010) + 3.0 * (0.5 / 0.030);
        assert!((u0 - manual).abs() < 1e-9);
    }

    #[test]
    fn ties_break_stably() {
        let d = 0.005;
        let c = [cand(7, 2, 1.0, 2.0 * d, d), cand(9, 2, 1.0, 2.0 * d, d)];
        assert_eq!(choose_ap(&c), Some(0));
    }

    #[test]
    fn all_nan_utilities_degrade_to_earliest_candidate() {
        // A NaN access share poisons every utility (its cell contributes
        // a `(K−1) · NaN = NaN` term to the other choices too), which is
        // the realistic fault-injection shape. The policy pins the winner
        // to the earliest candidate instead of leaving it
        // order-dependent.
        let nan = cand(3, 2, f64::NAN, 0.02, 0.01);
        let ok = cand(5, 2, 1.0, 0.02, 0.01);
        assert!(utility(&[nan, ok], 0).is_nan());
        assert!(utility(&[nan, ok], 1).is_nan());
        assert_eq!(choose_ap(&[nan, ok]), Some(0));
        assert_eq!(choose_ap(&[ok, nan]), Some(0));
    }

    #[test]
    fn selfish_rule_never_picks_a_nan_score_over_a_real_one() {
        // The selfish score is per-candidate, so a NaN can be isolated:
        // it must lose to any real score, whatever the candidate order.
        let nan = cand(3, 1, f64::NAN, 0.01, 0.01);
        let ok = cand(5, 1, 1.0, 0.01, 0.01);
        assert_eq!(choose_ap_selfish(&[nan, ok]), Some(1));
        assert_eq!(choose_ap_selfish(&[ok, nan]), Some(0));
    }

    #[test]
    fn screen_score_policy_shape() {
        assert_eq!(screen_score(f64::NAN), f64::NEG_INFINITY);
        assert_eq!(screen_score(1.5), 1.5);
        assert_eq!(screen_score(f64::NEG_INFINITY), f64::NEG_INFINITY);
    }

    #[test]
    fn obs_variant_counts_choices_candidates_and_nans() {
        let sink = RecordingSink::new();
        let nan = cand(3, 1, f64::NAN, 0.01, 0.01);
        let ok = cand(5, 1, 1.0, 0.01, 0.01);
        choose_ap_selfish_obs(&[nan, ok], &sink);
        choose_ap_obs(&[ok], &sink);
        sink.with_telemetry(|t| {
            assert_eq!(t.counter(names::ASSOC_CHOICES), 2);
            assert_eq!(t.counter(names::ASSOC_CANDIDATES), 3);
            assert_eq!(t.counter(names::ASSOC_NAN_UTILITIES), 1);
        });
    }

    #[test]
    fn obs_variant_matches_plain_variant() {
        let sink = RecordingSink::new();
        let cases = [
            vec![],
            vec![cand(0, 1, 1.0, 0.01, 0.01)],
            vec![cand(0, 2, 1.0, 0.01, 0.002), cand(1, 3, 0.5, 0.04, 0.01)],
            vec![
                cand(0, 1, f64::NAN, 0.01, 0.01),
                cand(1, 1, 1.0, 0.01, 0.01),
            ],
        ];
        for c in &cases {
            assert_eq!(choose_ap(c), choose_ap_obs(c, &sink));
            assert_eq!(choose_ap_selfish(c), choose_ap_selfish_obs(c, &sink));
        }
    }
}
