//! The ACORN controller: the glue that runs Algorithms 1 and 2 over a live
//! deployment (Fig. 7's two coupled modules), plus the opportunistic
//! width adaptation used with mobile clients (§5.2).
//!
//! Lifecycle, as in the paper's Click implementation:
//! * APs periodically emit modified beacons ([`AcornController::beacons`]).
//! * An arriving client probes every in-range AP, builds its candidate
//!   set, and associates per Algorithm 1
//!   ([`AcornController::associate`]).
//! * Every `T` = 30 minutes (from the Fig. 9 trace analysis) the
//!   controller re-runs Algorithm 2 ([`AcornController::reallocate`]).
//! * Between re-allocations, an AP holding a bonded channel may
//!   *opportunistically* fall back to one of its two 20 MHz members when
//!   its clients' link qualities degrade, "\[s\]ince the other APs choose
//!   their frequencies based on the channels assigned to this particular
//!   AP, using either of the two 20 MHz channels will not change the
//!   interference on the neighboring APs"
//!   ([`AcornController::adapt_widths`]).

use crate::allocation::{
    allocate_obs, allocate_shard_slice_obs, allocate_sharded_with_restarts_obs,
    allocate_with_restarts_obs, random_initial, AllocationConfig, AllocationResult,
};
use crate::association::{choose_ap_obs, Candidate};
use crate::beacon::Beacon;
use crate::model::{ClientSnr, NetworkModel};
use acorn_mac::contention::access_share;
use acorn_mac::timing::delivery_delay_s;
use acorn_obs::{names, NullSink, Sink};
use acorn_phy::estimator::LinkQualityEstimator;
use acorn_phy::{ChannelWidth, GoodputTable};
use acorn_topology::{ApId, ChannelAssignment, ChannelPlan, ClientId, Wlan};
use acorn_traces::REALLOCATION_PERIOD_S;
use std::sync::Arc;

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcornConfig {
    /// Available channel plan.
    pub plan: ChannelPlan,
    /// The §4.2 link-quality estimator.
    pub estimator: LinkQualityEstimator,
    /// Payload size for all airtime accounting (bytes).
    pub payload_bytes: u32,
    /// Algorithm 2 knobs.
    pub allocation: AllocationConfig,
    /// Minimum HT20 SNR (dB) for an AP to enter a client's candidate set
    /// `A_u` (below this, association/probing is not viable).
    pub association_snr_floor_db: f64,
    /// Channel re-allocation period `T` (seconds); the paper derives
    /// 30 minutes from the CRAWDAD trace.
    pub reallocation_period_s: f64,
    /// Relative hysteresis margin for the opportunistic width adaptation
    /// ([`AcornController::adapt_widths`]): a bonded AP switches its
    /// operating width only when the other width's predicted cell
    /// throughput exceeds the *current* width's by more than this
    /// fraction. `0.0` reproduces the paper's memoryless `t40 ≥ t20`
    /// comparison; the default 5 % keeps a client oscillating around the
    /// CB crossover SNR from flapping the cell width on consecutive
    /// events.
    pub width_hysteresis: f64,
}

impl Default for AcornConfig {
    fn default() -> Self {
        AcornConfig {
            plan: ChannelPlan::full_5ghz(),
            estimator: LinkQualityEstimator::default(),
            payload_bytes: 1500,
            allocation: AllocationConfig::default(),
            association_snr_floor_db: -3.0,
            reallocation_period_s: REALLOCATION_PERIOD_S,
            width_hysteresis: 0.05,
        }
    }
}

/// Mutable network state the controller maintains.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkState {
    /// Channel assignment per AP (Algorithm 2's output `F`).
    pub assignments: Vec<ChannelAssignment>,
    /// Association per client (`None` = not associated).
    pub assoc: Vec<Option<ApId>>,
    /// The width each AP currently *operates* at — equal to its
    /// assignment's width, except when a bonded AP has opportunistically
    /// fallen back to 20 MHz.
    pub operating_width: Vec<ChannelWidth>,
}

impl NetworkState {
    /// The assignment an AP is effectively using right now (assignment
    /// narrowed to its primary 20 MHz channel during fallback).
    pub fn effective_assignment(&self, ap: ApId) -> ChannelAssignment {
        let a = self.assignments[ap.0];
        match self.operating_width[ap.0] {
            ChannelWidth::Ht40 => a,
            ChannelWidth::Ht20 => a.fallback_20(),
        }
    }

    /// All effective assignments.
    pub fn effective_assignments(&self) -> Vec<ChannelAssignment> {
        (0..self.assignments.len())
            .map(|i| self.effective_assignment(ApId(i)))
            .collect()
    }

    /// Clients associated with `ap`.
    pub fn cell_clients(&self, ap: ApId) -> Vec<ClientId> {
        self.assoc
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == Some(ap))
            .map(|(c, _)| ClientId(c))
            .collect()
    }
}

/// The ACORN controller.
#[derive(Debug, Clone)]
pub struct AcornController {
    /// Configuration.
    pub config: AcornConfig,
    /// Optional memoized goodput table shared with every model this
    /// controller builds (and with any other controller clone). `None`
    /// keeps the exact per-call estimator pipeline.
    table: Option<Arc<GoodputTable>>,
}

impl AcornController {
    /// Creates a controller using the exact estimator pipeline.
    pub fn new(config: AcornConfig) -> AcornController {
        AcornController {
            config,
            table: None,
        }
    }

    /// Creates a controller that answers SNR → goodput queries from a
    /// shared memoized [`GoodputTable`]. The config's estimator is
    /// replaced by the table's own, so the table and every fallback path
    /// agree on calibration, GI and fading parameters.
    pub fn with_table(mut config: AcornConfig, table: Arc<GoodputTable>) -> AcornController {
        config.estimator = *table.estimator();
        AcornController {
            config,
            table: Some(table),
        }
    }

    /// The attached goodput table, if any.
    pub fn table(&self) -> Option<&Arc<GoodputTable>> {
        self.table.as_ref()
    }

    /// Fresh state: random channels (the Algorithm 2 starting point), no
    /// associations, full-width operation.
    pub fn new_state(&self, wlan: &Wlan, seed: u64) -> NetworkState {
        let assignments = random_initial(&self.config.plan, wlan.aps.len(), seed);
        let operating_width = assignments.iter().map(|a| a.width()).collect();
        NetworkState {
            assignments,
            operating_width,
            assoc: vec![None; wlan.clients.len()],
        }
    }

    /// Builds the throughput model for the current association, using
    /// *effective* assignments' interference semantics.
    pub fn build_model(&self, wlan: &Wlan, state: &NetworkState) -> NetworkModel {
        let graph = wlan.interference_graph(&state.assoc);
        let cells: Vec<Vec<ClientSnr>> = (0..wlan.aps.len())
            .map(|i| {
                state
                    .cell_clients(ApId(i))
                    .into_iter()
                    .map(|c| ClientSnr {
                        client: c.0,
                        snr20_db: wlan.snr_db(ApId(i), c, ChannelWidth::Ht20),
                    })
                    .collect()
            })
            .collect();
        match &self.table {
            Some(t) => {
                NetworkModel::with_table(graph, cells, Arc::clone(t), self.config.payload_bytes)
            }
            None => NetworkModel::with_config(
                graph,
                cells,
                self.config.estimator,
                self.config.payload_bytes,
            ),
        }
    }

    /// Current beacons of all APs.
    pub fn beacons(&self, wlan: &Wlan, state: &NetworkState) -> Vec<Beacon> {
        let model = self.build_model(wlan, state);
        let eff = state.effective_assignments();
        (0..wlan.aps.len())
            .map(|i| {
                let ap = ApId(i);
                let airtime = model.cell_airtime(ap, state.operating_width[i]);
                let m = access_share(&model.graph, &eff, ap);
                Beacon::from_airtime(ap, eff[i], &airtime, m)
            })
            .collect()
    }

    /// The delivery delay the §4.2 pipeline predicts for a link with the
    /// given 20 MHz-referenced SNR, at a width — the per-client `d_u`
    /// ACORN beacons advertise.
    pub fn delay_from_snr(&self, snr20_db: f64, width: ChannelWidth) -> f64 {
        let est = match &self.table {
            Some(t) => t.estimate(snr20_db, ChannelWidth::Ht20),
            None => self.config.estimator.estimate(snr20_db, ChannelWidth::Ht20),
        };
        let point = est.rate_point(width);
        delivery_delay_s(
            self.config.payload_bytes,
            point.mcs.mcs().rate_bps(width, self.config.estimator.gi),
            point.per,
        )
    }

    /// The advertised delay for a *tracked* link at the controller
    /// boundary: the staleness-gated EWMA estimate feeds the §4.2
    /// pipeline, and a stale link degrades to `∞` (`u32::MAX` µs on the
    /// wire) — a link the controller has not heard from recently must
    /// never be advertised at its last confident value.
    pub fn tracked_delay_s(
        &self,
        tracker: &crate::tracker::ClientTracker,
        now_s: f64,
        width: ChannelWidth,
    ) -> f64 {
        match tracker.fresh_snr_db(now_s) {
            Some(snr20) => self.delay_from_snr(snr20, width),
            None => f64::INFINITY,
        }
    }

    /// The client's probed delay at an AP operating at a width.
    fn client_delay_s(&self, wlan: &Wlan, ap: ApId, client: ClientId, width: ChannelWidth) -> f64 {
        let snr20 = wlan.snr_db(ap, client, ChannelWidth::Ht20);
        self.delay_from_snr(snr20, width)
    }

    /// Builds client `u`'s candidate set (its view after probing every
    /// in-range AP): beacon contents with `u` provisionally counted in.
    pub fn candidates_for(
        &self,
        wlan: &Wlan,
        state: &NetworkState,
        client: ClientId,
    ) -> Vec<Candidate> {
        let beacons = self.beacons(wlan, state);
        let mut out = Vec::new();
        for (i, b) in beacons.iter().enumerate() {
            let ap = ApId(i);
            let snr20 = wlan.snr_db(ap, client, ChannelWidth::Ht20);
            if snr20 < self.config.association_snr_floor_db {
                continue;
            }
            let width = state.operating_width[i];
            let d_u = self.client_delay_s(wlan, ap, client, width);
            out.push(Candidate {
                ap,
                k_including_u: b.n_clients + 1,
                access_share: b.access_share,
                atd_including_u_s: b.atd_s + d_u,
                delay_u_s: d_u,
            });
        }
        out
    }

    /// Algorithm 1: associates `client`, mutating the state. Returns the
    /// chosen AP, or `None` if no AP is in range.
    pub fn associate(
        &self,
        wlan: &Wlan,
        state: &mut NetworkState,
        client: ClientId,
    ) -> Option<ApId> {
        self.associate_obs(wlan, state, client, &NullSink)
    }

    /// [`AcornController::associate`] reporting candidate-ranking metrics
    /// (`assoc.*`) into a sink.
    pub fn associate_obs<S: Sink>(
        &self,
        wlan: &Wlan,
        state: &mut NetworkState,
        client: ClientId,
        sink: &S,
    ) -> Option<ApId> {
        let candidates = self.candidates_for(wlan, state, client);
        let choice = choose_ap_obs(&candidates, sink)?;
        let ap = candidates[choice].ap;
        state.assoc[client.0] = Some(ap);
        Some(ap)
    }

    /// Removes a departing client.
    pub fn deassociate(&self, state: &mut NetworkState, client: ClientId) {
        state.assoc[client.0] = None;
    }

    /// Algorithm 2: re-allocates channels from the current assignment,
    /// mutating the state (and resetting opportunistic widths to the new
    /// assignments' full widths).
    pub fn reallocate(&self, wlan: &Wlan, state: &mut NetworkState) -> AllocationResult {
        self.reallocate_obs(wlan, state, &NullSink)
    }

    /// [`AcornController::reallocate`] reporting into a metric sink: the
    /// `alloc.*` run counters, the model's `model.*` evaluation counters
    /// (flushed sequentially after the run), a `controller.obs_epochs`
    /// counter, and a `controller.total_bps` gauge.
    pub fn reallocate_obs<S: Sink + Sync>(
        &self,
        wlan: &Wlan,
        state: &mut NetworkState,
        sink: &S,
    ) -> AllocationResult {
        let model = self.build_model(wlan, state);
        let result = allocate_obs(
            &model,
            &self.config.plan,
            state.assignments.clone(),
            &self.config.allocation,
            sink,
        );
        state.assignments = result.assignments.clone();
        state.operating_width = state.assignments.iter().map(|a| a.width()).collect();
        self.finish_epoch_obs(&model, result.total_bps, sink);
        result
    }

    /// Like [`AcornController::reallocate`], but hedged with `restarts`
    /// random initial assignments (keeping the best outcome) — the
    /// configuration the evaluation harness uses, since single greedy runs
    /// can stall in local optima.
    pub fn reallocate_with_restarts(
        &self,
        wlan: &Wlan,
        state: &mut NetworkState,
        restarts: usize,
        seed: u64,
    ) -> AllocationResult {
        self.reallocate_with_restarts_obs(wlan, state, restarts, seed, &NullSink)
    }

    /// [`AcornController::reallocate_with_restarts`] reporting into a
    /// metric sink. The sink is shared across the restart fan-out
    /// (counters only there — commutative adds keep the totals
    /// thread-invariant); the model-stats flush and the epoch gauge run
    /// here, sequentially, after the fan-out has joined.
    pub fn reallocate_with_restarts_obs<S: Sink + Sync>(
        &self,
        wlan: &Wlan,
        state: &mut NetworkState,
        restarts: usize,
        seed: u64,
        sink: &S,
    ) -> AllocationResult {
        let model = self.build_model(wlan, state);
        // Include the current assignment as one starting point.
        let mut best = allocate_obs(
            &model,
            &self.config.plan,
            state.assignments.clone(),
            &self.config.allocation,
            sink,
        );
        let hedged = allocate_with_restarts_obs(
            &model,
            &self.config.plan,
            &self.config.allocation,
            restarts.max(1),
            seed,
            sink,
        );
        if hedged.total_bps > best.total_bps {
            best = hedged;
        }
        state.assignments = best.assignments.clone();
        state.operating_width = state.assignments.iter().map(|a| a.width()).collect();
        self.finish_epoch_obs(&model, best.total_bps, sink);
        best
    }

    /// Like [`AcornController::reallocate_with_restarts`], but running
    /// Algorithm 2 independently per connected component of the conflict
    /// graph through [`allocate_sharded_with_restarts_obs`] — the path
    /// city-scale deployments use, where the conflict graph splits into
    /// many distant islands. The current assignment seeds attempt 0 of
    /// every shard, so with `restarts = 0` on a connected graph this is
    /// the plain greedy continuation.
    pub fn reallocate_sharded_with_restarts(
        &self,
        wlan: &Wlan,
        state: &mut NetworkState,
        restarts: usize,
        seed: u64,
    ) -> AllocationResult {
        self.reallocate_sharded_with_restarts_obs(wlan, state, restarts, seed, &NullSink)
    }

    /// [`AcornController::reallocate_sharded_with_restarts`] reporting
    /// into a metric sink (the `alloc.*` counters including
    /// `alloc.shards`, the model/table counters, and the epoch gauge).
    pub fn reallocate_sharded_with_restarts_obs<S: Sink + Sync>(
        &self,
        wlan: &Wlan,
        state: &mut NetworkState,
        restarts: usize,
        seed: u64,
        sink: &S,
    ) -> AllocationResult {
        let model = self.build_model(wlan, state);
        let best = allocate_sharded_with_restarts_obs(
            &model,
            &self.config.plan,
            state.assignments.clone(),
            &self.config.allocation,
            restarts,
            seed,
            sink,
        );
        state.assignments = best.assignments.clone();
        state.operating_width = state.assignments.iter().map(|a| a.width()).collect();
        self.finish_epoch_obs(&model, best.total_bps, sink);
        best
    }

    /// The canonical zone decomposition: the connected components of the
    /// interference graph under the current association, each sorted
    /// ascending and ordered by smallest vertex — exactly the component
    /// order [`allocate_sharded_with_restarts_obs`] shards over, so a
    /// zone's position in this list is the `shard_index` its zone-view
    /// reallocation must replay.
    pub fn zones(&self, wlan: &Wlan, state: &NetworkState) -> Vec<Vec<usize>> {
        wlan.interference_graph(&state.assoc).connected_components()
    }

    /// Zone view of Algorithm 2: re-allocates only the APs in `nodes`
    /// (one connected component, ascending global ids), mutating just
    /// that slice of the state. `zone_model` must be the submodel for
    /// `nodes` ([`NetworkModel::restrict`] of the full model, or an
    /// equivalently built zone-local model) and `shard_index` the zone's
    /// position in [`AcornController::zones`]. Given the same per-epoch
    /// `seed`, the slice this produces is bit-identical to what
    /// [`AcornController::reallocate_sharded_with_restarts`] assigns
    /// those APs — the golden-twin contract of the distributed control
    /// plane.
    #[allow(clippy::too_many_arguments)]
    pub fn reallocate_zone_obs<S: Sink + Sync>(
        &self,
        zone_model: &NetworkModel,
        state: &mut NetworkState,
        nodes: &[usize],
        shard_index: usize,
        restarts: usize,
        seed: u64,
        sink: &S,
    ) -> AllocationResult {
        let init: Vec<ChannelAssignment> = nodes.iter().map(|&n| state.assignments[n]).collect();
        let best = allocate_shard_slice_obs(
            zone_model,
            &self.config.plan,
            init,
            &self.config.allocation,
            restarts,
            seed,
            shard_index,
            sink,
        );
        for (local, &global) in nodes.iter().enumerate() {
            state.assignments[global] = best.assignments[local];
            state.operating_width[global] = best.assignments[local].width();
        }
        best
    }

    /// Sequential end-of-epoch reporting shared by the `reallocate*_obs`
    /// entry points.
    fn finish_epoch_obs<S: Sink>(&self, model: &NetworkModel, total_bps: f64, sink: &S) {
        if !sink.enabled() {
            return;
        }
        model.flush_stats_into(sink);
        sink.inc(names::CONTROLLER_EPOCHS);
        sink.gauge("controller.total_bps", total_bps);
    }

    /// Opportunistic width adaptation (§5.2): each bonded AP compares its
    /// predicted cell throughput at 40 MHz vs its 20 MHz fallback — at its
    /// *current* client SNRs — and operates at the better width. Single-
    /// channel APs are untouched.
    ///
    /// The comparison is *hysteretic*: the AP leaves its current
    /// operating width only when the alternative's predicted cell
    /// throughput beats the current one's by more than
    /// [`AcornConfig::width_hysteresis`] (a relative margin). A client
    /// whose SNR oscillates around the CB crossover therefore does **not**
    /// flap the cell width on consecutive events — both widths predict
    /// near-equal throughput inside the band, so the AP holds its current
    /// width until the link clearly favours the other one. With a margin
    /// of `0.0` this reduces to the paper's memoryless rule (`t40 ≥ t20`
    /// picks 40 MHz, ties included), which *does* flap under such
    /// oscillation. Re-allocation (`reallocate*`) resets every AP to its
    /// assignment's full width, re-arming the comparison each epoch.
    pub fn adapt_widths(&self, wlan: &Wlan, state: &mut NetworkState) {
        let model = self.build_model(wlan, state);
        let margin = self.config.width_hysteresis.max(0.0);
        for i in 0..state.assignments.len() {
            if state.assignments[i].width() != ChannelWidth::Ht40 {
                continue;
            }
            let ap = ApId(i);
            // Compare at equal access share: the fallback stays within the
            // bond, so neighbours' contention with this AP is unchanged.
            let t40 = model
                .cell_airtime(ap, ChannelWidth::Ht40)
                .cell_throughput_bps(1.0);
            let t20 = model
                .cell_airtime(ap, ChannelWidth::Ht20)
                .cell_throughput_bps(1.0);
            let (t_cur, t_alt, alt) = match state.operating_width[i] {
                ChannelWidth::Ht40 => (t40, t20, ChannelWidth::Ht20),
                ChannelWidth::Ht20 => (t20, t40, ChannelWidth::Ht40),
            };
            if margin == 0.0 {
                // Memoryless paper rule (ties prefer the bonded width).
                state.operating_width[i] = if t40 >= t20 {
                    ChannelWidth::Ht40
                } else {
                    ChannelWidth::Ht20
                };
            } else if t_alt > t_cur * (1.0 + margin) {
                state.operating_width[i] = alt;
            }
        }
    }

    /// Predicted throughput of one AP's cell under the current state
    /// (effective widths and contention).
    pub fn ap_throughput_bps(&self, wlan: &Wlan, state: &NetworkState, ap: ApId) -> f64 {
        let model = self.build_model(wlan, state);
        let eff = state.effective_assignments();
        let m = access_share(&model.graph, &eff, ap);
        model
            .cell_airtime(ap, state.operating_width[ap.0])
            .cell_throughput_bps(m)
    }

    /// Predicted aggregate network throughput under the current state.
    pub fn total_throughput_bps(&self, wlan: &Wlan, state: &NetworkState) -> f64 {
        (0..wlan.aps.len())
            .map(|i| self.ap_throughput_bps(wlan, state, ApId(i)))
            .sum()
    }

    /// Aggregate throughput counting only the APs marked up in `up`
    /// (missing entries count as up). With every AP up this is
    /// bit-identical to [`AcornController::total_throughput_bps`]: same
    /// per-AP terms, same summation order. A crashed AP's cell simply
    /// contributes zero — its orphaned clients are the fault layer's
    /// problem to re-associate.
    pub fn total_throughput_bps_up(&self, wlan: &Wlan, state: &NetworkState, up: &[bool]) -> f64 {
        (0..wlan.aps.len())
            .filter(|&i| up.get(i).copied().unwrap_or(true))
            .map(|i| self.ap_throughput_bps(wlan, state, ApId(i)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorn_topology::Point;

    /// Two APs 60 m apart; strong clients near the APs, one genuinely
    /// poor client far out (HT20 SNR ≈ 0 dB — the regime where the paper
    /// observes CB collapsing). Tx power is lowered to 5 dBm so the cell
    /// edge falls inside the test geometry.
    fn wlan() -> Wlan {
        let mut w = Wlan::new(
            vec![Point::new(0.0, 0.0), Point::new(60.0, 0.0)],
            vec![
                Point::new(3.0, 0.0),    // strong, near AP 0
                Point::new(5.0, 2.0),    // strong, near AP 0
                Point::new(57.0, 0.0),   // strong, near AP 1
                Point::new(-55.0, 65.0), // poor: ~85 m from AP 0
            ],
            11,
        );
        // No shadowing: the geometry should speak for itself in tests.
        w.pathloss.shadowing_sigma_db = 0.0;
        w.radio.tx_power_dbm = 5.0;
        w
    }

    fn controller() -> AcornController {
        AcornController::new(AcornConfig::default())
    }

    #[test]
    fn fresh_state_shape() {
        let w = wlan();
        let c = controller();
        let s = c.new_state(&w, 1);
        assert_eq!(s.assignments.len(), 2);
        assert_eq!(s.assoc.len(), 4);
        assert!(s.assoc.iter().all(|a| a.is_none()));
        for (a, w_) in s.assignments.iter().zip(&s.operating_width) {
            assert_eq!(a.width(), *w_);
        }
    }

    #[test]
    fn clients_associate_with_nearby_aps() {
        let w = wlan();
        let c = controller();
        let mut s = c.new_state(&w, 2);
        assert_eq!(c.associate(&w, &mut s, ClientId(0)), Some(ApId(0)));
        assert_eq!(c.associate(&w, &mut s, ClientId(2)), Some(ApId(1)));
    }

    #[test]
    fn beacons_track_association() {
        // Note: Eq. 4 maximizes *network* throughput, so two equal-quality
        // clients may legitimately spread across APs rather than share one
        // — we assert the accounting, not a specific split.
        let w = wlan();
        let c = controller();
        let mut s = c.new_state(&w, 3);
        c.associate(&w, &mut s, ClientId(0));
        c.associate(&w, &mut s, ClientId(1));
        let b = c.beacons(&w, &s);
        assert_eq!(b[0].n_clients + b[1].n_clients, 2);
        assert!(b.iter().all(|x| x.is_consistent()));
        // Delay lists follow the association.
        for (i, beacon) in b.iter().enumerate() {
            assert_eq!(beacon.n_clients, s.cell_clients(ApId(i)).len());
        }
    }

    #[test]
    fn out_of_range_client_gets_none() {
        let mut w = wlan();
        w.clients.push(acorn_topology::Client {
            pos: Point::new(5000.0, 5000.0),
        });
        let c = controller();
        let mut s = c.new_state(&w, 4);
        assert_eq!(c.associate(&w, &mut s, ClientId(4)), None);
        assert_eq!(s.assoc[4], None);
    }

    #[test]
    fn reallocation_never_hurts_and_separates_contenders() {
        let w = wlan();
        let c = controller();
        let mut s = c.new_state(&w, 5);
        for cl in 0..4 {
            c.associate(&w, &mut s, ClientId(cl));
        }
        let before = c.total_throughput_bps(&w, &s);
        let r = c.reallocate(&w, &mut s);
        let after = c.total_throughput_bps(&w, &s);
        assert!(
            after + 1.0 >= before,
            "before {before:.3e} after {after:.3e}"
        );
        assert!(r.total_bps > 0.0);
        // Plenty of channels: the two (interfering) APs must not overlap.
        assert!(!s.assignments[0].conflicts(s.assignments[1]));
    }

    #[test]
    fn adapt_widths_falls_back_when_a_poor_client_joins() {
        let w = wlan();
        let c = controller();
        let mut s = c.new_state(&w, 6);
        // Force AP 0 onto a bonded channel, strong clients only.
        s.assignments[0] = ChannelAssignment::bonded(acorn_topology::Channel20(0)).unwrap();
        s.operating_width[0] = ChannelWidth::Ht40;
        s.assoc[0] = Some(ApId(0));
        s.assoc[1] = Some(ApId(0));
        c.adapt_widths(&w, &mut s);
        assert_eq!(
            s.operating_width[0],
            ChannelWidth::Ht40,
            "strong cell keeps CB"
        );
        // Now the weak mid-field client joins: the cell should fall back.
        s.assoc[3] = Some(ApId(0));
        c.adapt_widths(&w, &mut s);
        assert_eq!(
            s.operating_width[0],
            ChannelWidth::Ht20,
            "poor client forces fallback"
        );
        // Fallback stays inside the assigned bond.
        let eff = s.effective_assignment(ApId(0));
        assert!(s.assignments[0]
            .occupied()
            .any(|ch| eff.occupied().next() == Some(ch)));
    }

    #[test]
    fn fallback_changes_effective_assignment_only() {
        let w = wlan();
        let c = controller();
        let mut s = c.new_state(&w, 7);
        s.assignments[0] = ChannelAssignment::bonded(acorn_topology::Channel20(2)).unwrap();
        s.operating_width[0] = ChannelWidth::Ht20;
        assert_eq!(s.effective_assignment(ApId(0)).width(), ChannelWidth::Ht20);
        // The underlying allocation is still the bond.
        assert_eq!(s.assignments[0].width(), ChannelWidth::Ht40);
    }

    /// Single bonded AP serving one client at distance `d`; returns the
    /// predicted (t40, t20) pair `adapt_widths` compares.
    fn width_throughputs_at(c: &AcornController, d: f64) -> (f64, f64) {
        let mut w = Wlan::new(vec![Point::new(0.0, 0.0)], vec![Point::new(d, 0.0)], 3);
        w.pathloss.shadowing_sigma_db = 0.0;
        let s = NetworkState {
            assignments: vec![ChannelAssignment::bonded(acorn_topology::Channel20(0)).unwrap()],
            operating_width: vec![ChannelWidth::Ht40],
            assoc: vec![Some(ApId(0))],
        };
        let m = c.build_model(&w, &s);
        (
            m.cell_airtime(ApId(0), ChannelWidth::Ht40)
                .cell_throughput_bps(1.0),
            m.cell_airtime(ApId(0), ChannelWidth::Ht20)
                .cell_throughput_bps(1.0),
        )
    }

    /// Bisects for a `[d_near, d_far]` bracket around the CB crossover:
    /// 40 MHz wins at `d_near`, 20 MHz at `d_far`, and both predictions
    /// agree within `tol` at either end — the regime where a mobile
    /// client's SNR jitter flips the memoryless comparison's sign without
    /// any meaningful throughput difference.
    fn crossover_bracket(c: &AcornController, tol: f64) -> (f64, f64) {
        let (mut lo, mut hi) = (1.0f64, 0.0f64);
        for d in 2..400 {
            let (t40, t20) = width_throughputs_at(c, d as f64);
            if t40 < t20 {
                hi = d as f64;
                lo = hi - 1.0;
                break;
            }
        }
        assert!(hi > 0.0, "no CB crossover found within 400 m");
        loop {
            let (a40, a20) = width_throughputs_at(c, lo);
            let (b40, b20) = width_throughputs_at(c, hi);
            assert!(a40 >= a20 && b40 < b20, "bracket lost the sign change");
            if (a40 - a20) / a20 < tol && (b20 - b40) / b40 < tol {
                return (lo, hi);
            }
            let mid = 0.5 * (lo + hi);
            let (m40, m20) = width_throughputs_at(c, mid);
            if m40 >= m20 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }

    /// Oscillates a single client across the bracket for `events` width
    /// re-evaluations and counts operating-width changes.
    fn flaps_under(c: &AcornController, d_near: f64, d_far: f64, events: usize) -> usize {
        let mut w = Wlan::new(vec![Point::new(0.0, 0.0)], vec![Point::new(d_near, 0.0)], 3);
        w.pathloss.shadowing_sigma_db = 0.0;
        let mut s = NetworkState {
            assignments: vec![ChannelAssignment::bonded(acorn_topology::Channel20(0)).unwrap()],
            operating_width: vec![ChannelWidth::Ht40],
            assoc: vec![Some(ApId(0))],
        };
        let mut switches = 0;
        for i in 0..events {
            w.clients[0].pos = Point::new(if i % 2 == 0 { d_near } else { d_far }, 0.0);
            let before = s.operating_width[0];
            c.adapt_widths(&w, &mut s);
            if s.operating_width[0] != before {
                switches += 1;
            }
        }
        switches
    }

    #[test]
    fn memoryless_rule_flaps_at_the_cb_crossover() {
        // Baseline for the hysteresis test below: with the margin off,
        // the paper's `t40 >= t20` rule re-decides from scratch on every
        // event, so a client bouncing across the crossover drags the
        // whole cell's width with it almost every time.
        let c = AcornController::new(AcornConfig {
            width_hysteresis: 0.0,
            ..AcornConfig::default()
        });
        let (d_near, d_far) = crossover_bracket(&c, 0.04);
        let switches = flaps_under(&c, d_near, d_far, 24);
        assert!(
            switches >= 12,
            "memoryless rule should flap nearly every event, got {switches}/24"
        );
    }

    #[test]
    fn hysteresis_locks_width_at_the_cb_crossover() {
        // The satellite scenario: the same oscillation under the default
        // 5 % margin. Inside the bracket both widths predict throughput
        // within 4 % of each other, so no event clears the margin and the
        // cell holds its width instead of flapping.
        let c = controller();
        assert!(c.config.width_hysteresis > 0.0, "default margin must be on");
        let (d_near, d_far) = crossover_bracket(&c, 0.04);
        let switches = flaps_under(&c, d_near, d_far, 24);
        assert!(
            switches <= 1,
            "hysteretic adaptation must not flap at the crossover, got {switches}/24"
        );
    }

    #[test]
    fn hysteresis_still_reacts_to_clear_degradation() {
        // Hysteresis must damp jitter, not decisions: a client far past
        // the crossover (where 20 MHz clearly wins) still triggers the
        // fallback on the first event.
        let c = controller();
        let (_, d_far) = crossover_bracket(&c, 0.04);
        // Walk outward until 20 MHz wins by well over the margin.
        let mut d = d_far;
        loop {
            let (t40, t20) = width_throughputs_at(&c, d);
            if t20 > 0.0 && t20 > 1.2 * t40 {
                break;
            }
            d += 1.0;
            assert!(d < 400.0, "no clearly-degraded regime found");
        }
        let switches = flaps_under(&c, d, d, 1);
        assert_eq!(switches, 1, "clear degradation must still fall back");
    }

    #[test]
    fn stale_tracked_links_advertise_infinite_delay() {
        use crate::tracker::{ClientTracker, TrackerConfig};
        let c = controller();
        let mut t = ClientTracker::new(TrackerConfig::default(), 100.0).unwrap();
        t.observe_snr(25.0, 100.0).unwrap();
        let fresh = c.tracked_delay_s(&t, 101.0, ChannelWidth::Ht20);
        assert!(fresh.is_finite() && fresh > 0.0);
        assert_eq!(
            fresh,
            c.delay_from_snr(t.snr_db().unwrap(), ChannelWidth::Ht20)
        );
        // Past the staleness horizon the boundary degrades to ∞ — which
        // the wire codec saturates to u32::MAX µs.
        let stale = c.tracked_delay_s(&t, 120.0, ChannelWidth::Ht20);
        assert_eq!(stale, f64::INFINITY);
    }

    #[test]
    fn up_mask_with_every_ap_up_is_bit_identical() {
        let w = wlan();
        let c = controller();
        let mut s = c.new_state(&w, 9);
        for cl in 0..4 {
            c.associate(&w, &mut s, ClientId(cl));
        }
        let plain = c.total_throughput_bps(&w, &s);
        let masked = c.total_throughput_bps_up(&w, &s, &[true, true]);
        assert_eq!(plain.to_bits(), masked.to_bits());
        // One AP down: exactly its cell's contribution disappears.
        let partial = c.total_throughput_bps_up(&w, &s, &[true, false]);
        let ap1 = c.ap_throughput_bps(&w, &s, ApId(1));
        assert!((plain - ap1 - partial).abs() < 1.0);
    }

    #[test]
    fn sharded_reallocation_matches_plain_on_a_connected_wlan() {
        // Two APs 60 m apart interfere, so the conflict graph is one
        // component and the sharded entry point must reproduce the plain
        // hedged reallocation bit-for-bit (same seed scheme, same ties).
        let w = wlan();
        let c = controller();
        let mut s_plain = c.new_state(&w, 11);
        for cl in 0..4 {
            c.associate(&w, &mut s_plain, ClientId(cl));
        }
        let mut s_shard = s_plain.clone();
        let r_plain = c.reallocate_with_restarts(&w, &mut s_plain, 3, 77);
        let r_shard = c.reallocate_sharded_with_restarts(&w, &mut s_shard, 3, 77);
        assert_eq!(s_plain.assignments, s_shard.assignments);
        assert_eq!(r_plain.total_bps.to_bits(), r_shard.total_bps.to_bits());
    }

    #[test]
    fn table_backed_controller_tracks_the_exact_one() {
        use acorn_phy::estimator::LinkQualityEstimator;
        let w = wlan();
        let exact = controller();
        let table = Arc::new(GoodputTable::build(
            LinkQualityEstimator::default(),
            -12.0,
            48.0,
            0.0625,
        ));
        let memo = AcornController::with_table(AcornConfig::default(), Arc::clone(&table));
        assert!(memo.table().is_some());

        // Association decisions agree: the table's goodput error is far
        // smaller than the SNR separation between these APs.
        let mut s_exact = exact.new_state(&w, 12);
        let mut s_memo = s_exact.clone();
        for cl in 0..4 {
            let a = exact.associate(&w, &mut s_exact, ClientId(cl));
            let b = memo.associate(&w, &mut s_memo, ClientId(cl));
            assert_eq!(a, b, "client {cl}");
        }

        // Advertised delays match within the table's documented budget.
        for snr in [2.0, 11.5, 23.0, 37.25] {
            for width in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
                let d_exact = exact.delay_from_snr(snr, width);
                let d_memo = memo.delay_from_snr(snr, width);
                assert!(
                    (d_exact - d_memo).abs() / d_exact < 1e-2,
                    "snr {snr} {width:?}: {d_exact} vs {d_memo}"
                );
            }
        }

        // Reallocation through the table-backed model lands on an
        // equivalent plan, and the table actually served the queries.
        let before = table.stats().hits;
        let r = memo.reallocate_sharded_with_restarts(&w, &mut s_memo, 2, 5);
        assert!(r.total_bps > 0.0);
        assert!(!s_memo.assignments[0].conflicts(s_memo.assignments[1]));
        assert!(table.stats().hits > before, "model must query the table");
    }

    #[test]
    fn table_epoch_flush_reports_table_counters() {
        use acorn_obs::RecordingSink;
        use acorn_phy::estimator::LinkQualityEstimator;
        let w = wlan();
        let table = Arc::new(GoodputTable::build(
            LinkQualityEstimator::default(),
            -12.0,
            48.0,
            0.25,
        ));
        let memo = AcornController::with_table(AcornConfig::default(), table);
        let mut s = memo.new_state(&w, 13);
        for cl in 0..4 {
            memo.associate(&w, &mut s, ClientId(cl));
        }
        let sink = RecordingSink::new();
        memo.reallocate_sharded_with_restarts_obs(&w, &mut s, 2, 5, &sink);
        sink.with_telemetry(|t| {
            assert!(t.counter(names::ALLOC_SHARDS) >= 1);
            assert!(t.counter(names::TABLE_HITS) > 0);
            assert_eq!(t.counter(names::TABLE_REBUILDS), 1);
            assert!(t.gauge(names::TABLE_MAX_QUANT_ERROR).is_some());
        });
    }

    /// Two distant AP pairs: the conflict graph has exactly two
    /// components, so the zone-view entry must replay each shard of the
    /// centralized sharded reallocation bit-for-bit.
    fn two_zone_wlan() -> Wlan {
        let mut w = Wlan::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(60.0, 0.0),
                Point::new(5000.0, 0.0),
                Point::new(5060.0, 0.0),
            ],
            vec![
                Point::new(3.0, 0.0),
                Point::new(57.0, 0.0),
                Point::new(5003.0, 0.0),
                Point::new(5057.0, 0.0),
            ],
            21,
        );
        w.pathloss.shadowing_sigma_db = 0.0;
        w.radio.tx_power_dbm = 5.0;
        w
    }

    #[test]
    fn zone_view_replays_the_sharded_reallocation_exactly() {
        let w = two_zone_wlan();
        let c = controller();
        let mut s_central = c.new_state(&w, 31);
        for cl in 0..4 {
            c.associate(&w, &mut s_central, ClientId(cl));
        }
        let mut s_zones = s_central.clone();

        let zones = c.zones(&w, &s_zones);
        assert_eq!(zones.len(), 2, "distant pairs must split into two zones");
        assert_eq!(zones[0], vec![0, 1]);
        assert_eq!(zones[1], vec![2, 3]);

        for (restarts, seed) in [(0usize, 7u64), (3, 7), (2, 991)] {
            let central = c.reallocate_sharded_with_restarts(&w, &mut s_central, restarts, seed);
            // Zone controllers: each restricts the shared model and solves
            // only its own slice, in any order (slices are disjoint).
            let model = c.build_model(&w, &s_zones);
            for (z, nodes) in zones.iter().enumerate() {
                let sub = model.restrict(nodes);
                c.reallocate_zone_obs(
                    &sub,
                    &mut s_zones,
                    nodes,
                    z,
                    restarts,
                    seed,
                    &acorn_obs::NullSink,
                );
            }
            assert_eq!(
                s_central.assignments, s_zones.assignments,
                "restarts={restarts} seed={seed}"
            );
            assert_eq!(s_central.operating_width, s_zones.operating_width);
            assert!(central.total_bps > 0.0);
        }
    }

    #[test]
    fn total_throughput_sums_cells() {
        let w = wlan();
        let c = controller();
        let mut s = c.new_state(&w, 8);
        for cl in 0..3 {
            c.associate(&w, &mut s, ClientId(cl));
        }
        let total = c.total_throughput_bps(&w, &s);
        let sum: f64 = (0..2).map(|i| c.ap_throughput_bps(&w, &s, ApId(i))).sum();
        assert!((total - sum).abs() < 1.0);
        assert!(total > 0.0);
    }
}
