//! The 802.11n HT Modulation and Coding Scheme (MCS) table and MIMO modes.
//!
//! The paper's testbed cards expose MCS 0–15 (one and two spatial streams
//! over a 2×3 antenna configuration) and an auto-rate algorithm that also
//! chooses between the two 802.11n MIMO operating modes: Spatial Division
//! Multiplexing (SDM — higher rate) and Space-Time Block Coding (STBC —
//! higher reliability; the mode the paper observes auto-rate selecting on
//! poor links). This module encodes the rate table and a simple, documented
//! effective-SNR model for the two modes that the rest of the stack uses.

use crate::coding::{coded_ber, per_from_ber_bytes, CodeRate};
use crate::modulation::Modulation;
use crate::ofdm::{ChannelWidth, GuardInterval, OfdmParams};

/// An HT MCS index in `0..=15` (1–2 spatial streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct McsIndex(u8);

impl McsIndex {
    /// Highest index supported by the modelled 2-stream hardware
    /// (the paper runs its channel-flatness test "using the maximum
    /// transmission rate (MCS = 15)").
    pub const MAX: McsIndex = McsIndex(15);

    /// Creates an index, returning `None` outside `0..=15`.
    pub fn new(idx: u8) -> Option<McsIndex> {
        (idx <= 15).then_some(McsIndex(idx))
    }

    /// The raw index value.
    pub fn value(self) -> u8 {
        self.0
    }

    /// Iterator over all sixteen indices.
    pub fn all() -> impl Iterator<Item = McsIndex> {
        (0..=15).map(McsIndex)
    }

    /// Iterator over the single-stream indices 0–7.
    pub fn single_stream() -> impl Iterator<Item = McsIndex> {
        (0..=7).map(McsIndex)
    }

    /// Decodes the index into its full MCS description.
    pub fn mcs(self) -> Mcs {
        let (modulation, code_rate) = match self.0 % 8 {
            0 => (Modulation::Bpsk, CodeRate::R12),
            1 => (Modulation::Qpsk, CodeRate::R12),
            2 => (Modulation::Qpsk, CodeRate::R34),
            3 => (Modulation::Qam16, CodeRate::R12),
            4 => (Modulation::Qam16, CodeRate::R34),
            5 => (Modulation::Qam64, CodeRate::R23),
            6 => (Modulation::Qam64, CodeRate::R34),
            _ => (Modulation::Qam64, CodeRate::R56),
        };
        Mcs {
            index: self,
            modulation,
            code_rate,
            n_ss: 1 + self.0 / 8,
        }
    }
}

/// A fully decoded MCS: modulation, code rate and spatial-stream count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mcs {
    /// The HT index this MCS corresponds to.
    pub index: McsIndex,
    /// Subcarrier modulation.
    pub modulation: Modulation,
    /// Convolutional code rate.
    pub code_rate: CodeRate,
    /// Number of spatial streams (1 or 2).
    pub n_ss: u8,
}

impl Mcs {
    /// Nominal PHY rate in bits/s at the given width and guard interval.
    ///
    /// Reproduces the standard table: MCS 0 → 6.5 / 13.5 Mb/s (20/40 MHz,
    /// long GI), MCS 7 → 65 / 135 Mb/s, MCS 15 → 130 / 270 Mb/s.
    pub fn rate_bps(&self, width: ChannelWidth, gi: GuardInterval) -> f64 {
        OfdmParams { width, gi }.nominal_bit_rate(
            self.modulation.bits_per_symbol(),
            self.code_rate.as_f64(),
            self.n_ss as u32,
        )
    }

    /// Post-FEC bit error rate of this MCS at the given *per-stream,
    /// per-subcarrier* SNR (dB). Apply [`MimoMode::effective_snr_db`] first
    /// to account for the MIMO mode in use.
    pub fn coded_ber(&self, stream_snr_db: f64) -> f64 {
        coded_ber(self.code_rate, self.modulation.ber_awgn(stream_snr_db))
    }

    /// Packet error rate for an `packet_bytes`-byte frame at the given
    /// per-stream SNR (paper Eq. 6 on top of the coded BER).
    pub fn per(&self, stream_snr_db: f64, packet_bytes: u32) -> f64 {
        per_from_ber_bytes(self.coded_ber(stream_snr_db), packet_bytes)
    }
}

/// 802.11n MIMO operating modes for a 2×2-capable link.
///
/// The paper (§2, §3.2): "Two modes of operations are feasible with 802.11n:
/// (i) Spatial Division Multiplexing (SDM), which achieves higher data rates
/// and (ii) Space Time Block Coding (STBC), which achieves higher
/// reliability. Typically, vendors implement rate adaptation algorithms ...
/// which choose the mode of MIMO operations based on the link quality."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MimoMode {
    /// Alamouti space-time block coding over two transmit antennas: one
    /// spatial stream with transmit-diversity gain. Valid for MCS 0–7.
    Stbc,
    /// Spatial-division multiplexing: two independent streams (MCS 8–15),
    /// each carrying half the transmit power.
    Sdm,
}

impl MimoMode {
    /// Effective SNR gain of 2×2 Alamouti STBC relative to a single-antenna
    /// link, in dB. Combining two independently faded copies yields array
    /// plus diversity gain; +4 dB is a conservative flat-channel figure
    /// (3 dB array gain from the second receive chain plus a modest
    /// diversity margin). Documented in DESIGN.md as a modelling choice.
    pub const STBC_GAIN_DB: f64 = 4.0;

    /// Per-stream SNR penalty of SDM, in dB: transmit power is split across
    /// the two streams (−3 dB each), and we charge no further loss for
    /// stream separation (ideal MMSE receiver on a well-conditioned
    /// channel).
    pub const SDM_STREAM_PENALTY_DB: f64 = 3.0103;

    /// Maps a link's (single-antenna-equivalent) SNR to the per-stream SNR
    /// seen by each decoded stream in this mode.
    pub fn effective_snr_db(self, link_snr_db: f64) -> f64 {
        match self {
            MimoMode::Stbc => link_snr_db + Self::STBC_GAIN_DB,
            MimoMode::Sdm => link_snr_db - Self::SDM_STREAM_PENALTY_DB,
        }
    }

    /// Whether this mode can carry the given MCS (STBC is single-stream,
    /// SDM is dual-stream).
    pub fn supports(self, mcs: Mcs) -> bool {
        match self {
            MimoMode::Stbc => mcs.n_ss == 1,
            MimoMode::Sdm => mcs.n_ss == 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate_mbps(idx: u8, w: ChannelWidth) -> f64 {
        McsIndex::new(idx)
            .unwrap()
            .mcs()
            .rate_bps(w, GuardInterval::Long)
            / 1e6
    }

    #[test]
    fn standard_rate_table_ht20_long_gi() {
        let expected = [6.5, 13.0, 19.5, 26.0, 39.0, 52.0, 58.5, 65.0];
        for (i, exp) in expected.iter().enumerate() {
            assert!(
                (rate_mbps(i as u8, ChannelWidth::Ht20) - exp).abs() < 0.01,
                "MCS {i}"
            );
        }
    }

    #[test]
    fn standard_rate_table_ht40_long_gi() {
        let expected = [13.5, 27.0, 40.5, 54.0, 81.0, 108.0, 121.5, 135.0];
        for (i, exp) in expected.iter().enumerate() {
            assert!(
                (rate_mbps(i as u8, ChannelWidth::Ht40) - exp).abs() < 0.01,
                "MCS {i}"
            );
        }
    }

    #[test]
    fn two_stream_rates_double_single_stream() {
        for i in 0..8u8 {
            for w in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
                assert!((rate_mbps(i + 8, w) - 2.0 * rate_mbps(i, w)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn mcs15_is_130_and_270_mbps() {
        assert!((rate_mbps(15, ChannelWidth::Ht20) - 130.0).abs() < 0.01);
        assert!((rate_mbps(15, ChannelWidth::Ht40) - 270.0).abs() < 0.01);
    }

    #[test]
    fn index_bounds() {
        assert!(McsIndex::new(16).is_none());
        assert!(McsIndex::new(15).is_some());
        assert_eq!(McsIndex::all().count(), 16);
        assert_eq!(McsIndex::single_stream().count(), 8);
    }

    #[test]
    fn stream_counts() {
        assert_eq!(McsIndex::new(7).unwrap().mcs().n_ss, 1);
        assert_eq!(McsIndex::new(8).unwrap().mcs().n_ss, 2);
    }

    #[test]
    fn per_decreases_with_snr() {
        let mcs = McsIndex::new(4).unwrap().mcs();
        let mut prev = 1.0;
        for snr in [-5.0, 0.0, 5.0, 10.0, 15.0, 20.0] {
            let per = mcs.per(snr, 1500);
            assert!(per <= prev + 1e-12);
            prev = per;
        }
    }

    #[test]
    fn aggressive_mcs_needs_more_snr() {
        // At a middling SNR, MCS 7 should have a much higher PER than MCS 0.
        let snr = 12.0;
        let per0 = McsIndex::new(0).unwrap().mcs().per(snr, 1500);
        let per7 = McsIndex::new(7).unwrap().mcs().per(snr, 1500);
        assert!(per7 > per0, "per0={per0}, per7={per7}");
    }

    #[test]
    fn mode_support() {
        let m0 = McsIndex::new(0).unwrap().mcs();
        let m8 = McsIndex::new(8).unwrap().mcs();
        assert!(MimoMode::Stbc.supports(m0) && !MimoMode::Stbc.supports(m8));
        assert!(MimoMode::Sdm.supports(m8) && !MimoMode::Sdm.supports(m0));
    }

    #[test]
    fn stbc_helps_and_sdm_costs_snr() {
        assert!(MimoMode::Stbc.effective_snr_db(10.0) > 10.0);
        assert!(MimoMode::Sdm.effective_snr_db(10.0) < 10.0);
    }

    #[test]
    fn mode_crossover_exists() {
        // On a strong link, SDM at MCS 15 outpaces STBC at MCS 7; on a weak
        // link the reverse holds — the mechanism behind the paper's
        // observation that auto-rate uses STBC on poor links.
        let goodput = |mode: MimoMode, idx: u8, snr: f64| {
            let mcs = McsIndex::new(idx).unwrap().mcs();
            let eff = mode.effective_snr_db(snr);
            (1.0 - mcs.per(eff, 1500)) * mcs.rate_bps(ChannelWidth::Ht20, GuardInterval::Long)
        };
        assert!(goodput(MimoMode::Sdm, 15, 35.0) > goodput(MimoMode::Stbc, 7, 35.0));
        assert!(goodput(MimoMode::Stbc, 0, 2.0) > goodput(MimoMode::Sdm, 8, 2.0));
    }
}
