//! Link budgets, the −3 dB channel-bonding rule, and the σ metric (Eq. 3).
//!
//! The central empirical finding of the paper's §3 is captured by two pieces
//! of machinery here:
//!
//! * [`LinkBudget::snr_db`]: for a fixed transmit power, a bonded 40 MHz
//!   channel sees ~3 dB less SNR than a 20 MHz channel (total noise doubles
//!   while total signal power is unchanged; equivalently, per-subcarrier
//!   energy halves while per-subcarrier noise is constant).
//! * [`sigma`] / [`sigma_for`]: the delivery-ratio ratio
//!   `σ = (1 − PER20) / (1 − PER40)` of Eq. 3. When `σ > R40/R20 ≈ 2`, a
//!   20 MHz channel out-throughputs the bonded channel, despite the bonded
//!   channel's doubled nominal rate.
//!
//! [`sigma_crossover_snr`] searches for the SNR threshold γ at which σ
//! falls back below 2 — the quantity tabulated in the paper's Table 1.

use crate::coding::CodeRate;
use crate::coding::{coded_ber, per_from_ber_bytes};
use crate::modulation::Modulation;
use crate::noise::channel_noise_floor_dbm;
use crate::ofdm::ChannelWidth;
use crate::units::{dbm_add, dbm_to_mw, mw_to_dbm};

/// The SNR shift (in dB, negative) a link experiences when it moves from a
/// 20 MHz channel to a bonded 40 MHz channel at the same transmit power.
///
/// This is the paper's "3 dB change in the SNR" calibration rule used by
/// ACORN's estimator (§4.2). We use the exact value 10·log10(2).
pub fn cb_snr_shift_db() -> f64 {
    -10.0 * 2f64.log10()
}

/// A point-to-point link budget.
///
/// All quantities are in dB/dBm. Path loss is supplied by the caller
/// (computed by `acorn-topology` from geometry) so this type stays a pure
/// power-accounting structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBudget {
    /// Transmit power in dBm (the paper sweeps 0–25 dBm on WARP and a
    /// 0–100 driver scale on the Ralink cards).
    pub tx_power_dbm: f64,
    /// Combined antenna gains (transmit + receive) in dBi. The testbed uses
    /// 5 dBi omni antennas on both ends.
    pub antenna_gains_dbi: f64,
    /// Path loss between transmitter and receiver in dB.
    pub path_loss_db: f64,
    /// Receiver noise figure in dB.
    pub noise_figure_db: f64,
}

impl LinkBudget {
    /// Received signal power in dBm (width-independent: total transmit
    /// power is the same with and without bonding, per the 802.11n spec).
    pub fn rx_power_dbm(&self) -> f64 {
        self.tx_power_dbm + self.antenna_gains_dbi - self.path_loss_db
    }

    /// Per-subcarrier SNR (dB) when operating at the given channel width.
    ///
    /// The width enters through the noise floor: doubling the bandwidth
    /// raises in-band noise by 3 dB, which is exactly equivalent to the
    /// per-subcarrier energy halving the paper measures in Fig. 1.
    pub fn snr_db(&self, width: ChannelWidth) -> f64 {
        self.rx_power_dbm() - channel_noise_floor_dbm(width, self.noise_figure_db)
    }

    /// Per-subcarrier SINR (dB) given aggregate co-channel interference
    /// received at `interference_dbm` (use `f64::NEG_INFINITY` for none).
    ///
    /// §1: "due to the 3 dB reduction in the per-carrier signal power,
    /// transmissions with the wider bands are more susceptible to
    /// interference (i.e., the SINR is lower)".
    pub fn sinr_db(&self, width: ChannelWidth, interference_dbm: f64) -> f64 {
        let noise_floor = channel_noise_floor_dbm(width, self.noise_figure_db);
        let noise_plus_interference = if interference_dbm == f64::NEG_INFINITY {
            noise_floor
        } else {
            dbm_add(noise_floor, interference_dbm)
        };
        self.rx_power_dbm() - noise_plus_interference
    }
}

/// σ from the paper's Eq. 3: the ratio of packet delivery probabilities
/// achieved without and with channel bonding.
///
/// `σ > R40/R20 ≈ 2` means the 20 MHz channel yields higher throughput.
/// Returns `f64::INFINITY` when the bonded channel delivers nothing while
/// the 20 MHz channel still delivers.
pub fn sigma(per_20: f64, per_40: f64) -> f64 {
    let d20 = (1.0 - per_20).max(0.0);
    let d40 = (1.0 - per_40).max(0.0);
    if d40 == 0.0 {
        if d20 == 0.0 {
            1.0 // both channels dead: CB neither helps nor hurts (σ ≈ 1).
        } else {
            f64::INFINITY
        }
    } else {
        d20 / d40
    }
}

/// The exact rate ratio R40/R20 for a given mod/cod pair: ~2.08
/// (108/52), independent of modulation since both widths use the same MCS.
pub fn rate_ratio_40_over_20() -> f64 {
    ChannelWidth::Ht40.data_subcarriers() as f64 / ChannelWidth::Ht20.data_subcarriers() as f64
}

/// σ for a (modulation, code-rate) pair at a given 20 MHz-referenced SNR.
///
/// The 40 MHz PER is evaluated at `snr20_db + cb_snr_shift_db()` — the same
/// calibration ACORN's estimator performs.
pub fn sigma_for(
    modulation: Modulation,
    code_rate: CodeRate,
    snr20_db: f64,
    packet_bytes: u32,
) -> f64 {
    let per =
        |snr: f64| per_from_ber_bytes(coded_ber(code_rate, modulation.ber_awgn(snr)), packet_bytes);
    sigma(per(snr20_db), per(snr20_db + cb_snr_shift_db()))
}

/// Whether channel bonding *hurts* (20 MHz wins) at this operating point:
/// the test `σ > R40/R20` from inequality (3).
pub fn cb_hurts(
    modulation: Modulation,
    code_rate: CodeRate,
    snr20_db: f64,
    packet_bytes: u32,
) -> bool {
    sigma_for(modulation, code_rate, snr20_db, packet_bytes) > rate_ratio_40_over_20()
}

/// Searches for the σ = 2 *falling-edge* crossover SNR γ for a mod/cod pair
/// — the threshold the paper tabulates in Table 1. Above the returned SNR,
/// σ < 2 and channel bonding is beneficial; in a band just below it, σ ≥ 2
/// and a 20 MHz channel wins.
///
/// σ(SNR) is unimodal: ≈1 when both channels are dead, peaks while the
/// 20 MHz PER collapses before the 40 MHz PER does, then returns to ≈1 when
/// both are clean. We scan upward for the last grid point with σ ≥ 2 and
/// bisect the falling edge. Returns `None` if σ never reaches 2 (a link/MCS
/// combination for which bonding never hurts).
pub fn sigma_crossover_snr(
    modulation: Modulation,
    code_rate: CodeRate,
    packet_bytes: u32,
) -> Option<f64> {
    const LO: f64 = -25.0;
    const HI: f64 = 45.0;
    const STEP: f64 = 0.125;
    let threshold = 2.0;
    let s = |snr: f64| sigma_for(modulation, code_rate, snr, packet_bytes);

    // Find the highest grid point where σ ≥ 2.
    let mut last_above: Option<f64> = None;
    let mut snr = LO;
    while snr <= HI {
        if s(snr) >= threshold {
            last_above = Some(snr);
        }
        snr += STEP;
    }
    let lo = last_above?;
    let mut lo = lo;
    let mut hi = lo + STEP;
    for _ in 0..50 {
        let mid = 0.5 * (lo + hi);
        if s(mid) >= threshold {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Returns `(last σ≥2 SNR, first σ<2 SNR)` on a 1 dB measurement grid —
/// the two-row format of the paper's Table 1, which reports e.g. −7 dB
/// (σ≥2) and −4 dB (σ<2) for QPSK 3/4.
pub fn sigma_transition_band(
    modulation: Modulation,
    code_rate: CodeRate,
    packet_bytes: u32,
) -> Option<(f64, f64)> {
    let crossover = sigma_crossover_snr(modulation, code_rate, packet_bytes)?;
    Some((crossover.floor(), crossover.ceil()))
}

/// Aggregates interference powers (dBm) from several transmitters into a
/// single equivalent interference level.
pub fn aggregate_interference_dbm<I: IntoIterator<Item = f64>>(sources: I) -> f64 {
    let total: f64 = sources.into_iter().map(dbm_to_mw).sum();
    if total == 0.0 {
        f64::NEG_INFINITY
    } else {
        mw_to_dbm(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget(snr20_target: f64) -> LinkBudget {
        // Build a budget that hits the requested HT20 SNR.
        let nf = 5.0;
        let floor = channel_noise_floor_dbm(ChannelWidth::Ht20, nf);
        LinkBudget {
            tx_power_dbm: 15.0,
            antenna_gains_dbi: 10.0,
            path_loss_db: 15.0 + 10.0 - (floor + snr20_target),
            noise_figure_db: nf,
        }
    }

    #[test]
    fn bonding_costs_three_db_of_snr() {
        let b = budget(20.0);
        let d = b.snr_db(ChannelWidth::Ht20) - b.snr_db(ChannelWidth::Ht40);
        assert!((d - 3.0103).abs() < 1e-6, "d = {d}");
        assert!((cb_snr_shift_db() + 3.0103).abs() < 1e-4);
    }

    #[test]
    fn sinr_reduces_to_snr_without_interference() {
        let b = budget(12.0);
        assert!(
            (b.sinr_db(ChannelWidth::Ht20, f64::NEG_INFINITY) - b.snr_db(ChannelWidth::Ht20)).abs()
                < 1e-12
        );
    }

    #[test]
    fn interference_lowers_sinr() {
        let b = budget(12.0);
        let clean = b.sinr_db(ChannelWidth::Ht20, f64::NEG_INFINITY);
        let noisy = b.sinr_db(ChannelWidth::Ht20, -80.0);
        assert!(noisy < clean);
    }

    #[test]
    fn equal_noise_interference_costs_three_db() {
        let b = budget(12.0);
        let floor = channel_noise_floor_dbm(ChannelWidth::Ht20, b.noise_figure_db);
        let sinr = b.sinr_db(ChannelWidth::Ht20, floor);
        assert!((b.snr_db(ChannelWidth::Ht20) - sinr - 3.0103).abs() < 1e-6);
    }

    #[test]
    fn sigma_edge_cases() {
        assert_eq!(sigma(1.0, 1.0), 1.0);
        assert_eq!(sigma(0.0, 1.0), f64::INFINITY);
        assert!((sigma(0.0, 0.0) - 1.0).abs() < 1e-12);
        assert!((sigma(0.5, 0.75) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sigma_is_about_one_at_snr_extremes() {
        for (m, r) in [
            (Modulation::Qpsk, CodeRate::R34),
            (Modulation::Qam64, CodeRate::R56),
        ] {
            let low = sigma_for(m, r, -24.0, 1500);
            let high = sigma_for(m, r, 40.0, 1500);
            assert!((low - 1.0).abs() < 0.2, "{m:?}/{r:?} low σ = {low}");
            assert!((high - 1.0).abs() < 1e-6, "{m:?}/{r:?} high σ = {high}");
        }
    }

    #[test]
    fn sigma_peaks_above_two_for_all_table1_modcods() {
        // Fig. 5 shows every modcod has a Tx band where σ ≥ 2 (CB hurts).
        for (m, r) in [
            (Modulation::Qpsk, CodeRate::R34),
            (Modulation::Qam16, CodeRate::R34),
            (Modulation::Qam64, CodeRate::R34),
            (Modulation::Qam64, CodeRate::R56),
        ] {
            let peak = (-200..400)
                .map(|i| sigma_for(m, r, i as f64 * 0.1, 1500))
                .filter(|v| v.is_finite())
                .fold(0.0f64, f64::max);
            assert!(peak >= 2.0, "{m:?}/{r:?} peak σ = {peak}");
        }
    }

    #[test]
    fn crossover_rises_with_modulation_aggressiveness() {
        // Table 1's trend: γ grows as the modcod gets more aggressive.
        let t = |m, r| sigma_crossover_snr(m, r, 1500).expect("crossover exists");
        let qpsk34 = t(Modulation::Qpsk, CodeRate::R34);
        let qam16_34 = t(Modulation::Qam16, CodeRate::R34);
        let qam64_34 = t(Modulation::Qam64, CodeRate::R34);
        let qam64_56 = t(Modulation::Qam64, CodeRate::R56);
        assert!(qpsk34 < qam16_34, "{qpsk34} !< {qam16_34}");
        assert!(qam16_34 < qam64_34, "{qam16_34} !< {qam64_34}");
        assert!(qam64_34 < qam64_56, "{qam64_34} !< {qam64_56}");
    }

    #[test]
    fn above_crossover_cb_helps_below_it_cb_hurts() {
        let m = Modulation::Qam16;
        let r = CodeRate::R34;
        let x = sigma_crossover_snr(m, r, 1500).unwrap();
        assert!(sigma_for(m, r, x + 1.0, 1500) < 2.0);
        assert!(sigma_for(m, r, x - 0.5, 1500) >= 2.0);
    }

    #[test]
    fn transition_band_brackets_crossover() {
        let (lo, hi) = sigma_transition_band(Modulation::Qam64, CodeRate::R34, 1500).unwrap();
        let x = sigma_crossover_snr(Modulation::Qam64, CodeRate::R34, 1500).unwrap();
        assert!(lo <= x && x <= hi);
        assert!(hi - lo <= 1.0 + 1e-9);
    }

    #[test]
    fn rate_ratio_slightly_exceeds_two() {
        let r = rate_ratio_40_over_20();
        assert!(r > 2.0 && r < 2.1);
    }

    #[test]
    fn aggregate_interference_sums_in_linear_domain() {
        let agg = aggregate_interference_dbm([-90.0, -90.0]);
        assert!((agg - (-86.9897)).abs() < 1e-3);
        assert_eq!(
            aggregate_interference_dbm(std::iter::empty()),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn cb_hurts_in_the_transition_band_only() {
        let m = Modulation::Qam64;
        let r = CodeRate::R56;
        let x = sigma_crossover_snr(m, r, 1500).unwrap();
        assert!(cb_hurts(m, r, x - 0.5, 1500));
        assert!(!cb_hurts(m, r, x + 3.0, 1500));
        assert!(!cb_hurts(m, r, 45.0, 1500));
    }
}
