//! Forward error correction modelling: coded BER and PER.
//!
//! 802.11n uses the industry-standard K=7 convolutional code (generators
//! 133/171 octal) with puncturing to rates 2/3, 3/4 and 5/6. To predict the
//! *coded* link behaviour that the paper's testbed cards exhibit (Fig. 5,
//! Table 1), we use the classic union upper bound on the post-Viterbi bit
//! error rate with hard-decision decoding:
//!
//! ```text
//! Pb ≤ Σ_{d ≥ dfree} c_d · P2(d)
//! ```
//!
//! where `c_d` are the information-bit weights of the code's distance
//! spectrum and `P2(d)` is the probability of selecting an incorrect path at
//! Hamming distance `d` on a BSC with crossover probability equal to the
//! uncoded (channel) BER. The distance spectra below are the standard
//! published values (Haccoun & Bégin 1989; used by virtually every 802.11
//! PER model in the literature, e.g. the one the paper cites through \[19\]).
//!
//! PER then follows the paper's Eq. 6 under the independent-bit-error
//! assumption: `PER = 1 − (1 − BER)^L` with `L` the packet length in bits.

/// Convolutional code rates available in 802.11n (after puncturing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CodeRate {
    /// Rate 1/2 — the mother code.
    R12,
    /// Rate 2/3 (punctured).
    R23,
    /// Rate 3/4 (punctured).
    R34,
    /// Rate 5/6 (punctured).
    R56,
}

impl CodeRate {
    /// All rates, most to least redundant.
    pub const ALL: [CodeRate; 4] = [CodeRate::R12, CodeRate::R23, CodeRate::R34, CodeRate::R56];

    /// The numeric code rate `k/n`.
    pub fn as_f64(self) -> f64 {
        match self {
            CodeRate::R12 => 1.0 / 2.0,
            CodeRate::R23 => 2.0 / 3.0,
            CodeRate::R34 => 3.0 / 4.0,
            CodeRate::R56 => 5.0 / 6.0,
        }
    }

    /// Free distance of the (punctured) code.
    pub fn free_distance(self) -> u32 {
        match self {
            CodeRate::R12 => 10,
            CodeRate::R23 => 6,
            CodeRate::R34 => 5,
            CodeRate::R56 => 4,
        }
    }

    /// Information-bit weights `c_d` of the distance spectrum, starting at
    /// `d = free_distance()` and increasing by one per entry.
    ///
    /// Zeros appear where the code has no codewords of that weight (the
    /// rate-1/2 mother code only has even-weight codewords).
    pub fn distance_spectrum(self) -> &'static [f64] {
        match self {
            CodeRate::R12 => &[
                36.0, 0.0, 211.0, 0.0, 1404.0, 0.0, 11633.0, 0.0, 77433.0, 0.0, 502690.0,
            ],
            CodeRate::R23 => &[3.0, 70.0, 285.0, 1276.0, 6160.0, 27128.0, 117019.0],
            CodeRate::R34 => &[42.0, 201.0, 1492.0, 10469.0, 62935.0, 379644.0, 2253373.0],
            CodeRate::R56 => &[92.0, 528.0, 8694.0, 79453.0, 792114.0, 7375573.0],
        }
    }
}

/// Probability of a pairwise error event at Hamming distance `d` on a binary
/// symmetric channel with crossover probability `p` (hard-decision Viterbi).
///
/// For odd `d`: `P2 = Σ_{k=(d+1)/2}^{d} C(d,k) p^k (1−p)^{d−k}`.
/// For even `d` the tie term `½·C(d,d/2) p^{d/2}(1−p)^{d/2}` is added.
fn pairwise_error_probability(d: u32, p: f64) -> f64 {
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 0.5 {
        return 0.5;
    }
    let d = d as i64;
    let mut sum = 0.0;
    // binomial term C(d,k) p^k (1-p)^(d-k), computed in log space to avoid
    // overflow for larger d.
    let lp = p.ln();
    let lq = (1.0 - p).ln();
    let ln_fact = |n: i64| -> f64 { (1..=n).map(|i| (i as f64).ln()).sum() };
    let lfd = ln_fact(d);
    let start = d / 2 + 1;
    for k in start..=d {
        let ln_c = lfd - ln_fact(k) - ln_fact(d - k);
        sum += (ln_c + k as f64 * lp + (d - k) as f64 * lq).exp();
    }
    if d % 2 == 0 {
        let k = d / 2;
        let ln_c = lfd - ln_fact(k) - ln_fact(d - k);
        sum += 0.5 * (ln_c + k as f64 * lp + (d - k) as f64 * lq).exp();
    }
    sum.min(0.5)
}

/// Post-Viterbi (coded) bit error rate given the uncoded channel BER.
///
/// Union upper bound over the first terms of the distance spectrum,
/// clamped to `[0, 0.5]`. Near `channel_ber = 0.5` the bound saturates at
/// 0.5 (the decoder can do no worse than guessing on average).
pub fn coded_ber(rate: CodeRate, channel_ber: f64) -> f64 {
    if channel_ber <= 0.0 {
        return 0.0;
    }
    let p = channel_ber.min(0.5);
    let dfree = rate.free_distance();
    let mut pb = 0.0;
    for (i, &cd) in rate.distance_spectrum().iter().enumerate() {
        if cd == 0.0 {
            continue;
        }
        pb += cd * pairwise_error_probability(dfree + i as u32, p);
    }
    pb.clamp(0.0, 0.5)
}

/// Packet error rate from bit error rate — the paper's Eq. 6:
/// `PER = 1 − (1 − BER)^L`, with `L` in **bits**.
///
/// Assumes independent, uniformly distributed bit errors within the packet
/// (the paper's stated assumption, following \[32\]).
pub fn per_from_ber(ber: f64, packet_len_bits: u32) -> f64 {
    let ber = ber.clamp(0.0, 1.0);
    // ln1p-based form keeps precision when BER is tiny.
    1.0 - ((packet_len_bits as f64) * (-ber).ln_1p()).exp()
}

/// Convenience: PER for a packet of `bytes` bytes.
pub fn per_from_ber_bytes(ber: f64, packet_len_bytes: u32) -> f64 {
    per_from_ber(ber, packet_len_bytes * 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_error_zero_and_half() {
        assert_eq!(pairwise_error_probability(10, 0.0), 0.0);
        assert_eq!(pairwise_error_probability(10, 0.5), 0.5);
    }

    #[test]
    fn pairwise_error_monotone_in_p() {
        for d in [4, 5, 6, 10] {
            let mut prev = 0.0;
            for i in 1..50 {
                let p = i as f64 * 0.01;
                let v = pairwise_error_probability(d, p);
                assert!(v + 1e-15 >= prev, "d={d} p={p}");
                prev = v;
            }
        }
    }

    #[test]
    fn pairwise_error_decreases_with_distance() {
        // Larger Hamming distance → more protection → lower error prob.
        let p = 0.01;
        assert!(pairwise_error_probability(10, p) < pairwise_error_probability(6, p));
        assert!(pairwise_error_probability(6, p) < pairwise_error_probability(4, p));
    }

    #[test]
    fn coded_ber_zero_channel_is_zero() {
        for r in CodeRate::ALL {
            assert_eq!(coded_ber(r, 0.0), 0.0);
        }
    }

    #[test]
    fn coding_gain_at_moderate_channel_ber() {
        // At channel BER 1e-3 the K=7 rate-1/2 code should essentially
        // eliminate errors (coded BER far below the uncoded one).
        let cb = coded_ber(CodeRate::R12, 1e-3);
        assert!(cb < 1e-7, "coded BER = {cb}");
    }

    #[test]
    fn weaker_codes_have_higher_coded_ber() {
        for channel_ber in [1e-3, 3e-3, 1e-2] {
            let bers: Vec<f64> = CodeRate::ALL
                .iter()
                .map(|r| coded_ber(*r, channel_ber))
                .collect();
            for w in bers.windows(2) {
                assert!(w[0] <= w[1] * 1.0001, "ber={channel_ber}: {bers:?}");
            }
        }
    }

    #[test]
    fn coded_ber_monotone_in_channel_ber() {
        for r in CodeRate::ALL {
            let mut prev = 0.0;
            for i in 0..100 {
                let p = i as f64 * 0.004;
                let v = coded_ber(r, p);
                assert!(v + 1e-12 >= prev, "{r:?} at p={p}: {v} < {prev}");
                prev = v;
            }
        }
    }

    #[test]
    fn coded_ber_saturates_at_half() {
        for r in CodeRate::ALL {
            assert!(coded_ber(r, 0.5) <= 0.5);
            assert!(coded_ber(r, 0.4) <= 0.5);
        }
    }

    #[test]
    fn per_limits() {
        assert_eq!(per_from_ber(0.0, 12000), 0.0);
        assert!((per_from_ber(1.0, 100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_for_1500_byte_packet() {
        // BER 1e-5 over 12000 bits → PER ≈ 1 − e^(−0.12) ≈ 0.113.
        let per = per_from_ber_bytes(1e-5, 1500);
        assert!((per - 0.113).abs() < 0.002, "per = {per}");
    }

    #[test]
    fn per_monotone_in_length() {
        let ber = 1e-4;
        let mut prev = 0.0;
        for bytes in [100, 500, 1000, 1500, 3000] {
            let per = per_from_ber_bytes(ber, bytes);
            assert!(per > prev);
            prev = per;
        }
    }

    #[test]
    fn per_tiny_ber_precision() {
        // ln1p form must not round tiny BERs to PER 0 for long packets.
        let per = per_from_ber(1e-12, 12000);
        assert!(per > 1e-9 && per < 2e-8, "per = {per}");
    }

    #[test]
    fn free_distances_match_published_tables() {
        assert_eq!(CodeRate::R12.free_distance(), 10);
        assert_eq!(CodeRate::R23.free_distance(), 6);
        assert_eq!(CodeRate::R34.free_distance(), 5);
        assert_eq!(CodeRate::R56.free_distance(), 4);
    }
}
