//! Memoized, quantized SNR → PER → goodput lookup tables.
//!
//! The exact estimator pipeline ([`LinkQualityEstimator::best_rate_point`])
//! evaluates the K=7 union-bound coded-BER series and the Eq. 6 PER model
//! for all 16 MCSs on every call. That is exact but expensive, and the
//! city-scale model evaluates it millions of times on *smoothly varying*
//! SNR inputs. A [`GoodputTable`] trades a one-off build (one exact
//! evaluation per MCS × width × quantized SNR bin) for O(MCS) lookups with
//! linear interpolation of the PER curves.
//!
//! Design points:
//!
//! * The table stores PER and coded BER per (width, MCS) over a uniform
//!   SNR grid, evaluated at the *mode-effective* SNR through
//!   [`LinkQualityEstimator::error_rates`] — the same primitive the exact
//!   search calls, so the tabulated values are samples of the exact
//!   curves, including the fading-averaged variant.
//! * Out-of-range SNRs fall back to the exact estimator (counted as
//!   misses), so the table is never wrong outside its domain — only
//!   slower.
//! * The build runs a self-check sweep at off-grid SNRs (bin midpoints)
//!   comparing interpolated vs exact goodput; the observed maximum
//!   absolute error is recorded and exposed via
//!   [`GoodputTable::max_check_error_bps`] so callers (and the CI accuracy
//!   gate) can assert it against the documented tolerance.
//! * Hit/miss/rebuild counters are relaxed atomics — shared through an
//!   `Arc` by every model clone, flushed into the observability sink by
//!   `acorn-core`.

use crate::estimator::{LinkClass, LinkQualityEstimate, LinkQualityEstimator, RatePoint};
use crate::mcs::{McsIndex, MimoMode};
use crate::ofdm::ChannelWidth;
use std::sync::atomic::{AtomicU64, Ordering};

/// A point-in-time snapshot of a table's usage counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableStats {
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups outside the tabulated SNR range, answered exactly.
    pub misses: u64,
    /// Times the table has been (re)built.
    pub rebuilds: u64,
    /// Maximum absolute goodput error (bits/s) observed by the build-time
    /// self-check sweep against the exact union-bound evaluation.
    pub max_quant_error_bps: f64,
}

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    rebuilds: AtomicU64,
    /// `f64::to_bits` of the max observed error; non-negative f64 bit
    /// patterns order like the values, so `fetch_max` works.
    max_quant_error_bits: AtomicU64,
}

/// A memoized goodput table for one estimator configuration.
#[derive(Debug)]
pub struct GoodputTable {
    estimator: LinkQualityEstimator,
    snr_min_db: f64,
    snr_step_db: f64,
    n_bins: usize,
    n_mcs: usize,
    /// `per[(w * n_mcs + m) * n_bins + b]` — PER of MCS `m` at width index
    /// `w` (0 = HT20, 1 = HT40) and SNR bin `b`.
    per: Vec<f64>,
    /// Same layout as `per`, post-FEC coded BER.
    coded_ber: Vec<f64>,
    /// `rate[w * n_mcs + m]` — nominal rate (bits/s).
    rate: Vec<f64>,
    counters: Counters,
}

fn width_index(width: ChannelWidth) -> usize {
    match width {
        ChannelWidth::Ht20 => 0,
        ChannelWidth::Ht40 => 1,
    }
}

fn mode_of(idx: McsIndex) -> MimoMode {
    if idx.mcs().n_ss == 1 {
        MimoMode::Stbc
    } else {
        MimoMode::Sdm
    }
}

impl GoodputTable {
    /// Default tabulated SNR range (dB): wide enough that every SNR an
    /// indoor deployment produces (including bonding calibration and MIMO
    /// mode offsets) stays in range.
    pub const DEFAULT_SNR_MIN_DB: f64 = -40.0;
    /// Upper end of the default range; above it every MCS is error-free
    /// and the curves are flat.
    pub const DEFAULT_SNR_MAX_DB: f64 = 60.0;
    /// Default quantization step (dB). The PER waterfalls span a few dB,
    /// so 1/16 dB resolves them to within the documented
    /// [`GOODPUT_TOLERANCE_BPS`](GoodputTable::GOODPUT_TOLERANCE_BPS).
    pub const DEFAULT_SNR_STEP_DB: f64 = 0.0625;
    /// Documented error budget for the default table: the maximum
    /// absolute goodput deviation from the exact union-bound evaluation,
    /// anywhere in the tabulated SNR range, is below 150 kb/s — about
    /// 5·10⁻⁴ of the 270 Mb/s HT40 top rate (measured worst case:
    /// ~136 kb/s at a PER-waterfall midpoint). The CI accuracy gate
    /// asserts the build-time self-check against this constant.
    pub const GOODPUT_TOLERANCE_BPS: f64 = 1.5e5;

    /// Builds a table over the default SNR range and step.
    pub fn new(estimator: LinkQualityEstimator) -> GoodputTable {
        GoodputTable::build(
            estimator,
            Self::DEFAULT_SNR_MIN_DB,
            Self::DEFAULT_SNR_MAX_DB,
            Self::DEFAULT_SNR_STEP_DB,
        )
    }

    /// Builds a table covering `[snr_min_db, snr_max_db]` with the given
    /// step. All three must be finite and describe at least two bins.
    pub fn build(
        estimator: LinkQualityEstimator,
        snr_min_db: f64,
        snr_max_db: f64,
        snr_step_db: f64,
    ) -> GoodputTable {
        assert!(
            snr_min_db.is_finite() && snr_max_db.is_finite() && snr_step_db.is_finite(),
            "table bounds must be finite"
        );
        assert!(snr_step_db > 0.0, "SNR step must be positive");
        assert!(snr_max_db > snr_min_db, "empty SNR range");
        let n_bins = (((snr_max_db - snr_min_db) / snr_step_db).ceil() as usize) + 1;
        let n_mcs = McsIndex::all().count();
        let mut per = vec![0.0; 2 * n_mcs * n_bins];
        let mut coded_ber = vec![0.0; 2 * n_mcs * n_bins];
        let mut rate = vec![0.0; 2 * n_mcs];
        for width in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
            let w = width_index(width);
            for (m, idx) in McsIndex::all().enumerate() {
                let mcs = idx.mcs();
                rate[w * n_mcs + m] = mcs.rate_bps(width, estimator.gi);
                let mode = mode_of(idx);
                for b in 0..n_bins {
                    let snr = snr_min_db + b as f64 * snr_step_db;
                    let (ber, p) = estimator.error_rates(&mcs, mode.effective_snr_db(snr));
                    per[(w * n_mcs + m) * n_bins + b] = p;
                    coded_ber[(w * n_mcs + m) * n_bins + b] = ber;
                }
            }
        }
        let table = GoodputTable {
            estimator,
            snr_min_db,
            snr_step_db,
            n_bins,
            n_mcs,
            per,
            coded_ber,
            rate,
            counters: Counters::default(),
        };
        table.counters.rebuilds.fetch_add(1, Ordering::Relaxed);
        table.self_check();
        table
    }

    /// The estimator configuration this table was built from.
    pub fn estimator(&self) -> &LinkQualityEstimator {
        &self.estimator
    }

    /// Build-time self-check: evaluate the interpolated search at every
    /// bin midpoint (the worst case for linear interpolation) on both
    /// widths and record the max absolute goodput deviation from the
    /// exact exhaustive search.
    fn self_check(&self) {
        let mut max_err = 0.0f64;
        for width in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
            for b in 0..self.n_bins - 1 {
                let snr = self.snr_min_db + (b as f64 + 0.5) * self.snr_step_db;
                let approx = self
                    .lookup(snr, width)
                    .map(|p| p.goodput_bps)
                    .unwrap_or(0.0);
                let exact = self.estimator.best_rate_point(snr, width).goodput_bps;
                max_err = max_err.max((approx - exact).abs());
            }
        }
        self.counters
            .max_quant_error_bits
            .fetch_max(max_err.to_bits(), Ordering::Relaxed);
    }

    /// Raw interpolated lookup; `None` when `snr_db` is outside the
    /// tabulated range. Does not touch the counters.
    fn lookup(&self, snr_db: f64, width: ChannelWidth) -> Option<RatePoint> {
        let t = (snr_db - self.snr_min_db) / self.snr_step_db;
        if !(0.0..=(self.n_bins - 1) as f64).contains(&t) {
            return None;
        }
        let i0 = (t.floor() as usize).min(self.n_bins.saturating_sub(2));
        let frac = t - i0 as f64;
        let w = width_index(width);
        let mut best: Option<RatePoint> = None;
        for (m, idx) in McsIndex::all().enumerate() {
            let base = (w * self.n_mcs + m) * self.n_bins + i0;
            let per = self.per[base] + frac * (self.per[base + 1] - self.per[base]);
            let ber =
                self.coded_ber[base] + frac * (self.coded_ber[base + 1] - self.coded_ber[base]);
            let goodput = (1.0 - per) * self.rate[w * self.n_mcs + m];
            let candidate = RatePoint {
                mcs: idx,
                mode: mode_of(idx),
                coded_ber: ber,
                per,
                goodput_bps: goodput,
            };
            match &best {
                Some(b) if b.goodput_bps >= goodput => {}
                _ => best = Some(candidate),
            }
        }
        best
    }

    /// Memoized equivalent of [`LinkQualityEstimator::best_rate_point`]:
    /// interpolated within the tabulated range, exact (and counted as a
    /// miss) outside it.
    pub fn rate_point(&self, snr_db: f64, width: ChannelWidth) -> RatePoint {
        match self.lookup(snr_db, width) {
            Some(p) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                p
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                self.estimator.best_rate_point(snr_db, width)
            }
        }
    }

    /// Memoized equivalent of the full
    /// [`LinkQualityEstimator::estimate`] pipeline: calibrate the
    /// measured SNR to both widths, look up the best operating point on
    /// each, classify.
    pub fn estimate(&self, measured_snr_db: f64, measured_at: ChannelWidth) -> LinkQualityEstimate {
        let e = &self.estimator;
        let snr20 = e.calibrate_snr(measured_snr_db, measured_at, ChannelWidth::Ht20);
        let snr40 = e.calibrate_snr(measured_snr_db, measured_at, ChannelWidth::Ht40);
        let best20 = self.rate_point(snr20, ChannelWidth::Ht20);
        let best40 = self.rate_point(snr40, ChannelWidth::Ht40);
        let class = if best40.goodput_bps > e.cb_benefit_threshold * best20.goodput_bps {
            LinkClass::Good
        } else {
            LinkClass::Poor
        };
        LinkQualityEstimate {
            snr20_db: snr20,
            snr40_db: snr40,
            best20,
            best40,
            class,
        }
    }

    /// Max absolute goodput error (bits/s) recorded by the build-time
    /// self-check sweep.
    pub fn max_check_error_bps(&self) -> f64 {
        f64::from_bits(self.counters.max_quant_error_bits.load(Ordering::Relaxed))
    }

    /// Snapshot of the usage counters. The counters are cumulative over
    /// the table's lifetime and are **never reset** — a table is routinely
    /// shared by `Arc` across models and sequential runs, and a draining
    /// read here would silently steal counts from every other sharer (the
    /// footgun DESIGN.md §13.3 documents). Periodic reporters keep their
    /// own cursor into these values (see `NetworkModel::flush_stats_into`)
    /// and flush deltas.
    pub fn stats(&self) -> TableStats {
        TableStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            rebuilds: self.counters.rebuilds.load(Ordering::Relaxed),
            max_quant_error_bps: self.max_check_error_bps(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The default table is expensive to build under the debug profile,
    /// so tests share one; tests asserting exact counter values build
    /// their own (smaller) tables.
    fn table() -> &'static GoodputTable {
        static TABLE: std::sync::OnceLock<GoodputTable> = std::sync::OnceLock::new();
        TABLE.get_or_init(|| GoodputTable::new(LinkQualityEstimator::default()))
    }

    #[test]
    fn in_range_lookup_is_a_hit_and_close_to_exact() {
        let t = GoodputTable::build(LinkQualityEstimator::default(), -12.0, 48.0, 0.0625);
        let e = LinkQualityEstimator::default();
        for snr in [-5.0, 1.65, 8.3, 14.72, 23.9, 31.05, 45.0] {
            for width in [ChannelWidth::Ht20, ChannelWidth::Ht40] {
                let approx = t.rate_point(snr, width);
                let exact = e.best_rate_point(snr, width);
                assert!(
                    (approx.goodput_bps - exact.goodput_bps).abs()
                        < GoodputTable::GOODPUT_TOLERANCE_BPS,
                    "snr {snr} {width:?}: {} vs {}",
                    approx.goodput_bps,
                    exact.goodput_bps
                );
            }
        }
        let s = t.stats();
        assert_eq!(s.hits, 14);
        assert_eq!(s.misses, 0);
        assert_eq!(s.rebuilds, 1);
    }

    #[test]
    fn grid_point_lookup_is_exact_to_rounding() {
        // At bin centres interpolation is a no-op: the tabulated values
        // are exact-curve samples, so goodput matches to f64 noise.
        let e = LinkQualityEstimator::default();
        let t = GoodputTable::build(e, -12.0, 48.0, 0.25);
        for b in [0usize, 7, 60, 141, 240] {
            let snr = -12.0 + b as f64 * 0.25;
            let approx = t.rate_point(snr, ChannelWidth::Ht20);
            let exact = e.best_rate_point(snr, ChannelWidth::Ht20);
            assert!(
                (approx.goodput_bps - exact.goodput_bps).abs() < 1e-3,
                "bin {b}: {} vs {}",
                approx.goodput_bps,
                exact.goodput_bps
            );
        }
    }

    #[test]
    fn out_of_range_falls_back_to_exact() {
        let e = LinkQualityEstimator::default();
        let t = GoodputTable::build(e, -12.0, 48.0, 0.5);
        for snr in [-100.0, 90.0, f64::NAN] {
            let approx = t.rate_point(snr, ChannelWidth::Ht20);
            let exact = e.best_rate_point(snr, ChannelWidth::Ht20);
            assert_eq!(approx.goodput_bps.to_bits(), exact.goodput_bps.to_bits());
            assert_eq!(approx.mcs, exact.mcs);
        }
        assert_eq!(t.stats().misses, 3);
        assert_eq!(t.stats().hits, 0);
    }

    #[test]
    fn self_check_error_is_recorded_and_small() {
        let t = table();
        let err = t.max_check_error_bps();
        assert!(err > 0.0, "midpoint sweep should see some error");
        assert!(
            err < GoodputTable::GOODPUT_TOLERANCE_BPS,
            "max quantization error {err} b/s"
        );
    }

    #[test]
    fn estimate_matches_exact_classification() {
        let t = table();
        let e = LinkQualityEstimator::default();
        for snr in (-10..=45).map(f64::from) {
            let a = t.estimate(snr, ChannelWidth::Ht20);
            let b = e.estimate(snr, ChannelWidth::Ht20);
            assert_eq!(a.class, b.class, "snr {snr}");
            assert_eq!(a.snr20_db.to_bits(), b.snr20_db.to_bits());
            assert_eq!(a.snr40_db.to_bits(), b.snr40_db.to_bits());
        }
    }

    #[test]
    fn coarse_table_has_larger_error_than_fine_table() {
        let e = LinkQualityEstimator::default();
        let fine = table();
        let coarse = GoodputTable::build(e, -12.0, 48.0, 1.0);
        assert!(coarse.max_check_error_bps() > fine.max_check_error_bps());
    }

    #[test]
    #[should_panic(expected = "SNR step must be positive")]
    fn zero_step_panics() {
        GoodputTable::build(LinkQualityEstimator::default(), 0.0, 10.0, 0.0);
    }
}
