//! ACORN's link-quality estimator (§4.2 of the paper).
//!
//! To decide channel widths, an AP must predict how each client link would
//! behave on a channel of the *other* width without actually switching to
//! it. The paper's estimator does this in three steps, reproduced here
//! exactly:
//!
//! 1. **SNR calibration** — "When we change the width (20/40 MHz), there is
//!    a 3 dB change in the SNR; this processing is performed by a SNR
//!    calibration module" ([`LinkQualityEstimator::calibrate_snr`]).
//! 2. **BER estimation** — "a BER estimation module calculates the
//!    theoretical coded BER (from \[19\])" (via `Mcs::coded_ber`).
//! 3. **PER estimation** — Eq. 6, `PER = 1 − (1 − BER)^L` under the
//!    independent-bit-error assumption (via `Mcs::per`).
//!
//! "Note here that ACORN does not require the exact BER or PER values; it
//! only needs a coarse estimate of the link quality i.e., a reasonable
//! classification of good and poor links" — that classification is
//! [`LinkClass`], derived by comparing the link's best achievable goodput
//! with and without bonding.

use crate::link::cb_snr_shift_db;
use crate::mcs::{McsIndex, MimoMode};
use crate::ofdm::{ChannelWidth, GuardInterval};

/// Coarse link classification used by ACORN's association and allocation
/// modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// A link that benefits from channel bonding (its best 40 MHz goodput
    /// exceeds its best 20 MHz goodput).
    Good,
    /// A link that bonding hurts or barely helps — the kind that drags a
    /// bonded cell down via the 802.11 performance anomaly.
    Poor,
}

/// One operating point chosen by exhaustive MCS/mode search: the best
/// (MCS, MIMO mode) at a given SNR and width, with its predicted error
/// rates and goodput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatePoint {
    /// Chosen MCS index.
    pub mcs: McsIndex,
    /// Chosen MIMO mode (STBC for reliability, SDM for rate).
    pub mode: MimoMode,
    /// Predicted post-FEC bit error rate.
    pub coded_ber: f64,
    /// Predicted packet error rate (Eq. 6).
    pub per: f64,
    /// Predicted goodput `(1 − PER) · R` in bits/s.
    pub goodput_bps: f64,
}

/// Full estimator output for one link: the predicted operating point on
/// both widths plus the good/poor classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkQualityEstimate {
    /// Calibrated per-subcarrier SNR on a 20 MHz channel (dB).
    pub snr20_db: f64,
    /// Calibrated per-subcarrier SNR on a bonded 40 MHz channel (dB).
    pub snr40_db: f64,
    /// Best predicted operating point on 20 MHz.
    pub best20: RatePoint,
    /// Best predicted operating point on 40 MHz.
    pub best40: RatePoint,
    /// Good/poor classification (does bonding help this link?).
    pub class: LinkClass,
}

impl LinkQualityEstimate {
    /// The width that maximizes this link's predicted goodput.
    pub fn preferred_width(&self) -> ChannelWidth {
        if self.best40.goodput_bps > self.best20.goodput_bps {
            ChannelWidth::Ht40
        } else {
            ChannelWidth::Ht20
        }
    }

    /// Predicted goodput (bits/s) at a given width.
    pub fn goodput_bps(&self, width: ChannelWidth) -> f64 {
        match width {
            ChannelWidth::Ht20 => self.best20.goodput_bps,
            ChannelWidth::Ht40 => self.best40.goodput_bps,
        }
    }

    /// Predicted best operating point at a given width.
    pub fn rate_point(&self, width: ChannelWidth) -> RatePoint {
        match width {
            ChannelWidth::Ht20 => self.best20,
            ChannelWidth::Ht40 => self.best40,
        }
    }
}

/// The estimator configuration: packet size used for PER prediction and the
/// guard interval in force.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkQualityEstimator {
    /// Packet length in bytes assumed by the PER model (the paper uses
    /// 1500-byte packets throughout).
    pub packet_bytes: u32,
    /// Guard interval used for nominal rates.
    pub gi: GuardInterval,
    /// Minimum 40 MHz / 20 MHz goodput ratio for a link to classify as
    /// [`LinkClass::Good`]. ACORN assigns 20 MHz channels to APs that "do
    /// not achieve significant gains with CB" — marginal gains do not
    /// justify occupying twice the spectrum, so the default requires a 20 %
    /// improvement.
    pub cb_benefit_threshold: f64,
    /// SNR spread (dB) of the fading-averaged PER model
    /// ([`crate::fading`]); 0 (the default) uses the crisp AWGN curves.
    /// Around 3 dB reproduces testbed-like transition-band widths.
    pub fading_sigma_db: f64,
}

impl Default for LinkQualityEstimator {
    fn default() -> Self {
        LinkQualityEstimator {
            packet_bytes: 1500,
            gi: GuardInterval::Long,
            cb_benefit_threshold: 1.2,
            fading_sigma_db: 0.0,
        }
    }
}

impl LinkQualityEstimator {
    /// SNR calibration (§4.2): translate an SNR measured at `from` width to
    /// the SNR the same link would see at `to` width (±3 dB, or unchanged
    /// when the widths match).
    pub fn calibrate_snr(&self, snr_db: f64, from: ChannelWidth, to: ChannelWidth) -> f64 {
        match (from, to) {
            (ChannelWidth::Ht20, ChannelWidth::Ht40) => snr_db + cb_snr_shift_db(),
            (ChannelWidth::Ht40, ChannelWidth::Ht20) => snr_db - cb_snr_shift_db(),
            _ => snr_db,
        }
    }

    /// The (coded BER, PER) prediction for one MCS at a mode-effective
    /// SNR — the single primitive both [`best_rate_point`]
    /// (LinkQualityEstimator::best_rate_point) and the memoized
    /// `GoodputTable` build call, so the exact and tabulated paths always
    /// share the same error model (crisp AWGN or fading-averaged).
    pub fn error_rates(&self, mcs: &crate::mcs::Mcs, eff_snr_db: f64) -> (f64, f64) {
        if self.fading_sigma_db > 0.0 {
            (
                crate::fading::faded_coded_ber(mcs, eff_snr_db, self.fading_sigma_db),
                crate::fading::faded_per(mcs, eff_snr_db, self.fading_sigma_db, self.packet_bytes),
            )
        } else {
            (
                mcs.coded_ber(eff_snr_db),
                mcs.per(eff_snr_db, self.packet_bytes),
            )
        }
    }

    /// Exhaustive best-(MCS, mode) search at a given calibrated SNR and
    /// width — the model of the testbed's auto-rate behaviour used for
    /// prediction: maximize expected goodput `(1 − PER) · R` over MCS 0–7
    /// with STBC and MCS 8–15 with SDM.
    pub fn best_rate_point(&self, snr_db: f64, width: ChannelWidth) -> RatePoint {
        let rate_point = |idx: McsIndex| {
            let mcs = idx.mcs();
            let mode = if mcs.n_ss == 1 {
                MimoMode::Stbc
            } else {
                MimoMode::Sdm
            };
            let eff_snr = mode.effective_snr_db(snr_db);
            let (coded_ber, per) = self.error_rates(&mcs, eff_snr);
            RatePoint {
                mcs: idx,
                mode,
                coded_ber,
                per,
                goodput_bps: (1.0 - per) * mcs.rate_bps(width, self.gi),
            }
        };
        // Seed with MCS 0, then scan upward keeping the first candidate
        // on exact ties — same selection order as the auto-rate model.
        let mut best = rate_point(McsIndex::new(0).unwrap_or(McsIndex::MAX));
        for idx in McsIndex::all().skip(1) {
            let candidate = rate_point(idx);
            if candidate.goodput_bps > best.goodput_bps {
                best = candidate;
            }
        }
        best
    }

    /// Runs the full §4.2 pipeline: calibrate the measured SNR to both
    /// widths, predict the best operating point on each, and classify the
    /// link.
    pub fn estimate(&self, measured_snr_db: f64, measured_at: ChannelWidth) -> LinkQualityEstimate {
        let snr20 = self.calibrate_snr(measured_snr_db, measured_at, ChannelWidth::Ht20);
        let snr40 = self.calibrate_snr(measured_snr_db, measured_at, ChannelWidth::Ht40);
        let best20 = self.best_rate_point(snr20, ChannelWidth::Ht20);
        let best40 = self.best_rate_point(snr40, ChannelWidth::Ht40);
        let class = if best40.goodput_bps > self.cb_benefit_threshold * best20.goodput_bps {
            LinkClass::Good
        } else {
            LinkClass::Poor
        };
        LinkQualityEstimate {
            snr20_db: snr20,
            snr40_db: snr40,
            best20,
            best40,
            class,
        }
    }

    /// Batched [`estimate`](LinkQualityEstimator::estimate) over a
    /// measurement grid — the shape the AP-side width allocator and the
    /// Monte-Carlo calibration harness consume: one call per cell (or per
    /// sweep), not one per link. `estimates[i]` equals
    /// `self.estimate(measurements[i].0, measurements[i].1)` exactly.
    pub fn estimate_grid(&self, measurements: &[(f64, ChannelWidth)]) -> Vec<LinkQualityEstimate> {
        measurements
            .iter()
            .map(|&(snr_db, at)| self.estimate(snr_db, at))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_symmetric() {
        let e = LinkQualityEstimator::default();
        let snr = 13.7;
        let to40 = e.calibrate_snr(snr, ChannelWidth::Ht20, ChannelWidth::Ht40);
        assert!((to40 - (snr - 3.0103)).abs() < 1e-3);
        let back = e.calibrate_snr(to40, ChannelWidth::Ht40, ChannelWidth::Ht20);
        assert!((back - snr).abs() < 1e-9);
        assert_eq!(
            e.calibrate_snr(snr, ChannelWidth::Ht20, ChannelWidth::Ht20),
            snr
        );
    }

    #[test]
    fn strong_links_classify_good() {
        let e = LinkQualityEstimator::default();
        let est = e.estimate(35.0, ChannelWidth::Ht20);
        assert_eq!(est.class, LinkClass::Good);
        assert_eq!(est.preferred_width(), ChannelWidth::Ht40);
        // A clean bonded link should be close to doubling throughput, but
        // per §3 it never quite doubles relative to nominal expectations
        // when error rates are non-zero at the chosen MCS.
        assert!(est.best40.goodput_bps > 1.5 * est.best20.goodput_bps);
    }

    #[test]
    fn weak_links_classify_poor() {
        let e = LinkQualityEstimator::default();
        // Around the σ-transition SNRs of Table 1, bonding gains are
        // marginal at best — the link classifies Poor.
        let est = e.estimate(3.0, ChannelWidth::Ht20);
        assert_eq!(est.class, LinkClass::Poor);
        // At the bottom of the MCS ladder there is no lower rate to retreat
        // to, so the bonded channel loses outright and even the raw goodput
        // preference is 20 MHz.
        let very_weak = e.estimate(0.0, ChannelWidth::Ht20);
        assert_eq!(very_weak.class, LinkClass::Poor);
        assert_eq!(very_weak.preferred_width(), ChannelWidth::Ht20);
    }

    #[test]
    fn best_rate_point_uses_low_mcs_at_low_snr() {
        let e = LinkQualityEstimator::default();
        let low = e.best_rate_point(2.0, ChannelWidth::Ht20);
        let high = e.best_rate_point(35.0, ChannelWidth::Ht20);
        assert!(low.mcs.value() < high.mcs.value());
        assert_eq!(high.mode, MimoMode::Sdm);
        assert_eq!(low.mode, MimoMode::Stbc);
    }

    #[test]
    fn optimal_mcs_less_aggressive_on_bonded_channel() {
        // Fig. 6(b): the optimal MCS with 40 MHz is almost always ≤ the one
        // with 20 MHz (because of the 3 dB SNR loss).
        let e = LinkQualityEstimator::default();
        for snr20 in [5.0, 8.0, 12.0, 16.0, 20.0, 24.0, 28.0] {
            let est = e.estimate(snr20, ChannelWidth::Ht20);
            assert!(
                est.best40.mcs.value() <= est.best20.mcs.value(),
                "snr {snr20}: 40MHz MCS {} > 20MHz MCS {}",
                est.best40.mcs.value(),
                est.best20.mcs.value()
            );
        }
    }

    #[test]
    fn goodput_never_doubles_with_cb() {
        // §3.2: "the throughput observed with CB is almost always less than
        // double of that without CB". Allow the 108/104 nominal-rate edge.
        let e = LinkQualityEstimator::default();
        for snr in (-5..40).step_by(2) {
            let est = e.estimate(snr as f64, ChannelWidth::Ht20);
            let ratio = est.best40.goodput_bps / est.best20.goodput_bps.max(1.0);
            assert!(ratio < 2.1, "snr {snr}: ratio {ratio}");
        }
    }

    #[test]
    fn estimate_monotone_in_snr() {
        let e = LinkQualityEstimator::default();
        let mut prev20 = 0.0;
        for snr in (-10..=40).step_by(1) {
            let est = e.estimate(snr as f64, ChannelWidth::Ht20);
            assert!(
                est.best20.goodput_bps + 1.0 >= prev20,
                "goodput dropped at snr {snr}"
            );
            prev20 = est.best20.goodput_bps;
        }
    }

    #[test]
    fn measured_at_40_maps_back_to_20() {
        let e = LinkQualityEstimator::default();
        let a = e.estimate(20.0, ChannelWidth::Ht20);
        let b = e.estimate(20.0 + cb_snr_shift_db(), ChannelWidth::Ht40);
        assert!((a.snr20_db - b.snr20_db).abs() < 1e-9);
        assert!((a.snr40_db - b.snr40_db).abs() < 1e-9);
    }

    use crate::link::cb_snr_shift_db;

    #[test]
    fn estimate_grid_matches_pointwise_estimates() {
        let e = LinkQualityEstimator::default();
        let grid: Vec<(f64, ChannelWidth)> = (-5..=35)
            .step_by(5)
            .flat_map(|s| {
                [
                    (s as f64, ChannelWidth::Ht20),
                    (s as f64, ChannelWidth::Ht40),
                ]
            })
            .collect();
        let batched = e.estimate_grid(&grid);
        assert_eq!(batched.len(), grid.len());
        for (i, &(snr, at)) in grid.iter().enumerate() {
            assert_eq!(batched[i], e.estimate(snr, at), "cell {i}");
        }
        assert!(e.estimate_grid(&[]).is_empty());
    }

    #[test]
    fn rate_point_accessor_matches_fields() {
        let e = LinkQualityEstimator::default();
        let est = e.estimate(18.0, ChannelWidth::Ht20);
        assert_eq!(est.rate_point(ChannelWidth::Ht20), est.best20);
        assert_eq!(est.rate_point(ChannelWidth::Ht40), est.best40);
        assert_eq!(est.goodput_bps(ChannelWidth::Ht40), est.best40.goodput_bps);
    }
}
