//! Decibel / milliwatt unit conversions used throughout the PHY stack.
//!
//! All link-budget arithmetic in the crate is done in dB/dBm because that is
//! how the paper reasons about channel bonding ("a 3 dB reduction in the
//! power per sub-carrier"). These helpers are the single source of truth for
//! converting to and from linear units.

/// Converts a power ratio expressed in decibels to a linear ratio.
///
/// `db_to_linear(3.0)` ≈ 2.0, `db_to_linear(-3.0)` ≈ 0.5.
#[inline]
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear power ratio to decibels.
///
/// Returns `f64::NEG_INFINITY` for a zero ratio (silence), and NaN for
/// negative input (powers are non-negative; a negative argument is a caller
/// bug that we surface rather than mask).
#[inline]
pub fn linear_to_db(ratio: f64) -> f64 {
    10.0 * ratio.log10()
}

/// Converts an absolute power in dBm to milliwatts.
#[inline]
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts an absolute power in milliwatts to dBm.
#[inline]
pub fn mw_to_dbm(mw: f64) -> f64 {
    10.0 * mw.log10()
}

/// Adds two powers expressed in dBm (i.e. sums them in the linear domain).
///
/// Useful for aggregating interference from several transmitters.
#[inline]
pub fn dbm_add(a_dbm: f64, b_dbm: f64) -> f64 {
    mw_to_dbm(dbm_to_mw(a_dbm) + dbm_to_mw(b_dbm))
}

/// Sums an iterator of powers in dBm in the linear domain.
///
/// Returns `f64::NEG_INFINITY` (no power) for an empty iterator.
pub fn dbm_sum<I: IntoIterator<Item = f64>>(powers_dbm: I) -> f64 {
    let total_mw: f64 = powers_dbm.into_iter().map(dbm_to_mw).sum();
    if total_mw == 0.0 {
        f64::NEG_INFINITY
    } else {
        mw_to_dbm(total_mw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn db_roundtrip() {
        for db in [-30.0, -3.0, 0.0, 3.0, 10.0, 23.5] {
            assert!(close(linear_to_db(db_to_linear(db)), db, 1e-9));
        }
    }

    #[test]
    fn dbm_roundtrip() {
        for dbm in [-95.0, -60.0, 0.0, 15.0, 23.0] {
            assert!(close(mw_to_dbm(dbm_to_mw(dbm)), dbm, 1e-9));
        }
    }

    #[test]
    fn three_db_is_a_factor_of_two() {
        assert!(close(db_to_linear(3.0103), 2.0, 1e-3));
        assert!(close(db_to_linear(-3.0103), 0.5, 1e-4));
    }

    #[test]
    fn zero_dbm_is_one_milliwatt() {
        assert!(close(dbm_to_mw(0.0), 1.0, 1e-12));
    }

    #[test]
    fn dbm_add_doubles_equal_powers() {
        // Two equal interferers add up to +3 dB.
        assert!(close(dbm_add(-60.0, -60.0), -56.9897, 1e-3));
    }

    #[test]
    fn dbm_sum_empty_is_silence() {
        assert_eq!(dbm_sum(std::iter::empty()), f64::NEG_INFINITY);
    }

    #[test]
    fn dbm_sum_matches_pairwise_add() {
        let s = dbm_sum([-70.0, -70.0, -70.0]);
        let p = dbm_add(dbm_add(-70.0, -70.0), -70.0);
        assert!(close(s, p, 1e-9));
    }

    #[test]
    fn linear_to_db_of_zero_is_neg_infinity() {
        assert_eq!(linear_to_db(0.0), f64::NEG_INFINITY);
    }
}
