//! Fading-averaged error rates (estimator extension).
//!
//! The closed-form AWGN curves in [`crate::coding`] transition from
//! "perfect" to "dead" within ~1.5 dB — much steeper than testbed
//! measurements, where shadowing and residual fading smear the effective
//! SNR over several dB (one reason the paper's Table 1 shows a 2–3 dB
//! transition band). This module provides the smeared version: error
//! rates averaged over a lognormal SNR distribution,
//!
//! ```text
//! E[PER] = ∫ PER(γ + x)·N(x; 0, σ²) dx
//! ```
//!
//! evaluated with 7-point Gauss–Hermite quadrature. The estimator exposes
//! it through [`crate::estimator::LinkQualityEstimator::fading_sigma_db`]
//! (0 = plain AWGN, the default, which keeps the analytic reproduction of
//! Table 1 crisp).

use crate::mcs::Mcs;

/// 7-point Gauss–Hermite abscissae (for ∫ e^{−x²} f(x) dx).
const GH_X: [f64; 7] = [
    -2.651_961_356_835_233,
    -1.673_551_628_767_471,
    -0.816_287_882_858_964_7,
    0.0,
    0.816_287_882_858_964_7,
    1.673_551_628_767_471,
    2.651_961_356_835_233,
];

/// Matching Gauss–Hermite weights.
const GH_W: [f64; 7] = [
    9.717_812_450_995_192e-4,
    5.451_558_281_912_703e-2,
    4.256_072_526_101_278e-1,
    8.102_646_175_568_073e-1,
    4.256_072_526_101_278e-1,
    5.451_558_281_912_703e-2,
    9.717_812_450_995_192e-4,
];

/// Averages an SNR-indexed metric over a Gaussian (in dB) SNR spread:
/// `E[f(γ + X)]` with `X ~ N(0, sigma_db²)`.
pub fn gaussian_snr_average<F: Fn(f64) -> f64>(snr_db: f64, sigma_db: f64, f: F) -> f64 {
    if sigma_db <= 0.0 {
        return f(snr_db);
    }
    let norm = std::f64::consts::PI.sqrt();
    GH_X.iter()
        .zip(GH_W.iter())
        .map(|(&x, &w)| w * f(snr_db + std::f64::consts::SQRT_2 * sigma_db * x))
        .sum::<f64>()
        / norm
}

/// Fading-averaged packet error rate of an MCS at mean per-stream SNR.
pub fn faded_per(mcs: &Mcs, mean_snr_db: f64, sigma_db: f64, packet_bytes: u32) -> f64 {
    gaussian_snr_average(mean_snr_db, sigma_db, |g| mcs.per(g, packet_bytes)).clamp(0.0, 1.0)
}

/// Fading-averaged coded BER of an MCS at mean per-stream SNR.
pub fn faded_coded_ber(mcs: &Mcs, mean_snr_db: f64, sigma_db: f64) -> f64 {
    gaussian_snr_average(mean_snr_db, sigma_db, |g| mcs.coded_ber(g)).clamp(0.0, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs::McsIndex;

    fn mcs4() -> Mcs {
        McsIndex::new(4).unwrap().mcs()
    }

    #[test]
    fn zero_sigma_is_the_awgn_curve() {
        let m = mcs4();
        for snr in [5.0, 10.0, 15.0, 20.0] {
            assert_eq!(faded_per(&m, snr, 0.0, 1500), m.per(snr, 1500));
        }
    }

    #[test]
    fn quadrature_weights_sum_to_sqrt_pi() {
        let s: f64 = GH_W.iter().sum();
        assert!((s - std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn average_of_constant_is_the_constant() {
        let v = gaussian_snr_average(12.0, 4.0, |_| 0.37);
        assert!((v - 0.37).abs() < 1e-9);
    }

    #[test]
    fn average_of_linear_is_the_mean() {
        // E[γ + X] = γ for zero-mean X.
        let v = gaussian_snr_average(9.0, 3.0, |g| g);
        assert!((v - 9.0).abs() < 1e-9);
    }

    #[test]
    fn fading_smears_the_cliff() {
        // On the steep part of the PER curve, fading raises the "almost
        // clean" side and lowers the "almost dead" side.
        let m = mcs4();
        // Find a clean point and a dead point around the cliff.
        let mut clean = None;
        let mut dead = None;
        for i in 0..400 {
            let snr = i as f64 * 0.1;
            let p = m.per(snr, 1500);
            if p < 0.01 && clean.is_none() {
                clean = Some(snr);
            }
            if p > 0.99 {
                dead = Some(snr);
            }
        }
        let clean = clean.unwrap();
        let dead = dead.unwrap();
        assert!(faded_per(&m, clean, 4.0, 1500) > m.per(clean, 1500) + 0.01);
        assert!(faded_per(&m, dead, 4.0, 1500) < m.per(dead, 1500) - 0.01);
    }

    #[test]
    fn faded_per_is_monotone_in_snr() {
        let m = mcs4();
        let mut prev = 1.0;
        for i in 0..80 {
            let p = faded_per(&m, i as f64 * 0.5, 3.0, 1500);
            assert!(p <= prev + 1e-9, "at {} dB", i as f64 * 0.5);
            prev = p;
        }
    }

    #[test]
    fn faded_transition_band_is_wider() {
        // Width of the 0.1..0.9 PER region, AWGN vs faded — the Table 1
        // "2–3 dB band" mechanism.
        let m = mcs4();
        let band = |sigma: f64| {
            let mut lo = None;
            let mut hi = None;
            for i in 0..600 {
                let snr = i as f64 * 0.05;
                let p = faded_per(&m, snr, sigma, 1500);
                if p < 0.9 && hi.is_none() {
                    hi = Some(snr);
                }
                if p < 0.1 && lo.is_none() {
                    lo = Some(snr);
                }
            }
            lo.unwrap() - hi.unwrap()
        };
        assert!(
            band(3.0) > 2.0 * band(0.0),
            "faded {} vs awgn {}",
            band(3.0),
            band(0.0)
        );
    }

    #[test]
    fn faded_ber_stays_bounded() {
        let m = mcs4();
        for snr in [-20.0, 0.0, 15.0, 40.0] {
            let b = faded_coded_ber(&m, snr, 5.0);
            assert!((0.0..=0.5).contains(&b));
        }
    }
}
