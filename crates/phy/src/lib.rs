//! # acorn-phy — analytic 802.11n PHY models
//!
//! This crate provides the *analytic* physical-layer machinery that the
//! ACORN paper ("Auto-configuration of 802.11n WLANs", CoNEXT 2010) builds
//! its measurement insights and its link-quality estimator on:
//!
//! * OFDM channelization for 20 MHz and 40 MHz (channel-bonded) operation —
//!   subcarrier layouts, symbol timings and guard intervals ([`ofdm`]).
//! * The full HT MCS 0–15 table with nominal rates for both widths ([`mcs`]).
//! * Thermal-noise floor `N = −174 + 10·log10(B)` dBm ([`noise`]).
//! * Exact AWGN bit-error-rate formulas for BPSK/QPSK/16-QAM/64-QAM and
//!   Shannon capacity ([`modulation`]).
//! * Coded-BER union bounds for the K=7 convolutional code at the punctured
//!   802.11 rates, and the PER model `PER = 1 − (1 − BER)^L` ([`coding`]).
//! * Link budgets, the paper's central **−3 dB channel-bonding calibration
//!   rule**, the σ delivery-ratio metric of Eq. 3 and its crossover-threshold
//!   search (Table 1) ([`link`]).
//! * ACORN's link-quality estimator pipeline from §4.2: SNR calibration →
//!   BER estimation → PER estimation → good/poor classification
//!   ([`estimator`]).
//!
//! Everything here is pure, deterministic math; the Monte-Carlo baseband
//! (the WARP-board substitute) lives in `acorn-baseband`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coding;
pub mod estimator;
pub mod fading;
pub mod link;
pub mod mcs;
pub mod modulation;
pub mod noise;
pub mod ofdm;
pub mod table;
pub mod units;

pub use coding::{coded_ber, per_from_ber, CodeRate};
pub use estimator::{LinkClass, LinkQualityEstimate, LinkQualityEstimator};
pub use fading::{faded_coded_ber, faded_per, gaussian_snr_average};
pub use link::{cb_snr_shift_db, sigma, sigma_crossover_snr, LinkBudget};
pub use mcs::{Mcs, McsIndex, MimoMode};
pub use modulation::Modulation;
pub use noise::noise_floor_dbm;
pub use ofdm::{ChannelWidth, GuardInterval, OfdmParams};
pub use table::{GoodputTable, TableStats};
pub use units::{db_to_linear, dbm_to_mw, linear_to_db, mw_to_dbm};
