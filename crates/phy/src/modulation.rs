//! Modulation schemes and exact AWGN error-rate formulas.
//!
//! §3.1 validates WARP-measured uncoded BER curves against "the theoretical
//! bit error rates for the considered system from \[19\]" (Rappaport) and
//! finds R² of 0.8–0.89. This module provides those textbook formulas:
//! Gray-coded BPSK/QPSK/16-QAM/64-QAM bit-error probability over AWGN as a
//! function of per-subcarrier SNR, plus Shannon capacity (Eq. 2), which the
//! paper uses to argue that widening the band can *reduce* capacity in the
//! low-SNR regime.

use crate::units::db_to_linear;

/// Complementary error function, `erfc(x) = 1 − erf(x)`.
///
/// Uses the rational Chebyshev approximation from Numerical Recipes §6.2
/// (fractional error < 1.2·10⁻⁷ everywhere), which is ample for BER work
/// down to ~10⁻¹⁰ given that we always operate on smooth SNR sweeps.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Gaussian tail function `Q(x) = P[N(0,1) > x] = erfc(x/√2)/2`.
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Digital modulation schemes used by 802.11n HT MCSs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Modulation {
    /// Binary phase-shift keying (1 bit / subcarrier).
    Bpsk,
    /// Quadrature phase-shift keying (2 bits / subcarrier). The paper's
    /// WARP experiments use its differential variant, DQPSK, whose AWGN BER
    /// is within a factor ~2 of coherent QPSK.
    Qpsk,
    /// 16-point quadrature amplitude modulation (4 bits / subcarrier).
    Qam16,
    /// 64-point quadrature amplitude modulation (6 bits / subcarrier).
    Qam64,
}

impl Modulation {
    /// All modulations, least to most aggressive.
    pub const ALL: [Modulation; 4] = [
        Modulation::Bpsk,
        Modulation::Qpsk,
        Modulation::Qam16,
        Modulation::Qam64,
    ];

    /// Coded bits carried per subcarrier per OFDM symbol (`log2 M`).
    pub fn bits_per_symbol(self) -> u32 {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Constellation order `M`.
    pub fn order(self) -> u32 {
        1 << self.bits_per_symbol()
    }

    /// Uncoded bit-error probability over AWGN at per-subcarrier
    /// symbol-SNR `snr_db` (signal power / noise power within the
    /// subcarrier, in dB).
    ///
    /// Formulas (Gray mapping, nearest-neighbour approximation for QAM,
    /// standard in Rappaport \[19\] and Proakis):
    ///
    /// * BPSK:  `Pb = Q(√(2γ))`
    /// * QPSK:  `Pb = Q(√γ)` per bit (γ is *symbol* SNR; per-bit SNR γ/2)
    /// * M-QAM: `Pb ≈ 4/log2(M) · (1 − 1/√M) · Q(√(3γ/(M−1)))`
    ///
    /// The result is clamped to `[0, 0.5]`: a random guess is the worst a
    /// demodulator can do on average.
    pub fn ber_awgn(self, snr_db: f64) -> f64 {
        let snr = db_to_linear(snr_db);
        let pb = match self {
            Modulation::Bpsk => q_function((2.0 * snr).sqrt()),
            Modulation::Qpsk => q_function(snr.sqrt()),
            Modulation::Qam16 | Modulation::Qam64 => {
                let m = self.order() as f64;
                let k = self.bits_per_symbol() as f64;
                4.0 / k * (1.0 - 1.0 / m.sqrt()) * q_function((3.0 * snr / (m - 1.0)).sqrt())
            }
        };
        pb.clamp(0.0, 0.5)
    }

    /// Uncoded *symbol*-error probability over AWGN at per-subcarrier SNR.
    ///
    /// Used by the baseband tests to cross-validate against Monte-Carlo
    /// constellation error counts ("baud error rate" in the paper's words).
    pub fn ser_awgn(self, snr_db: f64) -> f64 {
        let snr = db_to_linear(snr_db);
        let ps = match self {
            Modulation::Bpsk => q_function((2.0 * snr).sqrt()),
            Modulation::Qpsk => {
                let p = q_function(snr.sqrt());
                2.0 * p - p * p
            }
            Modulation::Qam16 | Modulation::Qam64 => {
                let m = self.order() as f64;
                let p_sqrt =
                    2.0 * (1.0 - 1.0 / m.sqrt()) * q_function((3.0 * snr / (m - 1.0)).sqrt());
                2.0 * p_sqrt - p_sqrt * p_sqrt
            }
        };
        ps.clamp(0.0, 1.0)
    }
}

/// Shannon capacity (bits/s) of an AWGN channel — Eq. 2 in the paper:
/// `C = B · log2(1 + SNR)`.
pub fn shannon_capacity_bps(bandwidth_hz: f64, snr_db: f64) -> f64 {
    bandwidth_hz * (1.0 + db_to_linear(snr_db)).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_known_values() {
        // erfc(0)=1, erfc(1)=0.15729920…, erfc(-1)=1.84270079…
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!(erfc(6.0) < 1e-15);
    }

    #[test]
    fn q_function_known_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        assert!((q_function(1.0) - 0.158_655_3).abs() < 1e-6);
        assert!((q_function(3.0) - 1.349_898e-3).abs() < 1e-7);
    }

    #[test]
    fn bpsk_ber_at_known_snr() {
        // At γb = 9.6 dB BPSK achieves BER ≈ 1e-5 (classic benchmark).
        let ber = Modulation::Bpsk.ber_awgn(9.6);
        assert!(ber > 0.5e-5 && ber < 2e-5, "ber = {ber}");
    }

    #[test]
    fn qpsk_matches_bpsk_per_bit() {
        // QPSK at symbol SNR γ has the same per-bit error rate as BPSK at
        // per-bit SNR γ/2 (i.e. γ − 3.01 dB).
        for snr in [0.0, 5.0, 10.0, 14.0] {
            let qpsk = Modulation::Qpsk.ber_awgn(snr);
            let bpsk = Modulation::Bpsk.ber_awgn(snr - 3.0103);
            assert!(
                (qpsk - bpsk).abs() / bpsk < 1e-3,
                "snr {snr}: {qpsk} vs {bpsk}"
            );
        }
    }

    #[test]
    fn ber_monotone_decreasing_in_snr() {
        for m in Modulation::ALL {
            let mut prev = 1.0;
            for snr_i in -10..=40 {
                let ber = m.ber_awgn(snr_i as f64);
                assert!(ber <= prev + 1e-15, "{m:?} at {snr_i} dB");
                prev = ber;
            }
        }
    }

    #[test]
    fn aggressive_modulations_have_higher_ber() {
        // The nearest-neighbour QAM approximation is only ordered in the
        // operating region (it crosses below ~2 dB where everything is
        // unusable anyway), so check at moderate-to-high SNR.
        for snr in [5.0, 10.0, 20.0, 30.0] {
            let bers: Vec<f64> = Modulation::ALL.iter().map(|m| m.ber_awgn(snr)).collect();
            for w in bers.windows(2) {
                assert!(w[0] <= w[1] + 1e-15, "snr {snr}: {bers:?}");
            }
        }
    }

    #[test]
    fn ber_saturates_at_low_snr() {
        // BPSK/QPSK saturate at 0.5; the Gray-QAM approximation saturates
        // at 4/k·(1−1/√M)·0.5 (0.375 for 16-QAM, 0.292 for 64-QAM) — still
        // "unusable", which is all the models downstream rely on.
        assert!(Modulation::Bpsk.ber_awgn(-40.0) > 0.49);
        assert!(Modulation::Qpsk.ber_awgn(-40.0) > 0.49);
        assert!(Modulation::Qam16.ber_awgn(-40.0) > 0.37);
        assert!(Modulation::Qam64.ber_awgn(-40.0) > 0.29);
    }

    #[test]
    fn ser_at_least_ber() {
        for m in Modulation::ALL {
            for snr in [-5.0, 0.0, 8.0, 15.0, 25.0] {
                assert!(m.ser_awgn(snr) + 1e-15 >= m.ber_awgn(snr), "{m:?} at {snr}");
            }
        }
    }

    #[test]
    fn shannon_low_snr_regime_can_penalize_wider_bands() {
        // The paper's Eq. 2 argument: moving 20→40 MHz costs 3 dB of SNR;
        // at low SNR the logarithmic term dominates and capacity can drop.
        let c20 = shannon_capacity_bps(20e6, -4.0);
        let c40 = shannon_capacity_bps(40e6, -7.0);
        assert!(c40 < c20 * 1.15, "c20={c20}, c40={c40}");
        // At high SNR, bonding wins handily.
        let h20 = shannon_capacity_bps(20e6, 25.0);
        let h40 = shannon_capacity_bps(40e6, 22.0);
        assert!(h40 > 1.7 * h20);
    }

    #[test]
    fn capacity_grows_with_bandwidth_at_fixed_snr() {
        assert!(shannon_capacity_bps(40e6, 10.0) > shannon_capacity_bps(20e6, 10.0));
    }
}
