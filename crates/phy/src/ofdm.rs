//! 802.11n OFDM channelization: channel widths, subcarrier layouts and
//! symbol timing.
//!
//! The paper's §3.1 ("Channel bonding micro-effects") is entirely about what
//! changes when 802.11n moves from a 20 MHz channel (52 data subcarriers,
//! 64-point FFT) to a bonded 40 MHz channel (108 data subcarriers, 128-point
//! FFT) while the total transmit power stays fixed. This module encodes
//! those layouts so that both the analytic models (`acorn-phy`) and the
//! Monte-Carlo baseband (`acorn-baseband`) agree on a single set of numbers.

use crate::units::linear_to_db;

/// Operating channel width of an 802.11n transmitter.
///
/// `Ht40` is the channel-bonded mode: two adjacent 20 MHz channels combined
/// into one 40 MHz band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChannelWidth {
    /// Conventional 20 MHz channel (52 data subcarriers).
    Ht20,
    /// Channel-bonded 40 MHz channel (108 data subcarriers).
    Ht40,
}

impl ChannelWidth {
    /// Bandwidth in Hz.
    pub fn bandwidth_hz(self) -> f64 {
        match self {
            ChannelWidth::Ht20 => 20e6,
            ChannelWidth::Ht40 => 40e6,
        }
    }

    /// Bandwidth in MHz, as the paper quotes it.
    pub fn bandwidth_mhz(self) -> f64 {
        self.bandwidth_hz() / 1e6
    }

    /// Number of OFDM *data* subcarriers (802.11n-2009: 52 for HT20,
    /// 108 for HT40).
    pub fn data_subcarriers(self) -> usize {
        match self {
            ChannelWidth::Ht20 => 52,
            ChannelWidth::Ht40 => 108,
        }
    }

    /// Number of pilot subcarriers (4 for HT20, 6 for HT40).
    pub fn pilot_subcarriers(self) -> usize {
        match self {
            ChannelWidth::Ht20 => 4,
            ChannelWidth::Ht40 => 6,
        }
    }

    /// Total populated subcarriers (data + pilots).
    pub fn populated_subcarriers(self) -> usize {
        self.data_subcarriers() + self.pilot_subcarriers()
    }

    /// FFT size used by the baseband for this width (64 vs 128 points).
    pub fn fft_size(self) -> usize {
        match self {
            ChannelWidth::Ht20 => 64,
            ChannelWidth::Ht40 => 128,
        }
    }

    /// The other width — `Ht20.flipped() == Ht40` and vice versa.
    ///
    /// ACORN's estimator uses this when asking "what would this link look
    /// like on the *other* channel width?" (§4.2).
    pub fn flipped(self) -> ChannelWidth {
        match self {
            ChannelWidth::Ht20 => ChannelWidth::Ht40,
            ChannelWidth::Ht40 => ChannelWidth::Ht20,
        }
    }

    /// Per-subcarrier energy penalty (in dB, non-positive) of operating at
    /// this width relative to HT20 for the *same total transmit power*.
    ///
    /// 802.11n mandates the same maximum transmit power with and without
    /// bonding, and OFDM spreads that power evenly over the populated
    /// subcarriers, so HT40 pays `10·log10(52/108) ≈ −3.17 dB` per
    /// subcarrier — the paper's "approximately 3 dB reduction" of Fig. 1.
    pub fn per_subcarrier_energy_shift_db(self) -> f64 {
        match self {
            ChannelWidth::Ht20 => 0.0,
            ChannelWidth::Ht40 => linear_to_db(
                ChannelWidth::Ht20.data_subcarriers() as f64
                    / ChannelWidth::Ht40.data_subcarriers() as f64,
            ),
        }
    }
}

/// 802.11n guard-interval options.
///
/// The long 800 ns GI yields a 4 µs OFDM symbol; the short 400 ns GI yields
/// 3.6 µs and raises nominal rates by a factor of 10/9 (paper §3.1 fn. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GuardInterval {
    /// 800 ns guard interval (4 µs symbols) — the paper's default.
    Long,
    /// 400 ns guard interval (3.6 µs symbols).
    Short,
}

impl GuardInterval {
    /// Guard-interval duration in seconds.
    pub fn duration_s(self) -> f64 {
        match self {
            GuardInterval::Long => 0.8e-6,
            GuardInterval::Short => 0.4e-6,
        }
    }

    /// Full OFDM symbol duration (3.2 µs useful part + GI) in seconds.
    pub fn symbol_duration_s(self) -> f64 {
        3.2e-6 + self.duration_s()
    }
}

/// Combined OFDM parameter set for one (width, GI) operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OfdmParams {
    /// Channel width (20 or 40 MHz).
    pub width: ChannelWidth,
    /// Guard interval (long 800 ns or short 400 ns).
    pub gi: GuardInterval,
}

impl OfdmParams {
    /// Constructs the parameter set the paper uses by default
    /// (long guard interval).
    pub fn new(width: ChannelWidth) -> Self {
        OfdmParams {
            width,
            gi: GuardInterval::Long,
        }
    }

    /// OFDM symbol rate in symbols per second.
    pub fn symbol_rate(&self) -> f64 {
        1.0 / self.gi.symbol_duration_s()
    }

    /// Nominal PHY bit rate in bits/s for a given number of coded bits per
    /// subcarrier (`bits_per_subcarrier = log2(M)`), code rate `r`, and
    /// `n_ss` spatial streams.
    ///
    /// For HT20 / BPSK / r=1/2 / 1 stream / long GI this evaluates to the
    /// familiar 6.5 Mb/s (MCS 0); for HT40 it gives 13.5 Mb/s — "slightly
    /// higher than double", exactly as §3.1 observes, because HT40 carries
    /// 108 data subcarriers rather than 2 × 52.
    pub fn nominal_bit_rate(&self, bits_per_subcarrier: u32, code_rate: f64, n_ss: u32) -> f64 {
        self.width.data_subcarriers() as f64
            * bits_per_subcarrier as f64
            * code_rate
            * n_ss as f64
            * self.symbol_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subcarrier_counts_match_the_standard() {
        assert_eq!(ChannelWidth::Ht20.data_subcarriers(), 52);
        assert_eq!(ChannelWidth::Ht40.data_subcarriers(), 108);
        assert_eq!(ChannelWidth::Ht20.fft_size(), 64);
        assert_eq!(ChannelWidth::Ht40.fft_size(), 128);
        assert_eq!(ChannelWidth::Ht20.populated_subcarriers(), 56);
        assert_eq!(ChannelWidth::Ht40.populated_subcarriers(), 114);
    }

    #[test]
    fn ht40_pays_about_three_db_per_subcarrier() {
        let shift = ChannelWidth::Ht40.per_subcarrier_energy_shift_db();
        // 10·log10(52/108) = −3.17 dB; the paper rounds to "about 3 dB".
        assert!(shift < -3.0 && shift > -3.4, "shift = {shift}");
        assert_eq!(ChannelWidth::Ht20.per_subcarrier_energy_shift_db(), 0.0);
    }

    #[test]
    fn ht40_energy_reduction_is_about_half() {
        // The paper quotes a ~48% reduction (approximately halved energy).
        let lin = 10f64.powf(ChannelWidth::Ht40.per_subcarrier_energy_shift_db() / 10.0);
        assert!((lin - 52.0 / 108.0).abs() < 1e-9);
        assert!(lin > 0.45 && lin < 0.52);
    }

    #[test]
    fn symbol_durations() {
        assert!((GuardInterval::Long.symbol_duration_s() - 4.0e-6).abs() < 1e-12);
        assert!((GuardInterval::Short.symbol_duration_s() - 3.6e-6).abs() < 1e-12);
    }

    #[test]
    fn mcs0_rates_match_the_standard_table() {
        let p20 = OfdmParams::new(ChannelWidth::Ht20);
        let p40 = OfdmParams::new(ChannelWidth::Ht40);
        // BPSK (1 bit), rate 1/2, single stream.
        assert!((p20.nominal_bit_rate(1, 0.5, 1) - 6.5e6).abs() < 1.0);
        assert!((p40.nominal_bit_rate(1, 0.5, 1) - 13.5e6).abs() < 1.0);
    }

    #[test]
    fn mcs7_rate_is_65_mbps() {
        let p20 = OfdmParams::new(ChannelWidth::Ht20);
        // 64-QAM (6 bits), rate 5/6, single stream = 65 Mb/s — the paper's
        // "nominal bit rate of 65 Mbps for a single data stream".
        assert!((p20.nominal_bit_rate(6, 5.0 / 6.0, 1) - 65.0e6).abs() < 1.0);
    }

    #[test]
    fn short_gi_scales_rates_by_ten_ninths() {
        let long = OfdmParams::new(ChannelWidth::Ht20);
        let short = OfdmParams {
            width: ChannelWidth::Ht20,
            gi: GuardInterval::Short,
        };
        let ratio =
            short.nominal_bit_rate(6, 5.0 / 6.0, 1) / long.nominal_bit_rate(6, 5.0 / 6.0, 1);
        assert!((ratio - 10.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn ht40_rate_is_slightly_more_than_double() {
        // 108 / (2·52) = 1.038…, so bonding more than doubles nominal rate.
        let p20 = OfdmParams::new(ChannelWidth::Ht20);
        let p40 = OfdmParams::new(ChannelWidth::Ht40);
        let ratio = p40.nominal_bit_rate(2, 0.75, 1) / p20.nominal_bit_rate(2, 0.75, 1);
        assert!(ratio > 2.0 && ratio < 2.1, "ratio = {ratio}");
    }

    #[test]
    fn flipped_is_involutive() {
        assert_eq!(ChannelWidth::Ht20.flipped(), ChannelWidth::Ht40);
        assert_eq!(ChannelWidth::Ht40.flipped().flipped(), ChannelWidth::Ht40);
    }
}
