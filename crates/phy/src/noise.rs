//! Thermal-noise modelling.
//!
//! §3.1 of the paper ("Impact of CB on thermal noise") uses the standard
//! Wi-Fi noise-floor expression `N = −174 + 10·log10(B)` dBm, observing that
//! doubling the bandwidth from 20 MHz to 40 MHz raises the total in-band
//! noise by ~3 dB while leaving the *per-subcarrier* noise almost unchanged
//! (a ~4 % reduction, since 2·52 < 108 < 2·56). Both facts are encoded and
//! tested here.

use crate::ofdm::ChannelWidth;
use crate::units::linear_to_db;

/// Thermal noise power density at T ≈ 290 K: −174 dBm/Hz.
pub const THERMAL_NOISE_DENSITY_DBM_PER_HZ: f64 = -174.0;

/// Noise floor (dBm) of an ideal receiver over bandwidth `bandwidth_hz`.
///
/// `N = −174 + 10·log10(B)` — Eq. 1 in the paper.
pub fn noise_floor_dbm(bandwidth_hz: f64) -> f64 {
    THERMAL_NOISE_DENSITY_DBM_PER_HZ + linear_to_db(bandwidth_hz)
}

/// Noise floor (dBm) of a receiver with noise figure `nf_db` over a whole
/// 802.11n channel of the given width.
pub fn channel_noise_floor_dbm(width: ChannelWidth, nf_db: f64) -> f64 {
    noise_floor_dbm(width.bandwidth_hz()) + nf_db
}

/// Per-data-subcarrier noise power (dBm), assuming noise is uniformly
/// distributed over the populated subcarriers of the channel.
///
/// The paper notes this is nearly identical for 20 and 40 MHz channels
/// ("in theory there is just a 4% reduction").
pub fn per_subcarrier_noise_dbm(width: ChannelWidth, nf_db: f64) -> f64 {
    channel_noise_floor_dbm(width, nf_db) - linear_to_db(width.data_subcarriers() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_mhz_noise_floor_is_about_minus_101_dbm() {
        let n = noise_floor_dbm(20e6);
        assert!((n - (-100.99)).abs() < 0.05, "n = {n}");
    }

    #[test]
    fn bonding_raises_total_noise_by_three_db() {
        let n20 = noise_floor_dbm(ChannelWidth::Ht20.bandwidth_hz());
        let n40 = noise_floor_dbm(ChannelWidth::Ht40.bandwidth_hz());
        assert!((n40 - n20 - 3.0103).abs() < 1e-3);
    }

    #[test]
    fn per_subcarrier_noise_nearly_unchanged_by_bonding() {
        // The paper: "the noise per subcarrier can be expected to remain
        // almost the same ... in theory there is just a 4% reduction".
        let p20 = per_subcarrier_noise_dbm(ChannelWidth::Ht20, 0.0);
        let p40 = per_subcarrier_noise_dbm(ChannelWidth::Ht40, 0.0);
        let ratio = 10f64.powf((p40 - p20) / 10.0);
        assert!((ratio - 2.0 * 52.0 / 108.0).abs() < 1e-6);
        assert!(ratio > 0.94 && ratio < 0.98, "ratio = {ratio}");
    }

    #[test]
    fn noise_figure_shifts_floor_linearly() {
        let ideal = channel_noise_floor_dbm(ChannelWidth::Ht20, 0.0);
        let real = channel_noise_floor_dbm(ChannelWidth::Ht20, 6.0);
        assert!((real - ideal - 6.0).abs() < 1e-12);
    }
}
