//! Exact CTMC throughput of overlapping bonded WLANs — the simulator's
//! independent cross-check.
//!
//! Faridi et al. (arXiv:1509.00290) model a set of overlapping WLANs
//! with channel bonding as a continuous-time Markov chain: each WLAN is
//! `idle`, `tx@20` (primary only) or `tx@40` (its allocated pair), a
//! feasible global state never has two *interfering* WLANs occupying a
//! common 20 MHz channel, idle WLANs activate at rate `λ` onto whichever
//! widths their DCB policy admits given the channels their active
//! neighbours currently hold, and transmissions complete at a
//! width-dependent service rate (`μ₄₀ = 2·μ₂₀` — double the width, half
//! the airtime for the same payload). Solving `π·Q = 0` exactly gives
//! per-WLAN long-run throughput with no simulation noise, which is
//! precisely what makes it a *cross-check*: `tests/dcb.rs` gates the
//! event-driven simulator (`acorn-events::dcb`) against these closed-form
//! numbers within a documented tolerance, the same role PR 2's
//! calibration module played for the baseband engine.
//!
//! Only the **Markovian** policy families appear here: static-primary,
//! always-max, and probabilistic are memoryless decision rules, so the
//! chain above is exact for them. The occupancy-aware family conditions
//! on an EWMA of past observations — its state is history-dependent and
//! it deliberately has no CTMC counterpart (DESIGN.md §17 documents the
//! boundary).

use crate::policy::PolicyKind;
use acorn_topology::{Channel20, ChannelAssignment, InterferenceGraph};
use std::collections::HashMap;
use std::fmt;

/// The CTMC-checkable (memoryless) subset of [`PolicyKind`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MarkovPolicy {
    /// Never bond — every activation is a 20 MHz transmission.
    StaticPrimary,
    /// Bond whenever the allocated secondary is free at activation.
    AlwaysMax,
    /// Bond with probability `p` when the secondary is free (activation
    /// rate `λ` thins into `λ·p` at 40 MHz and `λ·(1−p)` at 20 MHz).
    Probabilistic(f64),
}

impl TryFrom<PolicyKind> for MarkovPolicy {
    type Error = CtmcError;

    fn try_from(kind: PolicyKind) -> Result<MarkovPolicy, CtmcError> {
        match kind {
            PolicyKind::StaticPrimary => Ok(MarkovPolicy::StaticPrimary),
            PolicyKind::AlwaysMax => Ok(MarkovPolicy::AlwaysMax),
            PolicyKind::Probabilistic(p) => Ok(MarkovPolicy::Probabilistic(p)),
            PolicyKind::OccupancyAware(_) => Err(CtmcError::NotMarkovian),
        }
    }
}

/// Rates and payload of the traffic model both the CTMC and the DCB
/// simulator share.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtmcParams {
    /// Activation-attempt rate `λ` of an idle WLAN (1/s).
    pub attempt_rate_hz: f64,
    /// Service rate `μ₂₀` of a 20 MHz transmission (1/s); a 40 MHz
    /// transmission completes at `2·μ₂₀`.
    pub service_rate20_hz: f64,
    /// Bits delivered per completed transmission.
    pub payload_bits: f64,
}

impl Default for CtmcParams {
    fn default() -> CtmcParams {
        CtmcParams {
            attempt_rate_hz: 1.0,
            service_rate20_hz: 0.5,
            payload_bits: 1.2e6,
        }
    }
}

/// Why a CTMC could not be built or solved.
#[derive(Debug, Clone, PartialEq)]
pub enum CtmcError {
    /// The policy's decision depends on history (occupancy EWMA) — it
    /// has no memoryless chain and cannot be cross-checked here.
    NotMarkovian,
    /// `alloc.len()` disagrees with the graph's AP count.
    MismatchedAllocation {
        /// APs in the interference graph.
        aps: usize,
        /// Entries in the allocation vector.
        allocs: usize,
    },
    /// A rate or payload was non-finite or non-positive.
    BadRate(f64),
    /// A bond probability fell outside `[0, 1]` (or was NaN).
    BadProbability(f64),
    /// The feasible state space exceeded the solver cap.
    TooLarge {
        /// Feasible states counted before giving up.
        states: usize,
        /// The cap.
        cap: usize,
    },
    /// The stationary system was numerically singular.
    Singular,
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmcError::NotMarkovian => {
                write!(f, "occupancy-aware DCB is history-dependent: no CTMC")
            }
            CtmcError::MismatchedAllocation { aps, allocs } => {
                write!(f, "{aps} APs but {allocs} allocations")
            }
            CtmcError::BadRate(r) => write!(f, "rates must be finite and positive, got {r}"),
            CtmcError::BadProbability(p) => write!(f, "bond probability {p} outside [0, 1]"),
            CtmcError::TooLarge { states, cap } => {
                write!(f, "{states} feasible states exceed the solver cap {cap}")
            }
            CtmcError::Singular => write!(f, "stationary system is singular"),
        }
    }
}

impl std::error::Error for CtmcError {}

/// The exact stationary solution.
#[derive(Debug, Clone, PartialEq)]
pub struct CtmcSolution {
    /// Long-run per-WLAN throughput (bits/s): completion rate in the
    /// stationary distribution times the payload.
    pub per_wlan_bps: Vec<f64>,
    /// Stationary fraction of time each WLAN spends transmitting at
    /// 40 MHz.
    pub tx40_time_fraction: Vec<f64>,
    /// Feasible states the chain was solved over.
    pub n_states: usize,
}

impl CtmcSolution {
    /// Aggregate network throughput (bits/s).
    pub fn total_bps(&self) -> f64 {
        self.per_wlan_bps.iter().sum()
    }
}

/// Hard cap on the feasible state space (3^9 would already be past it —
/// the cross-check is a small-topology instrument by design).
const MAX_STATES: usize = 20_000;

/// Per-WLAN CTMC state.
const IDLE: u8 = 0;
const TX20: u8 = 1;
const TX40: u8 = 2;

/// Channels WLAN `i` occupies in per-WLAN state `s`.
fn occupied(alloc: ChannelAssignment, s: u8) -> (Channel20, Option<Channel20>) {
    let p = alloc.primary();
    match s {
        TX40 => (p, Some(Channel20(p.0 + 1))),
        _ => (p, None),
    }
}

fn holds(alloc: ChannelAssignment, s: u8, ch: Channel20) -> bool {
    if s == IDLE {
        return false;
    }
    let (a, b) = occupied(alloc, s);
    a == ch || b == Some(ch)
}

/// Builds and exactly solves the stationary CTMC of `graph`-interfering
/// WLANs holding the epoch allocation `alloc` under a Markovian DCB
/// policy. WLANs that do not interfere may share channels freely (they
/// are out of carrier-sense range — the footnote-5 graph semantics); the
/// feasibility constraint binds only along graph edges.
pub fn solve(
    graph: &InterferenceGraph,
    alloc: &[ChannelAssignment],
    policy: MarkovPolicy,
    params: &CtmcParams,
) -> Result<CtmcSolution, CtmcError> {
    let n = graph.len();
    if alloc.len() != n {
        return Err(CtmcError::MismatchedAllocation {
            aps: n,
            allocs: alloc.len(),
        });
    }
    for r in [
        params.attempt_rate_hz,
        params.service_rate20_hz,
        params.payload_bits,
    ] {
        if !r.is_finite() || r <= 0.0 {
            return Err(CtmcError::BadRate(r));
        }
    }
    let bond_prob = match policy {
        MarkovPolicy::StaticPrimary => 0.0,
        MarkovPolicy::AlwaysMax => 1.0,
        MarkovPolicy::Probabilistic(p) => {
            if !(0.0..=1.0).contains(&p) {
                return Err(CtmcError::BadProbability(p));
            }
            p
        }
    };
    if n == 0 {
        return Ok(CtmcSolution {
            per_wlan_bps: Vec::new(),
            tx40_time_fraction: Vec::new(),
            n_states: 1,
        });
    }

    // Per-WLAN state alphabet: TX40 exists only for bonded allocations
    // under a policy that can ever bond.
    let may_bond: Vec<bool> = alloc
        .iter()
        .map(|a| bond_prob > 0.0 && matches!(a, ChannelAssignment::Bonded(_)))
        .collect();

    // Enumerate feasible global states (neighbours never share a busy
    // 20 MHz channel).
    let mut states: Vec<Vec<u8>> = Vec::new();
    let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut stack = vec![Vec::with_capacity(n)];
    while let Some(prefix) = stack.pop() {
        if prefix.len() == n {
            index.insert(prefix.clone(), states.len());
            states.push(prefix);
            if states.len() > MAX_STATES {
                return Err(CtmcError::TooLarge {
                    states: states.len(),
                    cap: MAX_STATES,
                });
            }
            continue;
        }
        let i = prefix.len();
        let top = if may_bond[i] { TX40 } else { TX20 };
        // Push in reverse so states pop in lexicographic order — the
        // enumeration (and hence the solve) is order-deterministic.
        for s in (IDLE..=top).rev() {
            let ok = s == IDLE
                || prefix.iter().enumerate().all(|(j, &sj)| {
                    !graph.interferes(acorn_topology::ApId(i), acorn_topology::ApId(j))
                        || sj == IDLE
                        || {
                            let (a, b) = occupied(alloc[i], s);
                            !holds(alloc[j], sj, a) && b.map_or(true, |bb| !holds(alloc[j], sj, bb))
                        }
                });
            if ok {
                let mut next = prefix.clone();
                next.push(s);
                stack.push(next);
            }
        }
    }
    let m = states.len();

    // Generator: columns of πQ = 0, i.e. balance equation per state.
    let lambda = params.attempt_rate_hz;
    let mu20 = params.service_rate20_hz;
    let mu40 = 2.0 * mu20;
    let mut q = vec![0.0f64; m * m];
    for (si, s) in states.iter().enumerate() {
        let mut out_rate = 0.0;
        let mut push = |target: &[u8], rate: f64, q: &mut Vec<f64>| {
            if rate <= 0.0 {
                return;
            }
            let ti = index[target];
            q[si * m + ti] += rate;
            out_rate += rate;
        };
        for i in 0..n {
            match s[i] {
                IDLE => {
                    let free = |ch: Channel20| {
                        graph
                            .neighbors(acorn_topology::ApId(i))
                            .all(|j| !holds(alloc[j.0], s[j.0], ch))
                    };
                    let primary = alloc[i].primary();
                    if !free(primary) {
                        continue;
                    }
                    let secondary_free = may_bond[i] && free(Channel20(primary.0 + 1));
                    let mut t = s.clone();
                    if secondary_free {
                        if bond_prob > 0.0 {
                            t[i] = TX40;
                            push(&t, lambda * bond_prob, &mut q);
                        }
                        if bond_prob < 1.0 {
                            t[i] = TX20;
                            push(&t, lambda * (1.0 - bond_prob), &mut q);
                        }
                    } else {
                        t[i] = TX20;
                        push(&t, lambda, &mut q);
                    }
                }
                active => {
                    let mut t = s.clone();
                    t[i] = IDLE;
                    push(&t, if active == TX40 { mu40 } else { mu20 }, &mut q);
                }
            }
        }
        q[si * m + si] -= out_rate;
    }

    // Solve π·Q = 0, Σπ = 1: rows of A are the balance equations
    // (Aᵀ = Q), with the last replaced by normalization.
    let mut a = vec![0.0f64; m * m];
    for s in 0..m {
        for t in 0..m {
            a[t * m + s] = q[s * m + t];
        }
    }
    for s in 0..m {
        a[(m - 1) * m + s] = 1.0;
    }
    let mut b = vec![0.0f64; m];
    b[m - 1] = 1.0;
    let pi = solve_dense(&mut a, &mut b, m).ok_or(CtmcError::Singular)?;

    let mut per_wlan_bps = vec![0.0; n];
    let mut tx40 = vec![0.0; n];
    for (si, s) in states.iter().enumerate() {
        let p = pi[si].max(0.0);
        for i in 0..n {
            match s[i] {
                TX20 => per_wlan_bps[i] += p * mu20 * params.payload_bits,
                TX40 => {
                    per_wlan_bps[i] += p * mu40 * params.payload_bits;
                    tx40[i] += p;
                }
                _ => {}
            }
        }
    }
    Ok(CtmcSolution {
        per_wlan_bps,
        tx40_time_fraction: tx40,
        n_states: m,
    })
}

/// Dense Gaussian elimination with partial pivoting on an `m × m` system
/// stored row-major in `a`. Returns `None` on a (near-)singular pivot.
fn solve_dense(a: &mut [f64], b: &mut [f64], m: usize) -> Option<Vec<f64>> {
    for col in 0..m {
        let mut piv = col;
        let mut piv_abs = a[col * m + col].abs();
        for row in col + 1..m {
            let v = a[row * m + col].abs();
            if v > piv_abs {
                piv = row;
                piv_abs = v;
            }
        }
        if piv_abs < 1e-12 {
            return None;
        }
        if piv != col {
            for k in 0..m {
                a.swap(col * m + k, piv * m + k);
            }
            b.swap(col, piv);
        }
        let d = a[col * m + col];
        for row in col + 1..m {
            let f = a[row * m + col] / d;
            if f == 0.0 {
                continue;
            }
            for k in col..m {
                a[row * m + k] -= f * a[col * m + k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; m];
    for col in (0..m).rev() {
        let mut acc = b[col];
        for k in col + 1..m {
            acc -= a[col * m + k] * x[k];
        }
        x[col] = acc / a[col * m + col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single(c: u8) -> ChannelAssignment {
        ChannelAssignment::Single(Channel20(c))
    }

    fn bonded(c: u8) -> ChannelAssignment {
        match ChannelAssignment::bonded(Channel20(c)) {
            Some(b) => b,
            None => unreachable!("even lower channel"),
        }
    }

    /// One isolated WLAN at 20 MHz is the M/M/1-with-blocking two-state
    /// chain: busy fraction λ/(λ+μ), throughput μ·payload·that.
    #[test]
    fn isolated_single_wlan_matches_closed_form() {
        let g = InterferenceGraph::new(1);
        let params = CtmcParams::default();
        let sol = match solve(&g, &[single(0)], MarkovPolicy::StaticPrimary, &params) {
            Ok(s) => s,
            Err(e) => unreachable!("solvable: {e}"),
        };
        let lambda = params.attempt_rate_hz;
        let mu = params.service_rate20_hz;
        let busy = lambda / (lambda + mu);
        let expect = busy * mu * params.payload_bits;
        assert!((sol.per_wlan_bps[0] - expect).abs() / expect < 1e-12);
        assert_eq!(sol.n_states, 2);
    }

    /// An isolated bonded WLAN under always-max transmits only at 40 MHz
    /// and at double the service rate.
    #[test]
    fn isolated_bonded_always_max() {
        let g = InterferenceGraph::new(1);
        let params = CtmcParams::default();
        let sol = match solve(&g, &[bonded(0)], MarkovPolicy::AlwaysMax, &params) {
            Ok(s) => s,
            Err(e) => unreachable!("solvable: {e}"),
        };
        let lambda = params.attempt_rate_hz;
        let mu40 = 2.0 * params.service_rate20_hz;
        let busy = lambda / (lambda + mu40);
        let expect = busy * mu40 * params.payload_bits;
        assert!((sol.per_wlan_bps[0] - expect).abs() / expect < 1e-12);
        assert!((sol.tx40_time_fraction[0] - busy).abs() < 1e-12);
    }

    /// Two interfering WLANs on the same channel can never transmit
    /// simultaneously — the chain must not contain that state, and by
    /// symmetry they split throughput equally.
    #[test]
    fn two_contending_wlans_share_the_channel() {
        let g = InterferenceGraph::complete(2);
        let params = CtmcParams::default();
        let sol = match solve(
            &g,
            &[single(0), single(0)],
            MarkovPolicy::StaticPrimary,
            &params,
        ) {
            Ok(s) => s,
            Err(e) => unreachable!("solvable: {e}"),
        };
        assert_eq!(sol.n_states, 3, "idle-idle, tx-idle, idle-tx");
        assert!((sol.per_wlan_bps[0] - sol.per_wlan_bps[1]).abs() < 1e-9);
        // Contention strictly hurts vs. isolation.
        let iso = match solve(
            &InterferenceGraph::new(1),
            &[single(0)],
            MarkovPolicy::StaticPrimary,
            &params,
        ) {
            Ok(s) => s,
            Err(e) => unreachable!("solvable: {e}"),
        };
        assert!(sol.per_wlan_bps[0] < iso.per_wlan_bps[0]);
    }

    /// Non-interfering WLANs sharing a channel are independent: the pair
    /// solution equals two isolated chains.
    #[test]
    fn non_interfering_wlans_are_independent() {
        let g = InterferenceGraph::new(2);
        let params = CtmcParams::default();
        let pair = match solve(
            &g,
            &[single(0), single(0)],
            MarkovPolicy::StaticPrimary,
            &params,
        ) {
            Ok(s) => s,
            Err(e) => unreachable!("solvable: {e}"),
        };
        let iso = match solve(
            &InterferenceGraph::new(1),
            &[single(0)],
            MarkovPolicy::StaticPrimary,
            &params,
        ) {
            Ok(s) => s,
            Err(e) => unreachable!("solvable: {e}"),
        };
        for i in 0..2 {
            assert!((pair.per_wlan_bps[i] - iso.per_wlan_bps[0]).abs() < 1e-9);
        }
    }

    /// Probabilistic(0) and (1) coincide with the pure policies.
    #[test]
    fn probabilistic_extremes_match() {
        let g = InterferenceGraph::complete(2);
        let alloc = [bonded(0), single(1)];
        let params = CtmcParams::default();
        let cases = [
            (
                MarkovPolicy::Probabilistic(0.0),
                MarkovPolicy::StaticPrimary,
            ),
            (MarkovPolicy::Probabilistic(1.0), MarkovPolicy::AlwaysMax),
        ];
        for (probab, pure) in cases {
            let a = match solve(&g, &alloc, probab, &params) {
                Ok(s) => s,
                Err(e) => unreachable!("solvable: {e}"),
            };
            let b = match solve(&g, &alloc, pure, &params) {
                Ok(s) => s,
                Err(e) => unreachable!("solvable: {e}"),
            };
            for i in 0..2 {
                assert!(
                    (a.per_wlan_bps[i] - b.per_wlan_bps[i]).abs() < 1e-9,
                    "{probab:?} vs {pure:?} at wlan {i}"
                );
            }
        }
    }

    #[test]
    fn stationary_probabilities_cover_everything() {
        // 3 WLANs in a line, mixed widths, overlapping spectrum.
        let g = InterferenceGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let alloc = [bonded(0), single(1), bonded(2)];
        let params = CtmcParams::default();
        let sol = match solve(&g, &alloc, MarkovPolicy::Probabilistic(0.4), &params) {
            Ok(s) => s,
            Err(e) => unreachable!("solvable: {e}"),
        };
        assert!(sol.per_wlan_bps.iter().all(|&t| t.is_finite() && t > 0.0));
        // The middle WLAN contends with both sides — it must do worst.
        assert!(sol.per_wlan_bps[1] < sol.per_wlan_bps[0]);
        assert!(sol.per_wlan_bps[1] < sol.per_wlan_bps[2]);
    }

    #[test]
    fn rejects_bad_inputs() {
        let g = InterferenceGraph::new(1);
        let params = CtmcParams::default();
        assert_eq!(
            solve(&g, &[], MarkovPolicy::AlwaysMax, &params),
            Err(CtmcError::MismatchedAllocation { aps: 1, allocs: 0 })
        );
        assert!(matches!(
            solve(
                &g,
                &[single(0)],
                MarkovPolicy::Probabilistic(f64::NAN),
                &params
            ),
            Err(CtmcError::BadProbability(p)) if p.is_nan()
        ));
        assert!(matches!(
            MarkovPolicy::try_from(PolicyKind::OccupancyAware(0.3)),
            Err(CtmcError::NotMarkovian)
        ));
        let bad = CtmcParams {
            attempt_rate_hz: 0.0,
            ..params
        };
        assert_eq!(
            solve(&g, &[single(0)], MarkovPolicy::AlwaysMax, &bad),
            Err(CtmcError::BadRate(0.0))
        );
    }

    /// Detailed-balance sanity on a non-trivial chain: π sums to 1 and
    /// every component is non-negative (checked through the public
    /// throughput surface by bounding against the busy-fraction ceiling).
    #[test]
    fn throughput_never_exceeds_saturation() {
        let g = InterferenceGraph::complete(3);
        let alloc = [bonded(0), bonded(2), single(1)];
        let params = CtmcParams::default();
        let sol = match solve(&g, &alloc, MarkovPolicy::AlwaysMax, &params) {
            Ok(s) => s,
            Err(e) => unreachable!("solvable: {e}"),
        };
        let cap = 2.0 * params.service_rate20_hz * params.payload_bits;
        for (i, &t) in sol.per_wlan_bps.iter().enumerate() {
            assert!(t <= cap, "wlan {i}: {t} above the saturated-40MHz cap");
            assert!((0.0..=1.0).contains(&sol.tx40_time_fraction[i]));
        }
    }
}
