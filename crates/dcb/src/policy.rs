//! Per-transmission dynamic channel bonding (DCB) policies.
//!
//! A policy answers one question, at every transmission opportunity:
//! *given the channelization the epoch plan allocated to this AP, at what
//! width should this one transmission go out?* The allocation is a
//! **ceiling**, not a command — an AP allocated `Bonded(c)` may always
//! fall back to its primary `Single(c)` (the §5.2 opt-out the paper uses
//! for mobile clients), but it may never transmit outside the channels it
//! was allocated, and it may never bond over a secondary it just sensed
//! busy. Those two rules live in [`DcbPolicy::choose`]'s contract and are
//! pinned by proptests below under arbitrary — including NaN-poisoned —
//! occupancy inputs.
//!
//! The four families mirror Barrachina-Muñoz et al. (arXiv:1803.09112,
//! §III; arXiv:1801.00594): static-primary ("SCB" degenerated to 20 MHz —
//! never bond), always-max ("AM" — bond whenever allowed and clear),
//! probabilistic ("PU" — bond with probability `p` when allowed and
//! clear), and occupancy-aware (bond only while the EWMA-observed
//! secondary occupancy stays under a threshold — the adaptive family the
//! papers show dominating in dense deployments).

use acorn_topology::ChannelAssignment;

/// What the runtime lets a policy see at one transmission opportunity
/// (backoff expired, primary just sensed idle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyObservation {
    /// Smoothed (EWMA) busy fraction of the primary 20 MHz channel, in
    /// `[0, 1]`. `NaN` means "no observation yet" (cold start) or a
    /// poisoned sensor — policies must degrade safely, not panic.
    pub primary_busy: f64,
    /// Smoothed (EWMA) busy fraction of the secondary 20 MHz channel.
    /// `NaN` when the allocation has no secondary, before the first
    /// sample, or under measurement faults.
    pub secondary_busy: f64,
    /// Instantaneous carrier-sense verdict on the secondary at this
    /// opportunity: `true` iff the allocation has a secondary and it is
    /// idle *right now*. Bonding is only ever offered when this holds.
    pub secondary_idle_now: bool,
}

impl OccupancyObservation {
    /// A cold-start observation: no smoothed history yet, only the
    /// instantaneous secondary verdict.
    pub fn cold(secondary_idle_now: bool) -> OccupancyObservation {
        OccupancyObservation {
            primary_busy: f64::NAN,
            secondary_busy: f64::NAN,
            secondary_idle_now,
        }
    }
}

/// A per-transmission width decision rule.
///
/// Contract (proptest-pinned): the returned assignment occupies a subset
/// of `allocated`'s 20 MHz channels — either `allocated` itself or its
/// [`ChannelAssignment::fallback_20`] primary — so a legal epoch plan can
/// never be widened or moved by a policy, only narrowed. Implementations
/// must treat every float in `obs` (and `draw`) as potentially NaN and
/// fall back to the primary rather than panic or bond blindly.
pub trait DcbPolicy {
    /// Short stable name for telemetry and bench tables.
    fn name(&self) -> &'static str;

    /// Chooses the channelization for one transmission. `allocated` is
    /// the epoch plan's assignment for this AP; `draw` is a uniform
    /// `[0, 1)` variate the runtime derives deterministically from the
    /// event's sequence number (policies hold no RNG state of their own).
    fn choose(
        &self,
        allocated: ChannelAssignment,
        obs: &OccupancyObservation,
        draw: f64,
    ) -> ChannelAssignment;
}

/// `true` iff `allocated` has a secondary and it is idle right now — the
/// precondition every bonding decision shares.
fn bond_possible(allocated: ChannelAssignment, obs: &OccupancyObservation) -> bool {
    matches!(allocated, ChannelAssignment::Bonded(_)) && obs.secondary_idle_now
}

/// Never bond: every transmission goes out on the primary 20 MHz channel
/// even when the plan allocated a 40 MHz pair. The conservative baseline
/// (and the paper's §5.2 opt-out made permanent).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticPrimary;

impl DcbPolicy for StaticPrimary {
    fn name(&self) -> &'static str {
        "static-primary"
    }

    fn choose(
        &self,
        allocated: ChannelAssignment,
        _obs: &OccupancyObservation,
        _draw: f64,
    ) -> ChannelAssignment {
        allocated.fallback_20()
    }
}

/// Bond to the full allocated width whenever the secondary is clear at
/// the opportunity instant — the aggressive family ("always-max" / AM).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlwaysMax;

impl DcbPolicy for AlwaysMax {
    fn name(&self) -> &'static str {
        "always-max"
    }

    fn choose(
        &self,
        allocated: ChannelAssignment,
        obs: &OccupancyObservation,
        _draw: f64,
    ) -> ChannelAssignment {
        if bond_possible(allocated, obs) {
            allocated
        } else {
            allocated.fallback_20()
        }
    }
}

/// Bond with probability `bond_prob` when bonding is possible — the
/// stochastic hedge between static-primary (`p = 0`) and always-max
/// (`p = 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probabilistic {
    /// Probability of choosing the bonded width when the secondary is
    /// clear. Values outside `[0, 1]` behave as their clamp; NaN never
    /// bonds (the `draw < p` comparison is false), keeping the policy
    /// total under poisoned configuration.
    pub bond_prob: f64,
}

impl DcbPolicy for Probabilistic {
    fn name(&self) -> &'static str {
        "probabilistic"
    }

    fn choose(
        &self,
        allocated: ChannelAssignment,
        obs: &OccupancyObservation,
        draw: f64,
    ) -> ChannelAssignment {
        if bond_possible(allocated, obs) && draw < self.bond_prob {
            allocated
        } else {
            allocated.fallback_20()
        }
    }
}

/// Bond only while the smoothed secondary occupancy stays at or under a
/// threshold — the adaptive family. A NaN occupancy estimate (cold start,
/// measurement fault) fails the comparison and falls back to the primary:
/// under uncertainty the policy narrows rather than gambles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyAware {
    /// Maximum tolerated EWMA busy fraction of the secondary channel.
    pub max_secondary_busy: f64,
}

impl DcbPolicy for OccupancyAware {
    fn name(&self) -> &'static str {
        "occupancy-aware"
    }

    fn choose(
        &self,
        allocated: ChannelAssignment,
        obs: &OccupancyObservation,
        _draw: f64,
    ) -> ChannelAssignment {
        if bond_possible(allocated, obs) && obs.secondary_busy <= self.max_secondary_busy {
            allocated
        } else {
            allocated.fallback_20()
        }
    }
}

/// The policy families as one plain-data enum — the currency scenario
/// configs, bench tables, and the CTMC cross-check trade in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// [`StaticPrimary`].
    StaticPrimary,
    /// [`AlwaysMax`].
    AlwaysMax,
    /// [`Probabilistic`] with the given bond probability.
    Probabilistic(f64),
    /// [`OccupancyAware`] with the given busy-fraction threshold.
    OccupancyAware(f64),
}

impl DcbPolicy for PolicyKind {
    fn name(&self) -> &'static str {
        match self {
            PolicyKind::StaticPrimary => StaticPrimary.name(),
            PolicyKind::AlwaysMax => AlwaysMax.name(),
            PolicyKind::Probabilistic(_) => "probabilistic",
            PolicyKind::OccupancyAware(_) => "occupancy-aware",
        }
    }

    fn choose(
        &self,
        allocated: ChannelAssignment,
        obs: &OccupancyObservation,
        draw: f64,
    ) -> ChannelAssignment {
        match *self {
            PolicyKind::StaticPrimary => StaticPrimary.choose(allocated, obs, draw),
            PolicyKind::AlwaysMax => AlwaysMax.choose(allocated, obs, draw),
            PolicyKind::Probabilistic(p) => {
                Probabilistic { bond_prob: p }.choose(allocated, obs, draw)
            }
            PolicyKind::OccupancyAware(t) => OccupancyAware {
                max_secondary_busy: t,
            }
            .choose(allocated, obs, draw),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorn_topology::{Channel20, ChannelPlan};
    use proptest::prelude::*;

    fn bonded(lower: u8) -> ChannelAssignment {
        match ChannelAssignment::bonded(Channel20(lower)) {
            Some(b) => b,
            None => unreachable!("test uses even lower channels"),
        }
    }

    #[test]
    fn static_primary_never_bonds() {
        let obs = OccupancyObservation {
            primary_busy: 0.0,
            secondary_busy: 0.0,
            secondary_idle_now: true,
        };
        assert_eq!(
            StaticPrimary.choose(bonded(0), &obs, 0.0),
            ChannelAssignment::Single(Channel20(0))
        );
    }

    #[test]
    fn always_max_bonds_only_when_secondary_idle() {
        let idle = OccupancyObservation::cold(true);
        let busy = OccupancyObservation::cold(false);
        assert_eq!(AlwaysMax.choose(bonded(2), &idle, 0.0), bonded(2));
        assert_eq!(
            AlwaysMax.choose(bonded(2), &busy, 0.0),
            ChannelAssignment::Single(Channel20(2))
        );
        // A 20 MHz allocation can never be widened.
        let single = ChannelAssignment::Single(Channel20(1));
        assert_eq!(AlwaysMax.choose(single, &idle, 0.0), single);
    }

    #[test]
    fn probabilistic_extremes_match_the_pure_policies() {
        let idle = OccupancyObservation::cold(true);
        let a = bonded(0);
        for draw in [0.0, 0.3, 0.999] {
            assert_eq!(
                Probabilistic { bond_prob: 1.0 }.choose(a, &idle, draw),
                AlwaysMax.choose(a, &idle, draw)
            );
            assert_eq!(
                Probabilistic { bond_prob: 0.0 }.choose(a, &idle, draw),
                StaticPrimary.choose(a, &idle, draw)
            );
        }
        // NaN probability: never bonds, never panics.
        assert_eq!(
            Probabilistic {
                bond_prob: f64::NAN
            }
            .choose(a, &idle, 0.5),
            a.fallback_20()
        );
    }

    #[test]
    fn occupancy_aware_narrows_under_nan() {
        let a = bonded(0);
        let mut obs = OccupancyObservation::cold(true);
        obs.secondary_busy = f64::NAN;
        let p = OccupancyAware {
            max_secondary_busy: 0.5,
        };
        assert_eq!(p.choose(a, &obs, 0.0), a.fallback_20());
        obs.secondary_busy = 0.2;
        assert_eq!(p.choose(a, &obs, 0.0), a);
        obs.secondary_busy = 0.7;
        assert_eq!(p.choose(a, &obs, 0.0), a.fallback_20());
    }

    /// An arbitrary policy, including NaN-poisoned parameters.
    fn arb_policy(kind: u8, param_bits: u64) -> PolicyKind {
        let param = f64::from_bits(param_bits);
        match kind % 4 {
            0 => PolicyKind::StaticPrimary,
            1 => PolicyKind::AlwaysMax,
            2 => PolicyKind::Probabilistic(param),
            _ => PolicyKind::OccupancyAware(param),
        }
    }

    proptest! {
        /// The legality contract under arbitrary inputs: whatever the
        /// occupancy observation (any bit pattern, including NaN and
        /// infinities), the draw, and the policy parameters, the chosen
        /// assignment occupies a subset of the allocated channels and
        /// stays legal under the plan that produced the allocation.
        #[test]
        fn every_choice_is_a_legal_narrowing(
            n_channels in 1u8..=12,
            pick in 0usize..64,
            kind in 0u8..4,
            param_bits in any::<u64>(),
            primary_bits in any::<u64>(),
            secondary_bits in any::<u64>(),
            secondary_idle_now in any::<bool>(),
            draw_bits in any::<u64>(),
        ) {
            let plan = ChannelPlan::restricted(n_channels);
            let all = plan.all_assignments();
            let allocated = all[pick % all.len()];
            let obs = OccupancyObservation {
                primary_busy: f64::from_bits(primary_bits),
                secondary_busy: f64::from_bits(secondary_bits),
                secondary_idle_now,
            };
            let policy = arb_policy(kind, param_bits);
            let chosen = policy.choose(allocated, &obs, f64::from_bits(draw_bits));
            // Subset of the allocated channels: never widens, never moves.
            prop_assert!(
                chosen.occupied().all(|c| allocated.occupied().any(|a| a == c)),
                "{policy:?} chose {chosen:?} outside allocation {allocated:?}"
            );
            // Still a legal colour of the plan (contiguous even-lower
            // bond or in-plan single).
            prop_assert!(plan.contains(chosen), "{chosen:?} illegal under {plan:?}");
            // Bonding only ever happens over a secondary sensed idle.
            if chosen.width() == acorn_phy::ChannelWidth::Ht40 {
                prop_assert!(obs.secondary_idle_now);
            }
        }
    }
}
