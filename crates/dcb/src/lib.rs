//! # acorn-dcb — dynamic channel bonding beyond the epoch-static plan
//!
//! ACORN (the source paper's Algorithm 2) decides bonding **per epoch**:
//! the allocator hands every AP a 20 or 40 MHz assignment and the cell
//! transmits at that width until the next reallocation. The related work
//! goes further — and this crate reproduces the three pieces ROADMAP
//! item 3 names:
//!
//! 1. **Per-transmission DCB policies** ([`DcbPolicy`]): at every
//!    transmission opportunity the AP re-decides its width from what it
//!    observes on its primary/secondary channels, within the ceiling the
//!    epoch plan allocated. The policy families follow Barrachina-Muñoz
//!    et al. (arXiv:1803.09112, 1801.00594): static-primary (never
//!    bond), always-max (bond whenever the secondary is clear),
//!    probabilistic (bond with probability `p` when possible), and
//!    occupancy-aware (bond only while the observed secondary occupancy
//!    stays under a threshold).
//! 2. **An exact CTMC throughput model** ([`ctmc`]): Faridi et al.
//!    (arXiv:1509.00290) model overlapping bonded WLANs as a
//!    continuous-time Markov chain over per-WLAN `{idle, tx@20, tx@40}`
//!    states. Solved exactly (dense π·Q = 0), it is an *independent*
//!    cross-check of the event simulator — the same role PR 2's
//!    calibration module played for the baseband — and `tests/dcb.rs`
//!    CI-gates the simulator against it within a documented tolerance.
//! 3. **An exact optimal allocator** ([`exact`]): Kai et al.
//!    (arXiv:1703.03909) compute optimal bonding allocations; here a
//!    branch-and-bound search over the full colour space plays that role
//!    on topologies small enough to enumerate, turning "greedy looks
//!    good" into a *measured* approximation gap (`BENCH_dcb.json`).
//!
//! The policies are pure decision rules over observations — the event
//! runtime (`acorn-events::dcb`) owns clocks, carrier sensing, and
//! occupancy estimation, and feeds policies only through
//! [`OccupancyObservation`], which keeps every policy trivially
//! deterministic and NaN-safe (see the legality proptests at the bottom
//! of `policy.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctmc;
pub mod exact;
pub mod policy;

pub use ctmc::{CtmcError, CtmcParams, CtmcSolution, MarkovPolicy};
pub use exact::{allocate_exact, greedy_vs_exact_gap, ExactConfig, ExactResult};
pub use policy::{
    AlwaysMax, DcbPolicy, OccupancyAware, OccupancyObservation, PolicyKind, Probabilistic,
    StaticPrimary,
};
