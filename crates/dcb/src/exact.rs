//! Exact optimal channel allocation by branch-and-bound — the greedy's
//! yardstick.
//!
//! Kai et al. (arXiv:1703.03909) compute *optimal* channel-bonding
//! allocations; here that role is played by a deterministic
//! branch-and-bound search over the full colour space
//! `plan.all_assignments()^n`, exact on topologies small enough to
//! enumerate. Its purpose is not production allocation — it is the
//! instrument that turns "Algorithm 2 looks good" into a **measured
//! approximation gap**: `BENCH_dcb.json` records greedy vs. exact totals
//! on enumerable topologies and `tests/dcb.rs` CI-gates the ratio.
//!
//! The admissible bound: APs are assigned one at a time (highest degree
//! first). For a partial assignment, every *assigned* AP is scored
//! against the assigned-only interference subgraph — adding APs can only
//! add conflicts, and [`access_share`] is non-increasing in the conflict
//! set, so that score upper-bounds the AP's final throughput. Every
//! *unassigned* AP is bounded by its isolated best width
//! ([`NetworkModel::isolated_best_bps`]). Prune whenever the bound cannot
//! beat the incumbent; seed the incumbent with the multi-restart greedy
//! so the search starts with a strong lower bound (and the returned
//! optimum is never worse than the greedy, even on a node-budget bail).
//!
//! [`access_share`]: acorn_mac::contention::access_share

use acorn_core::allocation::{allocate_with_restarts, AllocationConfig};
use acorn_core::model::{NetworkModel, ThroughputModel};
use acorn_topology::{ApId, Channel20, ChannelAssignment, ChannelPlan};

/// Search limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactConfig {
    /// Maximum search-tree nodes to expand before bailing with
    /// `complete = false` (the incumbent — at least as good as the
    /// greedy — is still returned).
    pub node_budget: u64,
    /// Restarts used to seed the incumbent with the greedy allocator.
    pub seed_restarts: usize,
}

impl Default for ExactConfig {
    fn default() -> ExactConfig {
        ExactConfig {
            node_budget: 5_000_000,
            seed_restarts: 8,
        }
    }
}

/// Outcome of the exact search.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactResult {
    /// The best assignment found (the optimum when `complete`).
    pub assignments: Vec<ChannelAssignment>,
    /// Its aggregate throughput (bits/s).
    pub total_bps: f64,
    /// Search-tree nodes expanded.
    pub nodes_explored: u64,
    /// `true` iff the search ran to exhaustion — only then is
    /// `total_bps` certified optimal.
    pub complete: bool,
}

/// The measured approximation gap: `greedy / exact`, in `(0, 1]` when
/// both are positive (1.0 means the greedy found an optimum). Degenerate
/// non-positive exact totals (empty topologies) report 1.0.
pub fn greedy_vs_exact_gap(greedy_bps: f64, exact_bps: f64) -> f64 {
    if exact_bps <= 0.0 {
        1.0
    } else {
        greedy_bps / exact_bps
    }
}

/// Placeholder colours for not-yet-assigned APs: unique channels outside
/// any legal plan (plans cap at 12 channels), so they conflict with
/// nothing and each unassigned AP scores as contention-free.
const FAKE_BASE: u8 = 64;

struct Search<'a> {
    model: &'a NetworkModel,
    /// AP indices in branching order (degree descending, index ascending).
    order: Vec<usize>,
    colours: Vec<ChannelAssignment>,
    /// Suffix sums along `order` of each AP's `isolated_best −
    /// cell_base20` slack: `slack_after[k]` bounds what the APs not yet
    /// assigned once `order[..k]` are placed could still gain over their
    /// fake-colour (20 MHz, contention-free) scores.
    slack_after: Vec<f64>,
    current: Vec<ChannelAssignment>,
    best: Vec<ChannelAssignment>,
    best_total: f64,
    nodes: u64,
    budget: u64,
    complete: bool,
}

impl Search<'_> {
    fn dfs(&mut self, k: usize) {
        if self.nodes >= self.budget {
            self.complete = false;
            return;
        }
        self.nodes += 1;
        // `current` keeps fake colours on unassigned APs, so this total
        // already scores assigned APs against the assigned-only subgraph
        // and unassigned APs as contention-free 20 MHz cells.
        let padded_total = self.model.total_bps(&self.current);
        if k == self.order.len() {
            if padded_total > self.best_total {
                self.best_total = padded_total;
                self.best.copy_from_slice(&self.current);
            }
            return;
        }
        let bound = padded_total + self.slack_after[k];
        if bound <= self.best_total {
            return;
        }
        let ap = self.order[k];
        for ci in 0..self.colours.len() {
            let c = self.colours[ci];
            self.current[ap] = c;
            self.dfs(k + 1);
        }
        self.current[ap] = ChannelAssignment::Single(Channel20(FAKE_BASE + ap as u8));
    }
}

/// Exhaustive branch-and-bound optimal allocation of `model` over
/// `plan`'s colour space. Deterministic: fixed branching order, fixed
/// colour order, fixed greedy seed. Panics if the topology has more than
/// `64` APs — far past where exhaustive search is meaningful anyway.
pub fn allocate_exact(
    model: &NetworkModel,
    plan: &ChannelPlan,
    config: &ExactConfig,
) -> ExactResult {
    let n = model.n_aps();
    assert!(n <= 64, "exact search is a small-topology instrument");
    if n == 0 {
        return ExactResult {
            assignments: Vec::new(),
            total_bps: 0.0,
            nodes_explored: 0,
            complete: true,
        };
    }

    // Strong incumbent: the paper's greedy with restarts.
    let greedy = allocate_with_restarts(
        model,
        plan,
        &AllocationConfig::default(),
        config.seed_restarts,
        0xD0CB,
    );

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(model.graph.degree(ApId(i))), i));

    let slack = |i: usize| {
        (model.isolated_best_bps(ApId(i))
            - model.cell_base_bps(ApId(i), acorn_phy::ChannelWidth::Ht20))
        .max(0.0)
    };
    let mut slack_after = vec![0.0; n + 1];
    for k in (0..n).rev() {
        slack_after[k] = slack_after[k + 1] + slack(order[k]);
    }

    let current: Vec<ChannelAssignment> = (0..n)
        .map(|i| ChannelAssignment::Single(Channel20(FAKE_BASE + i as u8)))
        .collect();
    let mut search = Search {
        model,
        order,
        colours: plan.all_assignments(),
        slack_after,
        current,
        best: greedy.assignments.clone(),
        best_total: model.total_bps(&greedy.assignments),
        nodes: 0,
        budget: config.node_budget,
        complete: true,
    };
    search.dfs(0);
    ExactResult {
        assignments: search.best,
        total_bps: search.best_total,
        nodes_explored: search.nodes,
        complete: search.complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorn_core::model::ClientSnr;
    use acorn_core::theory::y_star_bps;
    use acorn_topology::InterferenceGraph;

    fn cells(snrs: &[&[f64]]) -> Vec<Vec<ClientSnr>> {
        snrs.iter()
            .map(|cell| {
                cell.iter()
                    .enumerate()
                    .map(|(i, &s)| ClientSnr {
                        client: i,
                        snr20_db: s,
                    })
                    .collect()
            })
            .collect()
    }

    /// Two isolated APs: the optimum is each AP at its isolated best —
    /// exactly Y*.
    #[test]
    fn isolated_aps_reach_y_star() {
        let model = NetworkModel::new(InterferenceGraph::new(2), cells(&[&[30.0, 22.0], &[18.0]]));
        let plan = ChannelPlan::restricted(4);
        let r = allocate_exact(&model, &plan, &ExactConfig::default());
        assert!(r.complete);
        let ys = y_star_bps(&model);
        assert!(
            (r.total_bps - ys).abs() / ys < 1e-9,
            "{} vs {}",
            r.total_bps,
            ys
        );
    }

    /// Two interfering APs with 4 channels: the optimum separates them
    /// spectrally — no conflict remains.
    #[test]
    fn contending_pair_is_separated() {
        let model = NetworkModel::new(InterferenceGraph::complete(2), cells(&[&[28.0], &[26.0]]));
        let plan = ChannelPlan::restricted(4);
        let r = allocate_exact(&model, &plan, &ExactConfig::default());
        assert!(r.complete);
        assert!(!r.assignments[0].conflicts(r.assignments[1]));
        let ys = y_star_bps(&model);
        assert!((r.total_bps - ys).abs() / ys < 1e-9);
    }

    /// The certified optimum never loses to the greedy, and both respect
    /// the Y* ceiling.
    #[test]
    fn exact_dominates_greedy_and_respects_y_star() {
        // K4 with only 2 channels: real contention, bonds tempting but
        // expensive — a shape where greedy can stall.
        let model = NetworkModel::new(
            InterferenceGraph::complete(4),
            cells(&[&[31.0, 9.0], &[24.0], &[16.0, 12.0], &[7.5]]),
        );
        let plan = ChannelPlan::restricted(2);
        let r = allocate_exact(&model, &plan, &ExactConfig::default());
        assert!(r.complete);
        let greedy = allocate_with_restarts(&model, &plan, &AllocationConfig::default(), 8, 0xD0CB);
        let gtotal = model.total_bps(&greedy.assignments);
        assert!(r.total_bps >= gtotal - 1e-9);
        assert!(r.total_bps <= y_star_bps(&model) + 1e-9);
        let gap = greedy_vs_exact_gap(gtotal, r.total_bps);
        assert!((0.0..=1.0 + 1e-12).contains(&gap));
    }

    /// A spent node budget bails incompletely but still returns at least
    /// the greedy incumbent; legality of every returned colour holds.
    #[test]
    fn node_budget_bails_to_the_incumbent() {
        let model = NetworkModel::new(
            InterferenceGraph::complete(5),
            cells(&[&[30.0], &[25.0], &[20.0], &[15.0], &[10.0]]),
        );
        let plan = ChannelPlan::restricted(4);
        let r = allocate_exact(
            &model,
            &plan,
            &ExactConfig {
                node_budget: 3,
                seed_restarts: 4,
            },
        );
        assert!(!r.complete);
        let greedy = allocate_with_restarts(&model, &plan, &AllocationConfig::default(), 4, 0xD0CB);
        assert!(r.total_bps >= model.total_bps(&greedy.assignments) - 1e-9);
        assert!(r.assignments.iter().all(|&a| plan.contains(a)));
    }

    /// Brute-force oracle: on a tiny instance the branch-and-bound equals
    /// plain exhaustive enumeration.
    #[test]
    fn matches_brute_force_enumeration() {
        let model = NetworkModel::new(
            InterferenceGraph::from_edges(3, &[(0, 1), (1, 2)]),
            cells(&[&[27.0], &[14.0, 21.0], &[9.0]]),
        );
        let plan = ChannelPlan::restricted(2);
        let r = allocate_exact(&model, &plan, &ExactConfig::default());
        assert!(r.complete);
        let colours = plan.all_assignments();
        let mut best = f64::NEG_INFINITY;
        for a in &colours {
            for b in &colours {
                for c in &colours {
                    best = best.max(model.total_bps(&[*a, *b, *c]));
                }
            }
        }
        assert!(
            (r.total_bps - best).abs() < 1e-9,
            "{} vs {}",
            r.total_bps,
            best
        );
    }
}
