//! The synthetic testbed-link corpus.
//!
//! The paper's throughput study (§3.2, Fig. 6) uses "all of our links (24
//! in total) to capture a wide variety of link qualities", on a testbed of
//! 18 Ralink 2×3 nodes with indoor and outdoor links, driven at a 0–100
//! driver power scale (Fig. 5's x-axis). We regenerate an equivalent
//! corpus: 24 links whose maximum-power SNRs span the same regimes the
//! paper reports (from below 0 dB, where CB collapses, up to the high-SNR
//! region where CB nearly doubles throughput), plus the four
//! "representative links A–D" of Fig. 5.

use acorn_phy::{ChannelWidth, LinkBudget};

/// A testbed link: a point-to-point AP→client link with a frozen path
/// loss, exercised across transmit powers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestbedLink {
    /// Corpus index (0..24).
    pub id: usize,
    /// Frozen path loss of the link in dB.
    pub path_loss_db: f64,
    /// Combined antenna gains (dBi).
    pub antenna_gains_dbi: f64,
    /// Receiver noise figure (dB).
    pub noise_figure_db: f64,
}

impl TestbedLink {
    /// Link budget at a given transmit power (dBm).
    pub fn budget(&self, tx_dbm: f64) -> LinkBudget {
        LinkBudget {
            tx_power_dbm: tx_dbm,
            antenna_gains_dbi: self.antenna_gains_dbi,
            path_loss_db: self.path_loss_db,
            noise_figure_db: self.noise_figure_db,
        }
    }

    /// Per-subcarrier SNR at a transmit power and width.
    pub fn snr_db(&self, tx_dbm: f64, width: ChannelWidth) -> f64 {
        self.budget(tx_dbm).snr_db(width)
    }
}

/// Maximum transmit power of the modelled cards, dBm.
pub const MAX_TX_DBM: f64 = 20.0;

/// Maps the Ralink driver's 0–100 power scale (the Fig. 5 x-axis) to dBm:
/// linear from 0 dBm at 0 to [`MAX_TX_DBM`] at 100.
pub fn driver_scale_to_dbm(scale: u32) -> f64 {
    let s = scale.min(100) as f64;
    s / 100.0 * MAX_TX_DBM
}

fn link(id: usize, snr20_at_max_dbm: f64) -> TestbedLink {
    // Work backwards from the target max-power HT20 SNR to a path loss.
    let gains = 10.0;
    let nf = 5.0;
    let floor = acorn_phy::noise::channel_noise_floor_dbm(ChannelWidth::Ht20, nf);
    TestbedLink {
        id,
        path_loss_db: MAX_TX_DBM + gains - floor - snr20_at_max_dbm,
        antenna_gains_dbi: gains,
        noise_figure_db: nf,
    }
}

/// The 24-link corpus: max-power HT20 SNRs spread from −2 dB to 38 dB,
/// denser in the low/mid range where the interesting σ transitions live
/// (the paper reports that the 20 %-of-links-prefer-20 MHz cluster sits
/// below ≈ 6 dB SNR).
pub fn testbed_links() -> Vec<TestbedLink> {
    let snrs = [
        -2.0, 0.0, 1.5, 3.0, 4.0, 5.0, 6.0, 7.5, 9.0, 10.5, 12.0, 14.0, 16.0, 18.0, 20.0, 22.0,
        24.0, 26.0, 28.0, 30.0, 32.0, 34.0, 36.0, 38.0,
    ];
    snrs.iter().enumerate().map(|(i, &s)| link(i, s)).collect()
}

/// The four "representative links A–D" of Fig. 5, ordered best to worst at
/// maximum power. Link B is the robust one for which "the PER is extremely
/// low for both the 20 and 40 MHz channels and here CB will provide huge
/// benefits"; the SNRs are chosen so each link's σ-transition falls inside
/// the 0–100 driver power sweep for at least one of the Table 1 modcods.
pub fn representative_links() -> [TestbedLink; 4] {
    [
        link(100, 14.0), // A: mid — its QPSK 3/4 σ-band sits at high power
        link(101, 30.0), // B: robust — only the 64-QAM bands graze it
        link(102, 21.0), // C: good — 16-QAM 3/4 band in mid-sweep
        link(103, 26.0), // D: very good — 64-QAM 3/4 band at high power
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_24_links_with_spread() {
        let links = testbed_links();
        assert_eq!(links.len(), 24);
        let snrs: Vec<f64> = links
            .iter()
            .map(|l| l.snr_db(MAX_TX_DBM, ChannelWidth::Ht20))
            .collect();
        assert!(snrs.first().unwrap() < &0.0);
        assert!(snrs.last().unwrap() > &35.0);
        // Strictly increasing by construction.
        for w in snrs.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn snr_roundtrip_matches_target() {
        let l = link(0, 12.5);
        assert!((l.snr_db(MAX_TX_DBM, ChannelWidth::Ht20) - 12.5).abs() < 1e-9);
        assert!((l.snr_db(MAX_TX_DBM, ChannelWidth::Ht40) - (12.5 - 3.0103)).abs() < 1e-3);
    }

    #[test]
    fn driver_scale_mapping() {
        assert_eq!(driver_scale_to_dbm(0), 0.0);
        assert_eq!(driver_scale_to_dbm(100), MAX_TX_DBM);
        assert_eq!(driver_scale_to_dbm(50), MAX_TX_DBM / 2.0);
        // Values beyond 100 clamp.
        assert_eq!(driver_scale_to_dbm(250), MAX_TX_DBM);
    }

    #[test]
    fn representative_links_are_ordered_by_quality() {
        let [a, b, c, d] = representative_links();
        let snr = |l: &TestbedLink| l.snr_db(MAX_TX_DBM, ChannelWidth::Ht20);
        assert!(snr(&b) > snr(&d));
        assert!(snr(&d) > snr(&c));
        assert!(snr(&c) > snr(&a));
    }

    #[test]
    fn lower_power_means_lower_snr() {
        for l in testbed_links() {
            assert!(l.snr_db(5.0, ChannelWidth::Ht20) < l.snr_db(15.0, ChannelWidth::Ht20));
        }
    }
}
