//! A uniform-grid spatial index over node positions.
//!
//! The interference relation of the paper's footnote 5 is a *bounded
//! radius* predicate: two nodes compete only within the carrier-sense
//! range (80 m by default). A uniform grid bucketed at that radius makes
//! every "who is within `r` of `p`?" query O(local density) instead of
//! O(n), which turns interference-graph construction from O(n²) into
//! O(n · neighbours) — the difference between seconds and microseconds at
//! 10 000 APs.
//!
//! The query is **exact**, not approximate: candidates come from the
//! 3×3-ish block of cells covering the `±r` window around the query point
//! (so any point within `r` is guaranteed to be among them — a point on a
//! cell boundary lands in exactly one bucket, but the window always spans
//! its bucket), and each candidate is then confirmed with the same crisp
//! `distance ≤ r` test the brute-force pair loop uses. Results come back
//! sorted by index, so downstream edge insertion stays deterministic.

use crate::geom::Point;

/// A uniform grid over a fixed set of points supporting exact
/// radius-bounded range queries.
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    points: Vec<Point>,
    /// `buckets[cy * nx + cx]` holds the indices of points in that cell,
    /// ascending (points are inserted in index order).
    buckets: Vec<Vec<u32>>,
    nx: usize,
    ny: usize,
    min_x: f64,
    min_y: f64,
    cell_m: f64,
}

impl SpatialGrid {
    /// Builds a grid over `points` with square cells of side `cell_m`
    /// (clamped to a small positive minimum). Cell side equal to the query
    /// radius is the classic choice; any positive value is correct, only
    /// speed changes.
    pub fn build(points: &[Point], cell_m: f64) -> SpatialGrid {
        let cell_m = if cell_m.is_finite() && cell_m > 1e-6 {
            cell_m
        } else {
            1e-6
        };
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        if points.is_empty() {
            return SpatialGrid {
                points: Vec::new(),
                buckets: Vec::new(),
                nx: 0,
                ny: 0,
                min_x: 0.0,
                min_y: 0.0,
                cell_m,
            };
        }
        let nx = (((max_x - min_x) / cell_m).floor() as usize).saturating_add(1);
        let ny = (((max_y - min_y) / cell_m).floor() as usize).saturating_add(1);
        let mut buckets = vec![Vec::new(); nx * ny];
        let mut grid = SpatialGrid {
            points: points.to_vec(),
            buckets: Vec::new(),
            nx,
            ny,
            min_x,
            min_y,
            cell_m,
        };
        for (i, p) in points.iter().enumerate() {
            let (cx, cy) = grid.cell_of(p);
            buckets[cy * nx + cx].push(i as u32);
        }
        grid.buckets = buckets;
        grid
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The cell coordinates of a point, clamped into the grid.
    fn cell_of(&self, p: &Point) -> (usize, usize) {
        let cx = (((p.x - self.min_x) / self.cell_m).floor() as isize)
            .clamp(0, self.nx as isize - 1) as usize;
        let cy = (((p.y - self.min_y) / self.cell_m).floor() as isize)
            .clamp(0, self.ny as isize - 1) as usize;
        (cx, cy)
    }

    /// Indices of all points with `distance(p) <= r`, ascending. Exact:
    /// the candidate window covers every cell intersecting the `±r` box
    /// around `p`, and each candidate is confirmed by the crisp distance
    /// predicate.
    pub fn within(&self, p: &Point, r: f64) -> Vec<usize> {
        let mut out = Vec::new();
        if self.points.is_empty() || !(r >= 0.0) {
            return out;
        }
        let lo = Point::new(p.x - r, p.y - r);
        let hi = Point::new(p.x + r, p.y + r);
        let (cx0, cy0) = self.cell_of(&lo);
        let (cx1, cy1) = self.cell_of(&hi);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                for &i in &self.buckets[cy * self.nx + cx] {
                    if self.points[i as usize].distance(p) <= r {
                        out.push(i as usize);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(points: &[Point], p: &Point, r: f64) -> Vec<usize> {
        (0..points.len())
            .filter(|&i| points[i].distance(p) <= r)
            .collect()
    }

    #[test]
    fn empty_grid_returns_nothing() {
        let g = SpatialGrid::build(&[], 10.0);
        assert!(g.is_empty());
        assert_eq!(g.within(&Point::new(0.0, 0.0), 100.0), Vec::<usize>::new());
    }

    #[test]
    fn matches_brute_force_on_a_line() {
        let pts: Vec<Point> = (0..50).map(|i| Point::new(i as f64 * 7.0, 0.0)).collect();
        let g = SpatialGrid::build(&pts, 20.0);
        for i in 0..50 {
            let q = Point::new(i as f64 * 7.0 + 3.0, 1.0);
            assert_eq!(g.within(&q, 20.0), brute(&pts, &q, 20.0));
        }
    }

    #[test]
    fn boundary_point_is_included_at_exact_radius() {
        // distance == r must match (crisp `<=`, same as the pair loop).
        let pts = vec![Point::new(0.0, 0.0), Point::new(80.0, 0.0)];
        let g = SpatialGrid::build(&pts, 80.0);
        assert_eq!(g.within(&Point::new(0.0, 0.0), 80.0), vec![0, 1]);
        assert_eq!(g.within(&Point::new(0.0, 0.0), 79.999), vec![0]);
    }

    #[test]
    fn query_outside_the_bounding_box_still_works() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(10.0, 10.0)];
        let g = SpatialGrid::build(&pts, 5.0);
        assert_eq!(g.within(&Point::new(-100.0, -100.0), 150.0), vec![0]);
        assert_eq!(g.within(&Point::new(-100.0, -100.0), 156.0), vec![0, 1]);
        assert_eq!(
            g.within(&Point::new(-100.0, -100.0), 10.0),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn tiny_and_degenerate_cell_sizes_are_clamped() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        for cell in [0.0, -3.0, f64::NAN] {
            let g = SpatialGrid::build(&pts, cell);
            assert_eq!(g.within(&Point::new(0.0, 0.0), 2.0), vec![0, 1]);
        }
    }

    #[test]
    fn coincident_points_all_reported() {
        let pts = vec![Point::new(5.0, 5.0); 4];
        let g = SpatialGrid::build(&pts, 2.0);
        assert_eq!(g.within(&Point::new(5.0, 5.0), 0.0), vec![0, 1, 2, 3]);
    }
}
