//! # acorn-topology — deployment geometry, propagation, channels and the
//! interference graph
//!
//! The substrate the ACORN paper's testbed provides: where nodes are, how
//! signals attenuate, which 5 GHz channels exist (and which pairs can be
//! bonded into 40 MHz channels), and which APs interfere.
//!
//! * [`geom`] — plane geometry.
//! * [`pathloss`] — free-space and log-distance models with *deterministic
//!   per-link shadowing* (link qualities must be stable across channels of
//!   the same width, the paper's Fig. 8 assumption).
//! * [`channels`] — the 12-channel 5 GHz plan, legal 40 MHz bonds, and the
//!   basic/composite colour-conflict rules of §4.2.
//! * [`graph`] — the AP-level interference graph and its Δ (max degree).
//! * [`index`] — a uniform-grid spatial index making radius-bounded
//!   neighbour queries (and thus graph construction) O(local density).
//! * [`wlan`] — a full deployment: APs, clients, radio parameters, link
//!   budgets, interference-graph construction per the paper's footnote 5.
//! * [`corpus`] — the synthetic 24-link testbed corpus and Fig. 5's four
//!   representative links.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channels;
pub mod corpus;
pub mod geom;
pub mod graph;
pub mod index;
pub mod pathloss;
pub mod wlan;

pub use channels::{Channel20, ChannelAssignment, ChannelPlan};
pub use geom::{Point, Trajectory};
pub use graph::{ApId, InterferenceGraph};
pub use index::SpatialGrid;
pub use pathloss::LogDistance;
pub use wlan::{Ap, Client, ClientId, RadioParams, Wlan};
