//! The 5 GHz channel plan: 20 MHz channels, legal 40 MHz bonded pairs, and
//! the spectral-conflict rules behind the paper's graph-colouring
//! formulation.
//!
//! §4.2 casts channel allocation as colouring with *basic* colours (20 MHz
//! channels) and *composite* colours (a 40 MHz channel formed from two
//! adjacent 20 MHz channels): "the basic colors ci and cj do not conflict;
//! however, each of them conflicts with the composite color {ci, cj}".
//! [`ChannelAssignment::conflicts`] implements exactly that relation via
//! spectral overlap.
//!
//! The paper "employ\[s\] all the twelve 20 MHz channels available in the
//! 5 GHz band"; [`ChannelPlan`] models a plan with any number of
//! consecutive-index channels so the Fig. 14 experiments can restrict to
//! 2, 4 or 6.

use acorn_phy::ChannelWidth;

/// IEEE channel numbers of the twelve 20 MHz channels the paper uses.
pub const IEEE_5GHZ_CHANNELS: [u16; 12] = [36, 40, 44, 48, 52, 56, 60, 64, 100, 104, 108, 112];

/// A 20 MHz channel, identified by its index `0..plan.n_channels` into the
/// plan (not the IEEE number — use [`Channel20::ieee_number`] for that).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Channel20(pub u8);

impl Channel20 {
    /// The IEEE channel number, when the index falls inside the standard
    /// 12-channel plan.
    pub fn ieee_number(self) -> Option<u16> {
        IEEE_5GHZ_CHANNELS.get(self.0 as usize).copied()
    }

    /// Whether `self` and `other` form a legal 40 MHz bond: adjacent
    /// indices with the even index first (802.11n bonds 36+40, 44+48, … —
    /// never 40+44, which straddles a bonding boundary).
    pub fn bonds_with(self, other: Channel20) -> bool {
        self.0 % 2 == 0 && other.0 == self.0 + 1
    }
}

/// A channel assignment for one AP: a basic colour (single 20 MHz channel)
/// or a composite colour (a bonded 40 MHz channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelAssignment {
    /// Single 20 MHz channel.
    Single(Channel20),
    /// Bonded 40 MHz channel built from a legal adjacent pair; the lower,
    /// even-indexed channel is stored (the bond is `(c, c+1)`).
    Bonded(Channel20),
}

impl ChannelAssignment {
    /// Creates a bonded assignment from the lower channel of a legal pair.
    /// Returns `None` if `lower` has an odd index (illegal bond).
    pub fn bonded(lower: Channel20) -> Option<ChannelAssignment> {
        (lower.0 % 2 == 0).then_some(ChannelAssignment::Bonded(lower))
    }

    /// The operating width of this assignment.
    pub fn width(self) -> ChannelWidth {
        match self {
            ChannelAssignment::Single(_) => ChannelWidth::Ht20,
            ChannelAssignment::Bonded(_) => ChannelWidth::Ht40,
        }
    }

    /// The set of 20 MHz channel indices this assignment occupies.
    pub fn occupied(self) -> impl Iterator<Item = Channel20> {
        let (first, second) = match self {
            ChannelAssignment::Single(c) => (c, None),
            ChannelAssignment::Bonded(c) => (c, Some(Channel20(c.0 + 1))),
        };
        std::iter::once(first).chain(second)
    }

    /// Spectral conflict: two assignments conflict iff they share at least
    /// one 20 MHz channel. This realizes the paper's colour rules:
    /// * basic `ci` vs basic `cj`, i≠j → no conflict;
    /// * basic `ci` vs composite `{ci, cj}` → conflict;
    /// * composite vs composite sharing a member → conflict.
    pub fn conflicts(self, other: ChannelAssignment) -> bool {
        self.occupied().any(|a| other.occupied().any(|b| a == b))
    }

    /// The primary 20 MHz channel (the stored one). For bonded channels
    /// this is the channel an AP falls back to when it "opts out from
    /// using CB and only employ\[s\] the 20 MHz channel (one of the two
    /// assigned)" — the mobility mode of §5.2.
    pub fn primary(self) -> Channel20 {
        match self {
            ChannelAssignment::Single(c) | ChannelAssignment::Bonded(c) => c,
        }
    }

    /// The 20 MHz fallback assignment of a bonded channel (itself for a
    /// single channel).
    pub fn fallback_20(self) -> ChannelAssignment {
        ChannelAssignment::Single(self.primary())
    }
}

/// A plan of `n_channels` orthogonal 20 MHz channels (indices
/// `0..n_channels`), with bonding allowed on even/odd adjacent pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelPlan {
    /// Number of available 20 MHz channels.
    pub n_channels: u8,
}

impl ChannelPlan {
    /// The full 12-channel 5 GHz plan the paper's testbed uses.
    pub fn full_5ghz() -> ChannelPlan {
        ChannelPlan { n_channels: 12 }
    }

    /// A restricted plan with the first `n` channels (Fig. 14 uses 2, 4, 6;
    /// Fig. 11 uses 4).
    pub fn restricted(n: u8) -> ChannelPlan {
        assert!(n >= 1 && n <= 12, "plan must have 1..=12 channels");
        ChannelPlan { n_channels: n }
    }

    /// All single-channel assignments in the plan.
    pub fn singles(&self) -> impl Iterator<Item = ChannelAssignment> + '_ {
        (0..self.n_channels).map(|i| ChannelAssignment::Single(Channel20(i)))
    }

    /// All legal bonded assignments in the plan.
    pub fn bonds(&self) -> impl Iterator<Item = ChannelAssignment> + '_ {
        (0..self.n_channels.saturating_sub(1))
            .step_by(2)
            .map(|i| ChannelAssignment::Bonded(Channel20(i)))
    }

    /// Every assignment (the full colour set `Ch` of Algorithm 2: basic
    /// and composite colours).
    pub fn all_assignments(&self) -> Vec<ChannelAssignment> {
        self.singles().chain(self.bonds()).collect()
    }

    /// Whether an assignment is legal under this plan.
    pub fn contains(&self, a: ChannelAssignment) -> bool {
        a.occupied().all(|c| c.0 < self.n_channels)
            && match a {
                ChannelAssignment::Single(_) => true,
                ChannelAssignment::Bonded(c) => c.0 % 2 == 0,
            }
    }

    /// Number of APs that can simultaneously run 40 MHz without conflicts.
    pub fn max_simultaneous_bonds(&self) -> usize {
        (self.n_channels / 2) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_plan_has_twelve_singles_and_six_bonds() {
        let plan = ChannelPlan::full_5ghz();
        assert_eq!(plan.singles().count(), 12);
        assert_eq!(plan.bonds().count(), 6);
        assert_eq!(plan.all_assignments().len(), 18);
        assert_eq!(plan.max_simultaneous_bonds(), 6);
    }

    #[test]
    fn ieee_numbers() {
        assert_eq!(Channel20(0).ieee_number(), Some(36));
        assert_eq!(Channel20(11).ieee_number(), Some(112));
        assert_eq!(Channel20(12).ieee_number(), None);
    }

    #[test]
    fn bonding_legality() {
        assert!(Channel20(0).bonds_with(Channel20(1)));
        assert!(
            !Channel20(1).bonds_with(Channel20(2)),
            "straddles bond boundary"
        );
        assert!(!Channel20(0).bonds_with(Channel20(2)));
        assert!(ChannelAssignment::bonded(Channel20(4)).is_some());
        assert!(ChannelAssignment::bonded(Channel20(3)).is_none());
    }

    #[test]
    fn paper_conflict_rules() {
        let c0 = ChannelAssignment::Single(Channel20(0));
        let c1 = ChannelAssignment::Single(Channel20(1));
        let b01 = ChannelAssignment::bonded(Channel20(0)).unwrap();
        let b23 = ChannelAssignment::bonded(Channel20(2)).unwrap();
        // Basic vs basic: no conflict.
        assert!(!c0.conflicts(c1));
        // Basic vs the composite containing it: conflict (both members).
        assert!(c0.conflicts(b01));
        assert!(c1.conflicts(b01));
        // Composite vs disjoint composite: no conflict.
        assert!(!b01.conflicts(b23));
        // Same colour conflicts with itself.
        assert!(c0.conflicts(c0));
        assert!(b01.conflicts(b01));
    }

    #[test]
    fn conflict_is_symmetric() {
        let plan = ChannelPlan::full_5ghz();
        let all = plan.all_assignments();
        for a in &all {
            for b in &all {
                assert_eq!(a.conflicts(*b), b.conflicts(*a), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn widths_and_fallback() {
        let b = ChannelAssignment::bonded(Channel20(2)).unwrap();
        assert_eq!(b.width(), ChannelWidth::Ht40);
        assert_eq!(b.fallback_20(), ChannelAssignment::Single(Channel20(2)));
        assert_eq!(b.fallback_20().width(), ChannelWidth::Ht20);
        // Falling back keeps occupancy inside the original bond, so
        // neighbours' decisions stay valid (§5.2 mobility argument).
        assert!(b
            .fallback_20()
            .occupied()
            .all(|c| b.occupied().any(|x| x == c)));
    }

    #[test]
    fn restricted_plans() {
        let plan = ChannelPlan::restricted(4);
        assert_eq!(plan.singles().count(), 4);
        assert_eq!(plan.bonds().count(), 2);
        assert!(plan.contains(ChannelAssignment::Single(Channel20(3))));
        assert!(!plan.contains(ChannelAssignment::Single(Channel20(4))));
        assert!(!plan.contains(ChannelAssignment::Bonded(Channel20(4))));
    }

    #[test]
    #[should_panic(expected = "1..=12")]
    fn oversized_plan_panics() {
        ChannelPlan::restricted(13);
    }

    #[test]
    fn six_channels_allow_three_bonds() {
        // The Fig. 14 setting: "6 orthogonal channels are enough for all
        // of the [3] APs to simultaneously activate CB".
        let plan = ChannelPlan::restricted(6);
        let bonds: Vec<_> = plan.bonds().collect();
        assert_eq!(bonds.len(), 3);
        for (i, a) in bonds.iter().enumerate() {
            for (j, b) in bonds.iter().enumerate() {
                if i != j {
                    assert!(!a.conflicts(*b));
                }
            }
        }
    }
}
