//! Propagation models: free space and log-distance with lognormal
//! shadowing.
//!
//! The paper's testbed spans indoor and outdoor links at 5 GHz with a wide
//! range of link qualities; we regenerate an equivalent SNR spread with the
//! standard log-distance model
//!
//! ```text
//! PL(d) = PL(d0) + 10·n·log10(d/d0) + X_σ
//! ```
//!
//! where the shadowing term `X_σ` is **deterministic per link** (hashed
//! from a seed and the link endpoints): the paper measures that "the
//! quality of a link does not exhibit significant variations in terms of
//! PER on different channels of the same width" (Fig. 8), and ACORN's
//! estimator relies on stable per-link qualities. A random-per-call
//! shadowing draw would violate that invariant.

/// Free-space path loss at distance `d_m` metres and frequency `freq_hz`:
/// `PL = 20·log10(d) + 20·log10(f) − 147.55` dB.
pub fn free_space_db(d_m: f64, freq_hz: f64) -> f64 {
    let d = d_m.max(0.1);
    20.0 * d.log10() + 20.0 * freq_hz.log10() - 147.55
}

/// Log-distance path-loss model with deterministic lognormal shadowing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogDistance {
    /// Reference path loss at `d0 = 1 m`, in dB. At 5.2 GHz free space
    /// gives ≈ 46.8 dB.
    pub pl0_db: f64,
    /// Path-loss exponent (2 = free space; 3–4 indoors).
    pub exponent: f64,
    /// Shadowing standard deviation in dB (0 disables shadowing).
    pub shadowing_sigma_db: f64,
    /// Seed mixed into the per-link shadowing hash.
    pub seed: u64,
    /// Slow-drift phase (radians). At `0.0` (the default) every link uses
    /// its frozen shadowing realization, exactly as before. A non-zero
    /// phase rotates each link between **two** independent frozen
    /// realizations, `X·cos(φ) + X'·sin(φ)`, so the environment drifts
    /// smoothly and deterministically while the marginal distribution
    /// stays `N(0, σ²)` at every phase — the `DriftProcess` scenario class
    /// in `acorn-events` advances this to model furniture/people-scale
    /// shadowing churn between re-allocation epochs.
    pub drift_phase: f64,
}

impl LogDistance {
    /// An indoor-enterprise default at 5.2 GHz: PL(1 m) = 46.8 dB,
    /// exponent 3.3, 4 dB shadowing.
    pub fn indoor_5ghz(seed: u64) -> LogDistance {
        LogDistance {
            pl0_db: 46.8,
            exponent: 3.3,
            shadowing_sigma_db: 4.0,
            seed,
            drift_phase: 0.0,
        }
    }

    /// Free-space-like variant (no shadowing, exponent 2).
    pub fn free_space_5ghz() -> LogDistance {
        LogDistance {
            pl0_db: 46.8,
            exponent: 2.0,
            shadowing_sigma_db: 0.0,
            seed: 0,
            drift_phase: 0.0,
        }
    }

    /// Median path loss at distance `d_m` (no shadowing term).
    pub fn median_db(&self, d_m: f64) -> f64 {
        self.pl0_db + 10.0 * self.exponent * (d_m.max(0.1)).log10()
    }

    /// Path loss for the link identified by `link_key`, including that
    /// link's frozen shadowing realization. The same `(seed, link_key)`
    /// always produces the same loss — the Fig. 8 stability property.
    pub fn loss_db(&self, d_m: f64, link_key: u64) -> f64 {
        self.median_db(d_m) + self.shadowing_db(link_key)
    }

    /// The shadowing realization (dB) of a link at the current
    /// [`drift phase`](LogDistance::drift_phase).
    ///
    /// At phase `0.0` this is the link's frozen draw — the same
    /// `(seed, link_key)` always produces the same loss (the Fig. 8
    /// stability property), bit-identical to the pre-drift model. At any
    /// other phase the link interpolates `X·cos(φ) + X'·sin(φ)` between
    /// its two frozen draws, which is again `N(0, σ²)`-distributed and
    /// still a pure function of `(seed, link_key, φ)`.
    pub fn shadowing_db(&self, link_key: u64) -> f64 {
        if self.shadowing_sigma_db == 0.0 {
            return 0.0;
        }
        let g = Self::gaussian(self.seed, link_key);
        if self.drift_phase == 0.0 {
            return g * self.shadowing_sigma_db;
        }
        // Second independent frozen draw for the drift quadrature; the
        // seed tweak keeps it decorrelated from the primary draw.
        let g2 = Self::gaussian(self.seed ^ 0xD1F7_5EED_0000_0001, link_key);
        (g * self.drift_phase.cos() + g2 * self.drift_phase.sin()) * self.shadowing_sigma_db
    }

    /// A standard-normal draw, a pure function of `(seed, link_key)`:
    /// SplitMix64 over the pair → two uniforms → Box–Muller.
    fn gaussian(seed: u64, link_key: u64) -> f64 {
        let mut x = seed ^ link_key.wrapping_mul(0x9E3779B97F4A7C15);
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let u1 = (next() >> 11) as f64 / (1u64 << 53) as f64;
        let u2 = (next() >> 11) as f64 / (1u64 << 53) as f64;
        (-2.0 * u1.max(1e-18).ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Builds a stable link key from two node identifiers (direction-less:
/// `(a, b)` and `(b, a)` map to the same key, since path loss is
/// reciprocal).
pub fn link_key(a: u64, b: u64) -> u64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    lo.wrapping_mul(0x1000193) ^ hi.wrapping_mul(0x100000001B3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_space_known_value() {
        // 5.2 GHz at 1 m: 20·log10(5.2e9) − 147.55 ≈ 46.77 dB.
        let pl = free_space_db(1.0, 5.2e9);
        assert!((pl - 46.77).abs() < 0.05, "pl = {pl}");
    }

    #[test]
    fn free_space_slope_is_20db_per_decade() {
        let f = 5.2e9;
        assert!((free_space_db(100.0, f) - free_space_db(10.0, f) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn log_distance_slope_matches_exponent() {
        let m = LogDistance::indoor_5ghz(1);
        let d1 = m.median_db(10.0);
        let d2 = m.median_db(100.0);
        assert!((d2 - d1 - 33.0).abs() < 1e-9);
    }

    #[test]
    fn shadowing_is_deterministic_per_link() {
        let m = LogDistance::indoor_5ghz(42);
        let k = link_key(3, 7);
        assert_eq!(m.loss_db(20.0, k), m.loss_db(20.0, k));
        assert_eq!(m.shadowing_db(k), m.shadowing_db(k));
    }

    #[test]
    fn shadowing_differs_across_links_and_seeds() {
        let m = LogDistance::indoor_5ghz(42);
        let a = m.shadowing_db(link_key(1, 2));
        let b = m.shadowing_db(link_key(1, 3));
        assert_ne!(a, b);
        let m2 = LogDistance::indoor_5ghz(43);
        assert_ne!(a, m2.shadowing_db(link_key(1, 2)));
    }

    #[test]
    fn shadowing_statistics() {
        let m = LogDistance {
            shadowing_sigma_db: 6.0,
            ..LogDistance::indoor_5ghz(7)
        };
        let n = 20_000u64;
        let samples: Vec<f64> = (0..n).map(|i| m.shadowing_db(i)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var.sqrt() - 6.0).abs() < 0.2, "std {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_means_no_shadowing() {
        let m = LogDistance::free_space_5ghz();
        assert_eq!(m.shadowing_db(link_key(5, 9)), 0.0);
        assert_eq!(m.loss_db(10.0, link_key(5, 9)), m.median_db(10.0));
    }

    #[test]
    fn link_key_is_symmetric() {
        assert_eq!(link_key(12, 90), link_key(90, 12));
        assert_ne!(link_key(12, 90), link_key(12, 91));
    }

    #[test]
    fn zero_drift_phase_is_bit_identical_to_frozen_shadowing() {
        // drift_phase = 0.0 must take the single-draw path exactly, so
        // every pre-drift result (and golden test) is unchanged.
        let frozen = LogDistance::indoor_5ghz(42);
        let drifting = LogDistance {
            drift_phase: 0.0,
            ..frozen
        };
        for k in 0..200u64 {
            assert_eq!(
                frozen.shadowing_db(k).to_bits(),
                drifting.shadowing_db(k).to_bits()
            );
        }
    }

    #[test]
    fn drift_is_smooth_and_deterministic() {
        let base = LogDistance::indoor_5ghz(9);
        let k = link_key(2, 5);
        let at = |phase: f64| {
            LogDistance {
                drift_phase: phase,
                ..base
            }
            .shadowing_db(k)
        };
        assert_eq!(at(0.3), at(0.3), "pure function of phase");
        // A small phase step moves the realization by O(phase · σ).
        assert!((at(1e-4) - at(0.0)).abs() < 1e-2);
        // A large step genuinely changes the environment.
        assert_ne!(at(0.0), at(std::f64::consts::FRAC_PI_2));
    }

    #[test]
    fn drift_preserves_the_shadowing_distribution() {
        // At any phase the marginal stays N(0, σ²): cos²+sin² = 1.
        let m = LogDistance {
            shadowing_sigma_db: 6.0,
            drift_phase: 0.77,
            ..LogDistance::indoor_5ghz(7)
        };
        let n = 20_000u64;
        let samples: Vec<f64> = (0..n).map(|i| m.shadowing_db(i)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var.sqrt() - 6.0).abs() < 0.2, "std {}", var.sqrt());
    }

    #[test]
    fn tiny_distances_are_clamped() {
        let m = LogDistance::indoor_5ghz(1);
        assert!(m.median_db(0.0).is_finite());
        assert!(free_space_db(0.0, 5.2e9).is_finite());
    }
}
