//! The enterprise WLAN deployment: APs, clients, radio parameters, link
//! budgets and interference-graph construction.
//!
//! This is the substrate the paper's testbed provides: 18 two-antenna
//! 802.11n nodes with 5 dBi omnis on the 5 GHz band. A [`Wlan`] value owns
//! the geometry and the propagation model and answers the two questions
//! every higher layer asks: *what is the SNR of link (AP, client)?* and
//! *which APs interfere?*

use crate::geom::Point;
use crate::graph::{ApId, InterferenceGraph};
use crate::index::SpatialGrid;
use crate::pathloss::{link_key, LogDistance};
use acorn_phy::{ChannelWidth, LinkBudget};

/// Identifier of a client (index into the deployment's client list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub usize);

/// An access point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ap {
    /// Position in the plane.
    pub pos: Point,
}

/// A (possibly mobile) client station.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Client {
    /// Position in the plane.
    pub pos: Point,
}

/// Radio parameters shared by all nodes (the testbed is homogeneous).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioParams {
    /// Transmit power in dBm. The paper's experiments mostly run at the
    /// maximum power; 20 dBm is a typical 5 GHz cap.
    pub tx_power_dbm: f64,
    /// Combined Tx+Rx antenna gain in dBi (two 5 dBi omnis → 10 dBi).
    pub antenna_gains_dbi: f64,
    /// Receiver noise figure in dB.
    pub noise_figure_db: f64,
    /// Carrier-sense range in metres: nodes within this range compete for
    /// the medium (footnote 5's "directly compete" relation).
    pub carrier_sense_range_m: f64,
}

impl Default for RadioParams {
    fn default() -> Self {
        RadioParams {
            tx_power_dbm: 20.0,
            antenna_gains_dbi: 10.0,
            noise_figure_db: 5.0,
            carrier_sense_range_m: 80.0,
        }
    }
}

/// A full deployment: node positions, radio parameters and propagation.
#[derive(Debug, Clone)]
pub struct Wlan {
    /// Access points.
    pub aps: Vec<Ap>,
    /// Client stations.
    pub clients: Vec<Client>,
    /// Shared radio parameters.
    pub radio: RadioParams,
    /// Propagation model (deterministic shadowing per link).
    pub pathloss: LogDistance,
}

impl Wlan {
    /// Creates a deployment from AP and client positions with default
    /// radio parameters and the indoor 5 GHz propagation model.
    pub fn new(ap_pos: Vec<Point>, client_pos: Vec<Point>, seed: u64) -> Wlan {
        Wlan {
            aps: ap_pos.into_iter().map(|pos| Ap { pos }).collect(),
            clients: client_pos.into_iter().map(|pos| Client { pos }).collect(),
            radio: RadioParams::default(),
            pathloss: LogDistance::indoor_5ghz(seed),
        }
    }

    /// Stable hash key for the (AP, client) link, offset so AP–AP and
    /// AP–client keys never collide.
    fn ap_client_key(&self, ap: ApId, client: ClientId) -> u64 {
        link_key(ap.0 as u64, (client.0 + self.aps.len()) as u64 + 1_000_000)
    }

    /// Link budget of the downlink AP → client at the configured power.
    pub fn link_budget(&self, ap: ApId, client: ClientId) -> LinkBudget {
        self.link_budget_at_power(ap, client, self.radio.tx_power_dbm)
    }

    /// Link budget at an explicit transmit power (for power sweeps).
    pub fn link_budget_at_power(&self, ap: ApId, client: ClientId, tx_dbm: f64) -> LinkBudget {
        let d = self.aps[ap.0].pos.distance(&self.clients[client.0].pos);
        LinkBudget {
            tx_power_dbm: tx_dbm,
            antenna_gains_dbi: self.radio.antenna_gains_dbi,
            path_loss_db: self.pathloss.loss_db(d, self.ap_client_key(ap, client)),
            noise_figure_db: self.radio.noise_figure_db,
        }
    }

    /// Per-subcarrier SNR of the (AP, client) link at a width.
    pub fn snr_db(&self, ap: ApId, client: ClientId, width: ChannelWidth) -> f64 {
        self.link_budget(ap, client).snr_db(width)
    }

    /// Received power (dBm) of AP `from`'s signal at AP `to` — used for
    /// interference accounting between cells.
    pub fn ap_to_ap_rx_dbm(&self, from: ApId, to: ApId) -> f64 {
        let d = self.aps[from.0].pos.distance(&self.aps[to.0].pos);
        self.radio.tx_power_dbm + self.radio.antenna_gains_dbi
            - self
                .pathloss
                .loss_db(d, link_key(from.0 as u64, to.0 as u64))
    }

    /// Whether two positions are within carrier-sense range.
    fn in_cs_range(&self, a: &Point, b: &Point) -> bool {
        a.distance(b) <= self.radio.carrier_sense_range_m
    }

    /// Builds the interference graph per the paper's footnote 5, given the
    /// current client→AP association (`assoc[c] = Some(ap)`): APs `i` and
    /// `j` are adjacent if they are within carrier-sense range of each
    /// other, or if either is within range of one of the other's
    /// associated clients.
    ///
    /// Built through a [`crate::SpatialGrid`] over the AP positions, so the
    /// cost is O(n · local density) rather than the O(n²) pair loop —
    /// at city scale (10k APs) that is the difference between micro- and
    /// multi-second builds. The edge predicate is the same crisp
    /// `distance ≤ carrier_sense_range_m` test in both builds (shadowing
    /// never enters footnote 5's relation), so the result is *exactly* the
    /// brute-force graph — a property the `spatial_graph` proptest pins.
    pub fn interference_graph(&self, assoc: &[Option<ApId>]) -> InterferenceGraph {
        assert_eq!(assoc.len(), self.clients.len(), "one entry per client");
        let n = self.aps.len();
        let r = self.radio.carrier_sense_range_m;
        let ap_points: Vec<Point> = self.aps.iter().map(|a| a.pos).collect();
        let grid = SpatialGrid::build(&ap_points, r.max(1.0));
        let mut g = InterferenceGraph::new(n);
        // Direct AP–AP contention.
        for i in 0..n {
            for j in grid.within(&self.aps[i].pos, r) {
                if j > i {
                    g.add_edge(ApId(i), ApId(j));
                }
            }
        }
        // Contention via an associated client: every AP within CS range of
        // the client competes with the client's owner.
        for (c, owner) in assoc.iter().enumerate() {
            if let Some(ap) = owner {
                for j in grid.within(&self.clients[c].pos, r) {
                    if j != ap.0 {
                        g.add_edge(*ap, ApId(j));
                    }
                }
            }
        }
        g
    }

    /// The brute-force O(n²·m) pair-loop build of the footnote-5 graph —
    /// the original implementation, kept as the reference oracle for the
    /// spatial-index exactness property test.
    pub fn interference_graph_brute(&self, assoc: &[Option<ApId>]) -> InterferenceGraph {
        assert_eq!(assoc.len(), self.clients.len(), "one entry per client");
        let n = self.aps.len();
        let mut g = InterferenceGraph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                let direct = self.in_cs_range(&self.aps[i].pos, &self.aps[j].pos);
                let via_clients = assoc.iter().enumerate().any(|(c, owner)| match owner {
                    Some(ap) if ap.0 == i => {
                        self.in_cs_range(&self.aps[j].pos, &self.clients[c].pos)
                    }
                    Some(ap) if ap.0 == j => {
                        self.in_cs_range(&self.aps[i].pos, &self.clients[c].pos)
                    }
                    _ => false,
                });
                if direct || via_clients {
                    g.add_edge(ApId(i), ApId(j));
                }
            }
        }
        g
    }

    /// Interference graph ignoring clients (direct AP contention only) —
    /// useful before any association exists.
    pub fn ap_only_interference_graph(&self) -> InterferenceGraph {
        self.interference_graph(&vec![None; self.clients.len()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_wlan() -> Wlan {
        // Two APs 50 m apart, a client near each.
        Wlan::new(
            vec![Point::new(0.0, 0.0), Point::new(50.0, 0.0)],
            vec![Point::new(5.0, 0.0), Point::new(55.0, 0.0)],
            7,
        )
    }

    #[test]
    fn snr_decreases_with_distance() {
        let w = square_wlan();
        let near = w.snr_db(ApId(0), ClientId(0), ChannelWidth::Ht20);
        let far = w.snr_db(ApId(0), ClientId(1), ChannelWidth::Ht20);
        assert!(near > far, "near {near}, far {far}");
    }

    #[test]
    fn snr_drops_three_db_with_bonding() {
        let w = square_wlan();
        let s20 = w.snr_db(ApId(0), ClientId(0), ChannelWidth::Ht20);
        let s40 = w.snr_db(ApId(0), ClientId(0), ChannelWidth::Ht40);
        assert!((s20 - s40 - 3.0103).abs() < 1e-6);
    }

    #[test]
    fn link_budget_is_stable_across_calls() {
        let w = square_wlan();
        assert_eq!(
            w.link_budget(ApId(0), ClientId(1)),
            w.link_budget(ApId(0), ClientId(1))
        );
    }

    #[test]
    fn power_sweep_shifts_snr_linearly() {
        let w = square_wlan();
        let lo = w
            .link_budget_at_power(ApId(0), ClientId(0), 5.0)
            .snr_db(ChannelWidth::Ht20);
        let hi = w
            .link_budget_at_power(ApId(0), ClientId(0), 15.0)
            .snr_db(ChannelWidth::Ht20);
        assert!((hi - lo - 10.0).abs() < 1e-9);
    }

    #[test]
    fn nearby_aps_interfere_directly() {
        let w = square_wlan(); // 50 m < default 80 m CS range
        let g = w.ap_only_interference_graph();
        assert!(g.interferes(ApId(0), ApId(1)));
    }

    #[test]
    fn distant_aps_do_not_interfere_directly() {
        let mut w = square_wlan();
        w.aps[1].pos = Point::new(500.0, 0.0);
        w.clients[1].pos = Point::new(505.0, 0.0);
        let g = w.ap_only_interference_graph();
        assert!(!g.interferes(ApId(0), ApId(1)));
    }

    #[test]
    fn client_in_the_middle_creates_an_edge() {
        // APs out of mutual CS range, but AP 1's client sits close to AP 0
        // → footnote 5's "competes with at least one of the other AP's
        // clients" rule creates the edge.
        let mut w = Wlan::new(
            vec![Point::new(0.0, 0.0), Point::new(150.0, 0.0)],
            vec![Point::new(70.0, 0.0)],
            3,
        );
        w.radio.carrier_sense_range_m = 80.0;
        assert!(!w.ap_only_interference_graph().interferes(ApId(0), ApId(1)));
        let g = w.interference_graph(&[Some(ApId(1))]);
        assert!(g.interferes(ApId(0), ApId(1)));
    }

    #[test]
    fn unassociated_clients_create_no_edges() {
        let w = Wlan::new(
            vec![Point::new(0.0, 0.0), Point::new(150.0, 0.0)],
            vec![Point::new(70.0, 0.0)],
            3,
        );
        let g = w.interference_graph(&[None]);
        assert!(!g.interferes(ApId(0), ApId(1)));
    }

    #[test]
    #[should_panic(expected = "one entry per client")]
    fn wrong_assoc_len_panics() {
        let w = square_wlan();
        w.interference_graph(&[None]);
    }

    #[test]
    fn ap_to_ap_power_is_reciprocal() {
        let w = square_wlan();
        assert_eq!(
            w.ap_to_ap_rx_dbm(ApId(0), ApId(1)),
            w.ap_to_ap_rx_dbm(ApId(1), ApId(0))
        );
    }
}
