//! The interference graph (IG) over access points.
//!
//! §4.2: "The set V of vertices of the interference graph G(V,E) are the
//! APs. An edge e_ij ∈ E, if APs i and j interfere with each other." And
//! footnote 5: "Two APs interfere with each other either if they directly
//! compete for the medium or if either competes with at least one of the
//! other AP's clients."
//!
//! The graph is small (one vertex per AP), so a dense adjacency matrix is
//! the simplest robust representation.

/// Identifier of an access point (index into the deployment's AP list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ApId(pub usize);

/// An undirected interference graph over `n` APs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterferenceGraph {
    n: usize,
    adj: Vec<bool>, // row-major n×n
}

impl InterferenceGraph {
    /// Creates an edgeless graph over `n` APs.
    pub fn new(n: usize) -> InterferenceGraph {
        InterferenceGraph {
            n,
            adj: vec![false; n * n],
        }
    }

    /// Number of vertices (APs).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds an undirected edge. Self-loops are ignored (an AP always
    /// contends with itself; the MAC model accounts for that separately).
    pub fn add_edge(&mut self, a: ApId, b: ApId) {
        assert!(a.0 < self.n && b.0 < self.n, "AP id out of range");
        if a == b {
            return;
        }
        self.adj[a.0 * self.n + b.0] = true;
        self.adj[b.0 * self.n + a.0] = true;
    }

    /// Whether two APs interfere.
    pub fn interferes(&self, a: ApId, b: ApId) -> bool {
        a != b && self.adj[a.0 * self.n + b.0]
    }

    /// Iterator over the neighbours of `a`.
    pub fn neighbors(&self, a: ApId) -> impl Iterator<Item = ApId> + '_ {
        let n = self.n;
        (0..n).filter(move |j| self.adj[a.0 * n + j]).map(ApId)
    }

    /// Degree of vertex `a`.
    pub fn degree(&self, a: ApId) -> usize {
        self.neighbors(a).count()
    }

    /// Δ — the maximum node degree, which bounds the worst-case
    /// approximation ratio O(1/(Δ+1)) of Algorithm 2.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|i| self.degree(ApId(i))).max().unwrap_or(0)
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().filter(|b| **b).count() / 2
    }

    /// Builds a complete graph (every AP contends with every other) — the
    /// worst case used in the approximation-ratio analysis.
    pub fn complete(n: usize) -> InterferenceGraph {
        let mut g = InterferenceGraph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                g.add_edge(ApId(i), ApId(j));
            }
        }
        g
    }

    /// Builds a graph from an explicit undirected edge list.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> InterferenceGraph {
        let mut g = InterferenceGraph::new(n);
        for &(a, b) in edges {
            g.add_edge(ApId(a), ApId(b));
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = InterferenceGraph::new(0);
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        let g3 = InterferenceGraph::new(3);
        assert_eq!(g3.edge_count(), 0);
        assert_eq!(g3.max_degree(), 0);
    }

    #[test]
    fn edges_are_undirected() {
        let g = InterferenceGraph::from_edges(3, &[(0, 1)]);
        assert!(g.interferes(ApId(0), ApId(1)));
        assert!(g.interferes(ApId(1), ApId(0)));
        assert!(!g.interferes(ApId(0), ApId(2)));
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = InterferenceGraph::new(2);
        g.add_edge(ApId(0), ApId(0));
        assert_eq!(g.edge_count(), 0);
        assert!(!g.interferes(ApId(0), ApId(0)));
    }

    #[test]
    fn degrees_and_max_degree() {
        // Star graph: center has degree 3, leaves degree 1, Δ = 3.
        let g = InterferenceGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree(ApId(0)), 3);
        assert_eq!(g.degree(ApId(1)), 1);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn complete_graph_properties() {
        let g = InterferenceGraph::complete(5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.max_degree(), 4);
        for i in 0..5 {
            assert_eq!(g.degree(ApId(i)), 4);
        }
    }

    #[test]
    fn neighbors_iteration() {
        let g = InterferenceGraph::from_edges(4, &[(1, 2), (1, 3)]);
        let n: Vec<usize> = g.neighbors(ApId(1)).map(|a| a.0).collect();
        assert_eq!(n, vec![2, 3]);
        assert_eq!(g.neighbors(ApId(0)).count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = InterferenceGraph::new(2);
        g.add_edge(ApId(0), ApId(5));
    }

    #[test]
    fn duplicate_edges_counted_once() {
        let g = InterferenceGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.edge_count(), 1);
    }
}
