//! The interference graph (IG) over access points.
//!
//! §4.2: "The set V of vertices of the interference graph G(V,E) are the
//! APs. An edge e_ij ∈ E, if APs i and j interfere with each other." And
//! footnote 5: "Two APs interfere with each other either if they directly
//! compete for the medium or if either competes with at least one of the
//! other AP's clients."
//!
//! The graph is stored as sorted adjacency lists. City-scale deployments
//! (10k+ APs) are radically sparse — the carrier-sense radius bounds the
//! degree by the local AP density, not by `n` — so a dense n×n matrix
//! would waste O(n²) memory and make every `neighbors` walk O(n). Sorted
//! lists keep `neighbors` ascending (a determinism invariant relied on by
//! the O(Δ) delta engine) and make membership tests O(log Δ).

/// Identifier of an access point (index into the deployment's AP list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ApId(pub usize);

/// An undirected interference graph over `n` APs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterferenceGraph {
    /// Sorted, deduplicated neighbour list per vertex.
    adj: Vec<Vec<u32>>,
}

impl InterferenceGraph {
    /// Creates an edgeless graph over `n` APs.
    pub fn new(n: usize) -> InterferenceGraph {
        InterferenceGraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices (APs).
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds an undirected edge. Self-loops are ignored (an AP always
    /// contends with itself; the MAC model accounts for that separately).
    pub fn add_edge(&mut self, a: ApId, b: ApId) {
        let n = self.adj.len();
        assert!(a.0 < n && b.0 < n, "AP id out of range");
        if a == b {
            return;
        }
        Self::insert_sorted(&mut self.adj[a.0], b.0 as u32);
        Self::insert_sorted(&mut self.adj[b.0], a.0 as u32);
    }

    fn insert_sorted(list: &mut Vec<u32>, v: u32) {
        if let Err(pos) = list.binary_search(&v) {
            list.insert(pos, v);
        }
    }

    /// Whether two APs interfere.
    pub fn interferes(&self, a: ApId, b: ApId) -> bool {
        a != b && self.adj[a.0].binary_search(&(b.0 as u32)).is_ok()
    }

    /// Iterator over the neighbours of `a`, in ascending id order.
    pub fn neighbors(&self, a: ApId) -> impl Iterator<Item = ApId> + '_ {
        self.adj[a.0].iter().map(|&j| ApId(j as usize))
    }

    /// Degree of vertex `a`.
    pub fn degree(&self, a: ApId) -> usize {
        self.adj[a.0].len()
    }

    /// Δ — the maximum node degree, which bounds the worst-case
    /// approximation ratio O(1/(Δ+1)) of Algorithm 2.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Builds a complete graph (every AP contends with every other) — the
    /// worst case used in the approximation-ratio analysis.
    pub fn complete(n: usize) -> InterferenceGraph {
        let mut g = InterferenceGraph::new(n);
        for i in 0..n {
            g.adj[i] = (0..n as u32).filter(|&j| j as usize != i).collect();
        }
        g
    }

    /// Builds a graph from an explicit undirected edge list.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> InterferenceGraph {
        let mut g = InterferenceGraph::new(n);
        for &(a, b) in edges {
            g.add_edge(ApId(a), ApId(b));
        }
        g
    }

    /// Connected components of the graph, each a sorted vertex list,
    /// ordered by their smallest vertex. The decomposition is a pure
    /// function of the edge set — the sharded allocation path relies on
    /// that for its deterministic per-shard fan-out and merge.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let n = self.adj.len();
        let mut seen = vec![false; n];
        let mut components = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            seen[start] = true;
            queue.push_back(start);
            let mut comp = Vec::new();
            while let Some(v) = queue.pop_front() {
                comp.push(v);
                for &nb in &self.adj[v] {
                    let nb = nb as usize;
                    if !seen[nb] {
                        seen[nb] = true;
                        queue.push_back(nb);
                    }
                }
            }
            comp.sort_unstable();
            components.push(comp);
        }
        components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = InterferenceGraph::new(0);
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        let g3 = InterferenceGraph::new(3);
        assert_eq!(g3.edge_count(), 0);
        assert_eq!(g3.max_degree(), 0);
    }

    #[test]
    fn edges_are_undirected() {
        let g = InterferenceGraph::from_edges(3, &[(0, 1)]);
        assert!(g.interferes(ApId(0), ApId(1)));
        assert!(g.interferes(ApId(1), ApId(0)));
        assert!(!g.interferes(ApId(0), ApId(2)));
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = InterferenceGraph::new(2);
        g.add_edge(ApId(0), ApId(0));
        assert_eq!(g.edge_count(), 0);
        assert!(!g.interferes(ApId(0), ApId(0)));
    }

    #[test]
    fn degrees_and_max_degree() {
        // Star graph: center has degree 3, leaves degree 1, Δ = 3.
        let g = InterferenceGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree(ApId(0)), 3);
        assert_eq!(g.degree(ApId(1)), 1);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn complete_graph_properties() {
        let g = InterferenceGraph::complete(5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.max_degree(), 4);
        for i in 0..5 {
            assert_eq!(g.degree(ApId(i)), 4);
        }
    }

    #[test]
    fn neighbors_iteration() {
        let g = InterferenceGraph::from_edges(4, &[(1, 2), (1, 3)]);
        let n: Vec<usize> = g.neighbors(ApId(1)).map(|a| a.0).collect();
        assert_eq!(n, vec![2, 3]);
        assert_eq!(g.neighbors(ApId(0)).count(), 0);
    }

    #[test]
    fn neighbors_are_ascending_regardless_of_insertion_order() {
        let g = InterferenceGraph::from_edges(5, &[(2, 4), (2, 0), (2, 3), (2, 1)]);
        let n: Vec<usize> = g.neighbors(ApId(2)).map(|a| a.0).collect();
        assert_eq!(n, vec![0, 1, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = InterferenceGraph::new(2);
        g.add_edge(ApId(0), ApId(5));
    }

    #[test]
    fn duplicate_edges_counted_once() {
        let g = InterferenceGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn components_of_edgeless_graph_are_singletons() {
        let g = InterferenceGraph::new(3);
        assert_eq!(g.connected_components(), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn components_are_sorted_and_ordered_by_min_vertex() {
        // Two triangles and an isolated vertex, edges inserted shuffled.
        let g = InterferenceGraph::from_edges(7, &[(5, 3), (3, 6), (6, 5), (1, 0), (0, 2)]);
        assert_eq!(
            g.connected_components(),
            vec![vec![0, 1, 2], vec![3, 5, 6], vec![4]]
        );
    }

    #[test]
    fn complete_graph_is_one_component() {
        let g = InterferenceGraph::complete(4);
        assert_eq!(g.connected_components(), vec![vec![0, 1, 2, 3]]);
    }
}
