//! Plane geometry for node placement.

/// A point in the deployment plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// x coordinate (m).
    pub x: f64,
    /// y coordinate (m).
    pub y: f64,
}

impl Point {
    /// Constructs a point.
    pub fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Linear interpolation `self + t·(other − self)` — used by the
    /// mobility model to walk a client along a trajectory.
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point {
            x: self.x + t * (other.x - self.x),
            y: self.y + t * (other.y - self.y),
        }
    }
}

/// Straight-line trajectory between two points at constant speed — the
/// pedestrian walks of Figs. 12–13 and the waypoint input of the
/// event-driven `MobilityProcess`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trajectory {
    /// Starting position.
    pub from: Point,
    /// End position (the client stops there).
    pub to: Point,
    /// Walking speed, m/s (pedestrian ≈ 1.2).
    pub speed_mps: f64,
}

impl Trajectory {
    /// Position at time `t` seconds after the walk starts (clamped at the
    /// endpoint — "the client stops at a location far from the AP").
    pub fn position_at(&self, t: f64) -> Point {
        let total = self.from.distance(&self.to);
        if total == 0.0 {
            return self.from;
        }
        let frac = ((self.speed_mps * t.max(0.0)) / total).min(1.0);
        self.from.lerp(&self.to, frac)
    }

    /// Time to reach the endpoint.
    pub fn duration_s(&self) -> f64 {
        self.from.distance(&self.to) / self.speed_mps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_clamps_at_endpoint() {
        let tr = Trajectory {
            from: Point::new(0.0, 0.0),
            to: Point::new(10.0, 0.0),
            speed_mps: 1.0,
        };
        assert_eq!(tr.position_at(0.0), Point::new(0.0, 0.0));
        assert_eq!(tr.position_at(5.0), Point::new(5.0, 0.0));
        assert_eq!(tr.position_at(100.0), Point::new(10.0, 0.0));
        assert_eq!(tr.duration_s(), 10.0);
    }

    #[test]
    fn degenerate_trajectory_stays_put() {
        let p = Point::new(3.0, 4.0);
        let tr = Trajectory {
            from: p,
            to: p,
            speed_mps: 1.0,
        };
        assert_eq!(tr.position_at(7.0), p);
    }

    #[test]
    fn distance_345() {
        assert_eq!(Point::new(0.0, 0.0).distance(&Point::new(3.0, 4.0)), 5.0);
    }

    #[test]
    fn distance_symmetric_and_zero_on_self() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-0.5, 7.0);
        assert_eq!(a.distance(&b), b.distance(&a));
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -4.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert_eq!(mid, Point::new(5.0, -2.0));
    }
}
